#include "sim/interrogator.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "rf/constants.hpp"
#include "rfid/gen2.hpp"
#include "sim/rng.hpp"

namespace tagspin::sim {

double replyProbability(double orientationGain, double sensitivityOffsetDb) {
  const double p = orientationGain * std::pow(10.0, sensitivityOffsetDb / 20.0);
  return std::clamp(p, 0.05, 1.0);
}

rfid::ReportStream interrogate(const World& world,
                               const InterrogateConfig& config) {
  world.validate();
  const int port = config.antennaPort;
  const geom::Vec3& readerPos = world.antennaPosition(port);
  const rf::ReaderAntenna& antenna = world.reader.antenna(port);

  const uint64_t seed = deriveSeed(
      world.worldSeed, 0x9E17ULL + static_cast<uint64_t>(port) * 131 +
                           config.streamId * 65537);
  std::mt19937_64 rng = makeRng(seed);

  rf::HoppingSequence hopping(world.reader.plan, world.reader.hopDwellS,
                              deriveSeed(seed, 0xF0F0ULL));
  rfid::InventoryEngine engine(world.reader.gen2);

  const int nTags = world.tagCount();
  std::vector<double> replyProb(static_cast<size_t>(nTags));

  rfid::ReportStream reports;
  double t = 0.0;
  while (t < config.durationS) {
    // Reply probabilities evaluated at the round start; orientations change
    // negligibly within one round (ms scale vs. rad/s spin).
    for (int i = 0; i < nTags; ++i) {
      const TagInstance& tag = world.tagAt(i);
      const double rho = world.tagRhoAt(i, t, readerPos);
      const double g = tag.gain.gain(rho);
      replyProb[static_cast<size_t>(i)] =
          replyProbability(g, rfid::tagModel(tag.model).sensitivityOffsetDb);
    }

    const rfid::RoundResult round = engine.runRound(t, replyProb, rng);
    for (const rfid::InventoryRead& read : round.reads) {
      const int tagIdx = static_cast<int>(read.tagIndex);
      const TagInstance& tag = world.tagAt(tagIdx);
      const double tr = read.timeS;
      if (tr > config.durationS) break;

      const int channelIdx = hopping.channelAt(tr);
      const double freq = world.reader.plan.frequencyHz(channelIdx);
      const double lambda = rf::wavelength(freq);

      const geom::Vec3 tagPos = world.tagPositionAt(tagIdx, tr);
      const double rho = world.tagRhoAt(tagIdx, tr, readerPos);
      const double thetaDiv = tag.hardwarePhase + antenna.cableAndPortPhase;
      const double orientationPhase = tag.orientation.offset(rho);
      const double readerGain =
          antenna.gainToward(geom::azimuthOf(readerPos, tagPos));
      const double tagGain = tag.gain.gain(rho);

      const rf::ChannelSample s = world.channel.observe(
          readerPos, tagPos, lambda, thetaDiv, orientationPhase, readerGain,
          tagGain, antenna.txPowerDbm, rng);
      if (!s.readable) continue;

      rfid::TagReport r;
      r.epc = tag.epc;
      r.timestampS = tr;
      r.phaseRad = s.phase;
      r.rssiDbm = s.rssiDbm;
      r.channelIndex = channelIdx;
      r.frequencyHz = freq;
      r.antennaPort = port;
      reports.push_back(r);
    }
    // Guard against zero-length rounds (can't happen with positive slot
    // times, but keep the loop total).
    t = std::max(round.endTimeS, t + 1e-6);
  }

  std::sort(reports.begin(), reports.end(),
            [](const rfid::TagReport& a, const rfid::TagReport& b) {
              return a.timestampS < b.timestampS;
            });
  return reports;
}

}  // namespace tagspin::sim
