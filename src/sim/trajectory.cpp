#include "sim/trajectory.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tagspin::sim {

namespace {

constexpr double kPi = 3.14159265358979323846;

/// Wrap to (-pi, pi].
double wrapAngle(double a) {
  while (a > kPi) a -= 2.0 * kPi;
  while (a <= -kPi) a += 2.0 * kPi;
  return a;
}

}  // namespace

Trajectory::Trajectory(TrajectoryConfig config) : config_(std::move(config)) {
  const auto& wp = config_.waypoints;
  if (wp.size() < 2) {
    throw std::invalid_argument("Trajectory: need >= 2 waypoints");
  }
  if (!(config_.speedMps > 0.0)) {
    throw std::invalid_argument("Trajectory: speed must be > 0");
  }

  // Build the corner list: for a loop the "interior" corners include every
  // waypoint; for an open path the endpoints stay sharp.
  std::vector<geom::Vec2> pts = wp;
  if (config_.loop && (pts.front() - pts.back()).norm() > 1e-12) {
    pts.push_back(pts.front());
  }
  const size_t nLegs = pts.size() - 1;

  // Fillet trim distance per interior corner: d = r * tan(phi / 2) where
  // phi is the exterior turn angle.  Clamp r per corner so the trims never
  // eat more than half of either adjacent leg.
  struct Corner {
    double trim = 0.0;      // distance cut off each adjacent leg
    double radius = 0.0;    // fitted fillet radius (0 = sharp)
    double turn = 0.0;      // signed exterior angle (+ = left)
  };
  std::vector<Corner> corners(pts.size());
  const size_t lastCorner = config_.loop ? pts.size() - 1 : pts.size() - 2;
  auto legVec = [&](size_t leg) {
    return pts[leg + 1] - pts[leg];
  };
  // Interior corners (1 .. n-2); the loop seam (0 == n-1) is handled below.
  for (size_t c = 1; c + 1 < pts.size(); ++c) {
    const geom::Vec2 in = legVec(c - 1).normalized();
    const geom::Vec2 out = legVec(c).normalized();
    const double turn = wrapAngle(out.angle() - in.angle());
    if (config_.turnRadiusM <= 0.0 || std::abs(turn) < 1e-9 ||
        std::abs(std::abs(turn) - kPi) < 1e-9) {
      corners[c].turn = turn;
      continue;  // straight-through or U-turn: keep the corner sharp
    }
    const double maxTrim =
        0.5 * std::min(legVec(c - 1).norm(), legVec(c).norm());
    const double tanHalf = std::tan(std::abs(turn) / 2.0);
    double radius = config_.turnRadiusM;
    double trim = radius * tanHalf;
    if (trim > maxTrim) {
      trim = maxTrim;
      radius = trim / tanHalf;
    }
    corners[c] = {trim, radius, turn};
  }
  // Loop paths fillet the seam corner (index 0 == index pts.size()-1)
  // too; treat index 0 via the last leg -> first leg pair.
  if (config_.loop) {
    const geom::Vec2 in = legVec(nLegs - 1).normalized();
    const geom::Vec2 out = legVec(0).normalized();
    const double turn = wrapAngle(out.angle() - in.angle());
    if (config_.turnRadiusM > 0.0 && std::abs(turn) > 1e-9 &&
        std::abs(std::abs(turn) - kPi) > 1e-9) {
      const double maxTrim =
          0.5 * std::min(legVec(nLegs - 1).norm(), legVec(0).norm());
      const double tanHalf = std::tan(std::abs(turn) / 2.0);
      double radius = config_.turnRadiusM;
      double trim = radius * tanHalf;
      if (trim > maxTrim) {
        trim = maxTrim;
        radius = trim / tanHalf;
      }
      corners[0] = corners[pts.size() - 1] = {trim, radius, turn};
    } else {
      corners[0].turn = corners[pts.size() - 1].turn = turn;
    }
  }

  // Emit pieces: for each leg a straight segment (shortened by the trims
  // at both ends), then the fillet arc of the corner at its far end.
  auto addLine = [&](const geom::Vec2& start, double heading, double length) {
    if (length <= 1e-12) return;
    pieces_.push_back({start, heading, length, 0.0});
  };
  auto addArc = [&](const geom::Vec2& start, double heading, double radius,
                    double turn) {
    const double length = radius * std::abs(turn);
    if (length <= 1e-12) return;
    pieces_.push_back({start, heading, length,
                       (turn >= 0.0 ? 1.0 : -1.0) / radius});
  };

  for (size_t leg = 0; leg < nLegs; ++leg) {
    const geom::Vec2 v = legVec(leg);
    const double heading = v.angle();
    const double len = v.norm();
    const double trimStart = corners[leg].trim;
    const double trimEnd = corners[leg + 1].trim;
    const geom::Vec2 start = pts[leg] + v.normalized() * trimStart;
    addLine(start, heading, std::max(0.0, len - trimStart - trimEnd));
    // Fillet at the corner ending this leg (none after the final leg of
    // an open path).
    const size_t c = leg + 1;
    const bool hasCorner =
        (c <= lastCorner || (config_.loop && c == pts.size() - 1)) &&
        corners[c].radius > 0.0;
    if (hasCorner) {
      const geom::Vec2 arcStart =
          pts[c] - v.normalized() * corners[c].trim;
      addArc(arcStart, heading, corners[c].radius, corners[c].turn);
    }
  }
  if (pieces_.empty()) {
    throw std::invalid_argument("Trajectory: degenerate path (zero length)");
  }

  cumLength_.resize(pieces_.size());
  double acc = 0.0;
  for (size_t i = 0; i < pieces_.size(); ++i) {
    acc += pieces_[i].length;
    cumLength_[i] = acc;
  }
  totalLength_ = acc;
}

double Trajectory::durationS() const {
  return totalLength_ / config_.speedMps;
}

double Trajectory::arcAt(double tS) const {
  if (tS <= 0.0) return 0.0;
  double s = tS * config_.speedMps;
  if (config_.loop) {
    s = std::fmod(s, totalLength_);
    if (s < 0.0) s += totalLength_;
    return s;
  }
  return std::min(s, totalLength_);
}

const Trajectory::Piece& Trajectory::pieceAt(double s, double* sLocal) const {
  const auto it = std::lower_bound(cumLength_.begin(), cumLength_.end(), s);
  const size_t idx = it == cumLength_.end()
                         ? pieces_.size() - 1
                         : static_cast<size_t>(it - cumLength_.begin());
  const double before = idx == 0 ? 0.0 : cumLength_[idx - 1];
  *sLocal = std::clamp(s - before, 0.0, pieces_[idx].length);
  return pieces_[idx];
}

geom::Vec2 Trajectory::positionAt(double tS) const {
  double sLocal = 0.0;
  const Piece& p = pieceAt(arcAt(tS), &sLocal);
  if (p.curvature == 0.0) {
    return p.start + geom::unitFromAngle(p.heading) * sLocal;
  }
  // Arc: centre is a radius to the left (+curvature) of the start point.
  const double r = 1.0 / std::abs(p.curvature);
  const double side = p.curvature > 0.0 ? 1.0 : -1.0;
  const geom::Vec2 centre =
      p.start + geom::unitFromAngle(p.heading + side * kPi / 2.0) * r;
  const double swept = p.curvature * sLocal;  // signed angle traversed
  const double a0 = (p.start - centre).angle();
  return centre + geom::unitFromAngle(a0 + swept) * r;
}

double Trajectory::headingAt(double tS) const {
  double sLocal = 0.0;
  const Piece& p = pieceAt(arcAt(tS), &sLocal);
  return wrapAngle(p.heading + p.curvature * sLocal);
}

geom::Vec2 Trajectory::velocityAt(double tS) const {
  if (!config_.loop && tS * config_.speedMps >= totalLength_) {
    return {};  // parked at the terminus
  }
  return geom::unitFromAngle(headingAt(tS)) * config_.speedMps;
}

double Trajectory::turnRateAt(double tS) const {
  if (!config_.loop && tS * config_.speedMps >= totalLength_) return 0.0;
  double sLocal = 0.0;
  const Piece& p = pieceAt(arcAt(tS), &sLocal);
  return p.curvature * config_.speedMps;
}

TrajectoryConfig patrolPath(const Region& region, double speedMps,
                            double turnRadiusM) {
  // Rounded rectangle inset from the region bounds, counterclockwise.
  const double inset = std::max(0.25, turnRadiusM + 0.05);
  const double x0 = -region.halfWidthX + inset;
  const double x1 = region.halfWidthX - inset;
  const double y0 = region.yMin + inset;
  const double y1 = region.yMax - inset;
  TrajectoryConfig cfg;
  cfg.waypoints = {{x0, y0}, {x1, y0}, {x1, y1}, {x0, y1}};
  cfg.speedMps = speedMps;
  cfg.turnRadiusM = turnRadiusM;
  cfg.loop = true;
  return cfg;
}

TrajectoryConfig straightPath(const geom::Vec2& from, const geom::Vec2& to,
                              double speedMps) {
  TrajectoryConfig cfg;
  cfg.waypoints = {from, to};
  cfg.speedMps = speedMps;
  cfg.turnRadiusM = 0.0;
  cfg.loop = false;
  return cfg;
}

}  // namespace tagspin::sim
