// Scoped trace spans: RAII timers that feed a latency histogram.
//
//   void pump() {
//     TAGSPIN_SPAN(obs_.decodeSpan);      // obs_.decodeSpan: Histogram*
//     ... hot work ...
//   }                                      // elapsed seconds observed here
//
// A null histogram skips the clock reads entirely, so unwired components
// pay one branch per span.  Defining TAGSPIN_OBS_NOOP (CMake option
// TAGSPIN_OBS_NOOP) compiles the macro to nothing, which is the provably
// zero-cost configuration fig_obs_overhead compares against.
#pragma once

#include <chrono>

#include "obs/metrics.hpp"

namespace tagspin::obs {

class ScopedSpan {
 public:
  explicit ScopedSpan(Histogram* histogram) noexcept : histogram_(histogram) {
    if (histogram_) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedSpan() {
    if (histogram_) {
      const auto end = std::chrono::steady_clock::now();
      histogram_->observe(std::chrono::duration<double>(end - start_).count());
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Observe now and disarm (for spans that end before scope exit).
  void finish() noexcept {
    if (histogram_) {
      const auto end = std::chrono::steady_clock::now();
      histogram_->observe(std::chrono::duration<double>(end - start_).count());
      histogram_ = nullptr;
    }
  }

 private:
  Histogram* histogram_;
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace tagspin::obs

#define TAGSPIN_SPAN_CONCAT2(a, b) a##b
#define TAGSPIN_SPAN_CONCAT(a, b) TAGSPIN_SPAN_CONCAT2(a, b)
#ifdef TAGSPIN_OBS_NOOP
#define TAGSPIN_SPAN(histogram) ((void)0)
#else
#define TAGSPIN_SPAN(histogram) \
  ::tagspin::obs::ScopedSpan TAGSPIN_SPAN_CONCAT(tagspin_span_, \
                                                 __LINE__)(histogram)
#endif
