#include "obs/metrics.hpp"

#include <algorithm>

namespace tagspin::obs {

double Histogram::quantile(double q) const noexcept {
  const uint64_t n = count();
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target sample (nearest-rank on the bucketed CDF).
  const uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(n - 1));
  uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    const uint64_t c = bucketCount(i);
    if (c == 0) continue;
    seen += c;
    if (seen > rank) {
      // Geometric midpoint of the bucket: sqrt(lower * upper).  Bucket 0
      // has no meaningful lower edge; report its upper bound.
      const double upper = bucketUpper(i);
      if (i == 0) return upper;
      return std::sqrt(bucketUpper(i - 1) * upper);
    }
  }
  return max();
}

uint64_t MetricsSnapshot::counterValue(const std::string& name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

double MetricsSnapshot::gaugeValue(const std::string& name) const {
  for (const auto& [n, v] : gauges) {
    if (n == name) return v;
  }
  return 0.0;
}

const HistogramView* MetricsSnapshot::histogram(
    const std::string& name) const {
  for (const HistogramView& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

Counter* MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return slot.get();
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c->value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.emplace_back(name, g->value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramView view;
    view.name = name;
    view.count = h->count();
    view.sum = h->sum();
    view.min = h->min();
    view.max = h->max();
    view.p50 = h->quantile(0.50);
    view.p90 = h->quantile(0.90);
    view.p99 = h->quantile(0.99);
    snap.histograms.push_back(std::move(view));
  }
  return snap;
}

size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

}  // namespace tagspin::obs
