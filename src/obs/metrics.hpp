// Thread-safe, low-overhead metrics primitives and the process-wide
// registry that names them.
//
// Design constraints, in order:
//  * the *hot path* (a counter bump inside the decode loop, a histogram
//    observation per localization) is one relaxed atomic RMW -- no locks,
//    no allocation, no branches beyond a null check;
//  * handles are plain pointers resolved once at wiring time, so an
//    uninstrumented component (null registry) costs a predicted-not-taken
//    branch per site, and a TAGSPIN_OBS_NOOP build (see span.hpp) compiles
//    every site away entirely;
//  * registration is rare and may take a mutex; the registry hands out
//    stable addresses (metrics are never moved or destroyed while the
//    registry lives), so readers and writers never synchronize with it.
//
// Metric names are dot-separated ("session.disconnects",
// "span.llrp_decode"); exporters (obs/export.hpp) map them to
// Prometheus-safe identifiers.
#pragma once

#include <array>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace tagspin::obs {

/// Monotone event count.  add() is wait-free.
class Counter {
 public:
  void add(uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins scalar (queue depth, reader-clock watermark).  Stored as
/// the bit pattern of a double so set() stays a single relaxed store.
class Gauge {
 public:
  void set(double v) noexcept {
    bits_.store(toBits(v), std::memory_order_relaxed);
  }
  /// Monotone variant: keep the maximum ever set (depth high watermarks
  /// that must survive the component being torn down and rebuilt).
  void setMax(double v) noexcept {
    uint64_t cur = bits_.load(std::memory_order_relaxed);
    while (fromBits(cur) < v &&
           !bits_.compare_exchange_weak(cur, toBits(v),
                                        std::memory_order_relaxed)) {
    }
  }
  double value() const noexcept {
    return fromBits(bits_.load(std::memory_order_relaxed));
  }

 private:
  static uint64_t toBits(double v) noexcept {
    uint64_t b;
    static_assert(sizeof(b) == sizeof(v));
    __builtin_memcpy(&b, &v, sizeof(b));
    return b;
  }
  static double fromBits(uint64_t b) noexcept {
    double v;
    __builtin_memcpy(&v, &b, sizeof(v));
    return v;
  }

  std::atomic<uint64_t> bits_{0};
};

/// Log-bucketed histogram for non-negative values (latencies in seconds,
/// sizes in bytes).  Bucket i covers (2^(i-31+kExpOffsetBias), 2^(i-30+...)]
/// -- concretely, with the default bias the span runs from sub-nanosecond
/// to ~10^9, so one layout serves both latency and byte-size metrics.
/// observe() is wait-free: a frexp, a clamp and two relaxed RMWs.
class Histogram {
 public:
  static constexpr int kBuckets = 64;
  /// Buckets are centred for seconds-scale values: bucket upper bounds are
  /// 2^(i - kExpBias), i in [0, 64), i.e. [2^-30 s, 2^33].
  static constexpr int kExpBias = 30;

  void observe(double v) noexcept {
    buckets_[bucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    atomicAdd(sum_, v);
    atomicMin(min_, v);
    atomicMax(max_, v);
  }

  uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const noexcept { return loadD(sum_); }
  double min() const noexcept { return count() ? loadD(min_) : 0.0; }
  double max() const noexcept { return count() ? loadD(max_) : 0.0; }
  double mean() const noexcept {
    const uint64_t n = count();
    return n ? sum() / static_cast<double>(n) : 0.0;
  }

  /// Bucket-resolution quantile estimate (geometric midpoint of the bucket
  /// holding the target rank).  Accurate to the 2x bucket width, which is
  /// what a latency dashboard needs; not for numerics.
  double quantile(double q) const noexcept;

  uint64_t bucketCount(int i) const noexcept {
    return buckets_[static_cast<size_t>(i)].load(std::memory_order_relaxed);
  }
  /// Upper bound of bucket i.
  static double bucketUpper(int i) noexcept {
    return std::ldexp(1.0, i - kExpBias);
  }
  static int bucketIndex(double v) noexcept {
    if (!(v > 0.0)) return 0;  // zero, negatives and NaN land in bucket 0
    int exp = 0;
    std::frexp(v, &exp);  // v = m * 2^exp, m in [0.5, 1) => v <= 2^exp
    const int idx = exp + kExpBias;
    return idx < 0 ? 0 : (idx >= kBuckets ? kBuckets - 1 : idx);
  }

 private:
  // CAS loops instead of std::atomic<double>::fetch_add -- the arithmetic
  // RMWs on floating atomics are C++20-paper features with patchy codegen;
  // the loop is portable and equally lock-free.
  static void atomicAdd(std::atomic<uint64_t>& bits, double v) noexcept {
    uint64_t cur = bits.load(std::memory_order_relaxed);
    for (;;) {
      const double next = bitsToD(cur) + v;
      if (bits.compare_exchange_weak(cur, dToBits(next),
                                     std::memory_order_relaxed)) {
        return;
      }
    }
  }
  static void atomicMin(std::atomic<uint64_t>& bits, double v) noexcept {
    uint64_t cur = bits.load(std::memory_order_relaxed);
    while (bitsToD(cur) > v &&
           !bits.compare_exchange_weak(cur, dToBits(v),
                                       std::memory_order_relaxed)) {
    }
  }
  static void atomicMax(std::atomic<uint64_t>& bits, double v) noexcept {
    uint64_t cur = bits.load(std::memory_order_relaxed);
    while (bitsToD(cur) < v &&
           !bits.compare_exchange_weak(cur, dToBits(v),
                                       std::memory_order_relaxed)) {
    }
  }
  static uint64_t dToBits(double v) noexcept {
    uint64_t b;
    __builtin_memcpy(&b, &v, sizeof(b));
    return b;
  }
  static double bitsToD(uint64_t b) noexcept {
    double v;
    __builtin_memcpy(&v, &b, sizeof(v));
    return v;
  }
  static double loadD(const std::atomic<uint64_t>& bits) noexcept {
    return bitsToD(bits.load(std::memory_order_relaxed));
  }

  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{dToBits(0.0)};
  std::atomic<uint64_t> min_{dToBits(std::numeric_limits<double>::infinity())};
  std::atomic<uint64_t> max_{
      dToBits(-std::numeric_limits<double>::infinity())};
};

/// Point-in-time view of one histogram, for exporters and reports.
struct HistogramView {
  std::string name;
  uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

/// Point-in-time view of the whole registry (name-sorted).
struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramView> histograms;

  /// Counter value by exact name; 0 when absent.
  uint64_t counterValue(const std::string& name) const;
  double gaugeValue(const std::string& name) const;
  const HistogramView* histogram(const std::string& name) const;
};

/// Named metric registry.  counter()/gauge()/histogram() create on first
/// use and return the same stable pointer on every subsequent call with the
/// same name; the pointers remain valid for the registry's lifetime, so
/// components resolve their handles once and never touch the lock again.
class MetricsRegistry {
 public:
  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  Histogram* histogram(const std::string& name);

  MetricsSnapshot snapshot() const;

  /// Number of registered metrics across all kinds.
  size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

// Null-safe instrumentation helpers: every call site goes through these so
// an unwired component (null handle) costs one branch, and a
// TAGSPIN_OBS_NOOP build costs nothing (the bodies are compiled away; see
// span.hpp for the matching span macro).
#ifdef TAGSPIN_OBS_NOOP
inline void add(Counter*, uint64_t = 1) noexcept {}
inline void set(Gauge*, double) noexcept {}
inline void setMax(Gauge*, double) noexcept {}
inline void observe(Histogram*, double) noexcept {}
#else
inline void add(Counter* c, uint64_t n = 1) noexcept {
  if (c) c->add(n);
}
inline void set(Gauge* g, double v) noexcept {
  if (g) g->set(v);
}
inline void setMax(Gauge* g, double v) noexcept {
  if (g) g->setMax(v);
}
inline void observe(Histogram* h, double v) noexcept {
  if (h) h->observe(v);
}
#endif

}  // namespace tagspin::obs
