#include "obs/journal.hpp"

namespace tagspin::obs {

const char* severityName(Severity severity) {
  switch (severity) {
    case Severity::kDebug: return "debug";
    case Severity::kInfo: return "info";
    case Severity::kWarn: return "warn";
    case Severity::kError: return "error";
  }
  return "unknown";
}

void EventJournal::record(
    double wallS, Severity severity, std::string what,
    std::initializer_list<std::pair<std::string, std::string>> fields) {
  Event ev;
  ev.wallS = wallS;
  ev.severity = severity;
  ev.what = std::move(what);
  ev.fields.assign(fields.begin(), fields.end());

  std::lock_guard<std::mutex> lock(mutex_);
  ++recorded_;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(ev));
  } else {
    ring_[head_] = std::move(ev);
    head_ = (head_ + 1) % capacity_;
  }
}

std::vector<Event> EventJournal::events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Event> out;
  out.reserve(ring_.size());
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

uint64_t EventJournal::recorded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return recorded_;
}

uint64_t EventJournal::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return recorded_ > ring_.size() ? recorded_ - ring_.size() : 0;
}

}  // namespace tagspin::obs
