#include "obs/export.hpp"

#include <cctype>
#include <cstdio>
#include <sstream>

namespace tagspin::obs {

namespace {

/// %.9g prints doubles compactly without losing latency resolution.
std::string num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string prometheusName(const std::string& name) {
  std::string out = "tagspin_";
  for (char c : name) {
    out += (std::isalnum(static_cast<unsigned char>(c)) != 0) ? c : '_';
  }
  return out;
}

std::string toPrometheus(const MetricsSnapshot& snapshot) {
  std::ostringstream out;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string p = prometheusName(name);
    out << "# TYPE " << p << " counter\n";
    out << p << ' ' << value << '\n';
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string p = prometheusName(name);
    out << "# TYPE " << p << " gauge\n";
    out << p << ' ' << num(value) << '\n';
  }
  for (const HistogramView& h : snapshot.histograms) {
    const std::string p = prometheusName(h.name);
    out << "# TYPE " << p << " summary\n";
    out << p << "{quantile=\"0.5\"} " << num(h.p50) << '\n';
    out << p << "{quantile=\"0.9\"} " << num(h.p90) << '\n';
    out << p << "{quantile=\"0.99\"} " << num(h.p99) << '\n';
    out << p << "_sum " << num(h.sum) << '\n';
    out << p << "_count " << h.count << '\n';
  }
  return out.str();
}

std::string toJson(const MetricsSnapshot& snapshot,
                   const EventJournal* journal) {
  std::ostringstream out;
  out << "{\n  \"counters\": {";
  for (size_t i = 0; i < snapshot.counters.size(); ++i) {
    out << (i ? ", " : "") << '"' << jsonEscape(snapshot.counters[i].first)
        << "\": " << snapshot.counters[i].second;
  }
  out << "},\n  \"gauges\": {";
  for (size_t i = 0; i < snapshot.gauges.size(); ++i) {
    out << (i ? ", " : "") << '"' << jsonEscape(snapshot.gauges[i].first)
        << "\": " << num(snapshot.gauges[i].second);
  }
  out << "},\n  \"histograms\": {\n";
  for (size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const HistogramView& h = snapshot.histograms[i];
    out << "    \"" << jsonEscape(h.name) << "\": {\"count\": " << h.count
        << ", \"sum\": " << num(h.sum) << ", \"min\": " << num(h.min)
        << ", \"max\": " << num(h.max) << ", \"p50\": " << num(h.p50)
        << ", \"p90\": " << num(h.p90) << ", \"p99\": " << num(h.p99) << '}'
        << (i + 1 < snapshot.histograms.size() ? "," : "") << '\n';
  }
  out << "  }";
  if (journal) {
    out << ",\n  \"events_dropped\": " << journal->dropped();
    out << ",\n  \"events\": [\n";
    const std::vector<Event> events = journal->events();
    for (size_t i = 0; i < events.size(); ++i) {
      const Event& ev = events[i];
      out << "    {\"t\": " << num(ev.wallS) << ", \"severity\": \""
          << severityName(ev.severity) << "\", \"what\": \""
          << jsonEscape(ev.what) << '"';
      for (const auto& [key, value] : ev.fields) {
        out << ", \"" << jsonEscape(key) << "\": \"" << jsonEscape(value)
            << '"';
      }
      out << '}' << (i + 1 < events.size() ? "," : "") << '\n';
    }
    out << "  ]";
  }
  out << "\n}\n";
  return out.str();
}

bool writeTextFile(const std::string& path, const std::string& contents,
                   core::IoEnv* io) {
  // Truncate-in-place would leave torn JSON if the process (or the power)
  // dies mid-write; scrapers and CI trenders read these files while the
  // system runs, so they get the same old-or-new contract as checkpoints.
  return core::writeFileDurableNoThrow(core::resolveIo(io), path, contents);
}

}  // namespace tagspin::obs
