// Bounded structured event journal for discrete runtime events (breaker
// trips, watchdog fires, checkpoint failures) -- the narrative complement
// to the registry's counters.  Metrics say *how often*; the journal says
// *what happened last*, with enough key/value context to debug a specific
// incident from the exported snapshot.
//
// The ring is mutex-protected: events are rare (per-incident, not
// per-report), so a lock on this cold path is fine, and it keeps the ring
// trivially correct under threaded deployments.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace tagspin::obs {

enum class Severity { kDebug, kInfo, kWarn, kError };
const char* severityName(Severity severity);

struct Event {
  double wallS = 0.0;  // runtime tick time (the runtime is clock-free)
  Severity severity = Severity::kInfo;
  std::string what;
  std::vector<std::pair<std::string, std::string>> fields;
};

class EventJournal {
 public:
  explicit EventJournal(size_t capacity = 256)
      : capacity_(capacity < 1 ? 1 : capacity) {}

  void record(double wallS, Severity severity, std::string what,
              std::initializer_list<std::pair<std::string, std::string>>
                  fields = {});

  /// Events currently retained, oldest first.
  std::vector<Event> events() const;

  /// Lifetime totals: everything ever recorded, and how many of those were
  /// overwritten by the bound.
  uint64_t recorded() const;
  uint64_t dropped() const;
  size_t capacity() const { return capacity_; }

 private:
  size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<Event> ring_;
  size_t head_ = 0;  // index of the oldest event once the ring is full
  uint64_t recorded_ = 0;
};

/// Null-safe helper mirroring obs::add/observe.
inline void record(EventJournal* journal, double wallS, Severity severity,
                   std::string what,
                   std::initializer_list<std::pair<std::string, std::string>>
                       fields = {}) {
#ifdef TAGSPIN_OBS_NOOP
  (void)journal; (void)wallS; (void)severity; (void)what; (void)fields;
#else
  if (journal) journal->record(wallS, severity, std::move(what), fields);
#endif
}

}  // namespace tagspin::obs
