// Exporters: turn a MetricsSnapshot (plus optionally the event journal)
// into the two formats a deployment actually scrapes --
//  * a Prometheus text-format page (counters, gauges, and histograms as
//    summaries with p50/p90/p99 quantiles), every metric prefixed
//    "tagspin_" with dots mapped to underscores;
//  * a JSON snapshot (stable key order) for dashboards, CI trending and
//    the sidecar files written next to checkpoints.
#pragma once

#include <string>

#include "core/io_env.hpp"
#include "obs/journal.hpp"
#include "obs/metrics.hpp"

namespace tagspin::obs {

/// "session.disconnects" -> "tagspin_session_disconnects"; any character
/// outside [a-zA-Z0-9_] becomes '_'.
std::string prometheusName(const std::string& name);

std::string toPrometheus(const MetricsSnapshot& snapshot);

/// JSON object {"counters": {...}, "gauges": {...}, "histograms": {...}}
/// plus, when a journal is given, {"events": [...], "events_dropped": N}.
std::string toJson(const MetricsSnapshot& snapshot,
                   const EventJournal* journal = nullptr);

/// Best-effort text write (used for metric sidecars next to checkpoints and
/// the CLI's periodic dumps).  Returns false instead of throwing: telemetry
/// export must never take down ingestion.  Atomic and durable (tmp + fsync +
/// rename + parent dirsync, see core::writeFileDurable): a crash mid-export
/// leaves the previous sidecar, never torn JSON.  `io` selects the storage
/// environment; nullptr means the real filesystem.
bool writeTextFile(const std::string& path, const std::string& contents,
                   core::IoEnv* io = nullptr);

}  // namespace tagspin::obs
