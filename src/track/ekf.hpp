// Extended Kalman filter reference implementation.
//
// Purpose-built cross-check for the square-root UKF: same motion models,
// same linear position measurement, but the textbook covariance form --
// P propagated via the analytic Jacobian (F P F^T + Q) and updated in
// Joseph form.  On the linear constant-velocity model both filters ARE the
// closed-form Kalman filter, and the tests pin them together to 1e-9; on
// the coordinated-turn model the pair brackets linearization error, which
// is the honest way to notice when a motion model has outgrown an EKF.
#pragma once

#include "dsp/linalg.hpp"
#include "track/filter.hpp"
#include "track/motion.hpp"

namespace tagspin::track {

class Ekf final : public PositionFilter {
 public:
  Ekf(MotionModelId model, MotionNoise noise);

  void reset(const std::vector<double>& x0,
             const std::vector<double>& stdDiag) override;
  void predict(double dt) override;
  void setProcessNoiseScale(double scale) override { qScale_ = scale; }
  double update(const geom::Vec2& z, const Cov2& r) override;
  const std::vector<double>& state() const override { return x_; }
  Cov2 positionCovariance() const override;

  MotionModelId model() const { return model_; }
  const dsp::Matrix& covariance() const { return p_; }

 private:
  MotionModelId model_;
  MotionNoise noise_;
  size_t n_;
  double qScale_ = 1.0;
  std::vector<double> x_;
  dsp::Matrix p_;
};

}  // namespace tagspin::track
