#include "track/ukf.hpp"

#include <cmath>
#include <stdexcept>

#include "track/kalman.hpp"

namespace tagspin::track {

namespace {

dsp::Matrix cov2ToMatrix(const Cov2& r) {
  dsp::Matrix m(2, 2);
  m(0, 0) = r.xx;
  m(0, 1) = r.xy;
  m(1, 0) = r.xy;
  m(1, 1) = r.yy;
  return m;
}

}  // namespace

double PositionFilter::gateNis(const geom::Vec2& z, const Cov2& r) const {
  const Cov2 p = positionCovariance();
  Cov2 sInnov{p.xx + r.xx, p.xy + r.xy, p.yy + r.yy};
  const double det = sInnov.det();
  if (!(det > 0.0)) return std::numeric_limits<double>::infinity();
  const geom::Vec2 pos = position();
  const double nx = z.x - pos.x;
  const double ny = z.y - pos.y;
  return (sInnov.yy * nx * nx - 2.0 * sInnov.xy * nx * ny +
          sInnov.xx * ny * ny) /
         det;
}

SquareRootUkf::SquareRootUkf(MotionModelId model, MotionNoise noise)
    : model_(model),
      noise_(noise),
      n_(stateDim(model)),
      x_(n_, 0.0),
      s_(n_, n_) {
  for (size_t i = 0; i < n_; ++i) s_(i, i) = 1.0;
}

void SquareRootUkf::reset(const std::vector<double>& x0,
                          const std::vector<double>& stdDiag) {
  if (x0.size() != n_ || stdDiag.size() != n_) {
    throw std::invalid_argument("SquareRootUkf::reset: wrong dimension");
  }
  x_ = x0;
  s_ = dsp::Matrix(n_, n_);
  for (size_t i = 0; i < n_; ++i) {
    s_(i, i) = std::max(stdDiag[i], 1e-6);
  }
}

void SquareRootUkf::predict(double dt) {
  if (dt < 0.0) throw std::invalid_argument("SquareRootUkf: dt < 0");
  // Sigma points: lambda = 0 -> spread sqrt(n), X0 carries weight Wm0 = 0
  // and Wc0 = 2 (alpha = 1, beta = 2); the 2n symmetric points carry
  // 1/(2n) each.  All covariance weights are >= 0: no downdate here.
  const double spread = std::sqrt(static_cast<double>(n_));
  const double wi = 1.0 / (2.0 * static_cast<double>(n_));
  const double wc0 = 2.0;

  std::vector<std::vector<double>> sigma(2 * n_ + 1);
  sigma[0] = x_;
  for (size_t j = 0; j < n_; ++j) {
    std::vector<double> plus = x_;
    std::vector<double> minus = x_;
    for (size_t i = 0; i < n_; ++i) {
      const double d = spread * s_(i, j);
      plus[i] += d;
      minus[i] -= d;
    }
    sigma[1 + j] = std::move(plus);
    sigma[1 + n_ + j] = std::move(minus);
  }
  for (auto& p : sigma) p = propagateState(model_, p, dt);

  // Predicted mean (Wm0 = 0: the centre point drops out of the mean).
  std::vector<double> mean(n_, 0.0);
  for (size_t k = 1; k < sigma.size(); ++k) {
    for (size_t i = 0; i < n_; ++i) mean[i] += wi * sigma[k][i];
  }

  // Compound deviation matrix [sqrt(wi)*(Xi - mean) | sqrt(Q)].
  const dsp::Matrix sqrtQ = processNoiseSqrt(model_, noise_, dt);
  const double sqScale = std::sqrt(std::max(qScale_, 1.0));
  dsp::Matrix compound(n_, 2 * n_ + n_);
  const double swi = std::sqrt(wi);
  for (size_t k = 1; k < sigma.size(); ++k) {
    for (size_t i = 0; i < n_; ++i) {
      compound(i, k - 1) = swi * (sigma[k][i] - mean[i]);
    }
  }
  for (size_t i = 0; i < n_; ++i) {
    for (size_t j = 0; j <= i; ++j) {
      compound(i, 2 * n_ + j) = sqScale * sqrtQ(i, j);
    }
  }
  dsp::Matrix sPred = qrFactorLower(compound);
  // Fold in the centre deviation with its positive weight Wc0.
  std::vector<double> d0(n_);
  for (size_t i = 0; i < n_; ++i) d0[i] = std::sqrt(wc0) * (sigma[0][i] - mean[i]);
  cholUpdate(sPred, d0);

  x_ = std::move(mean);
  s_ = std::move(sPred);
}

double SquareRootUkf::update(const geom::Vec2& z, const Cov2& r) {
  // Linear measurement H = [I2 | 0]: the square-root measurement update is
  // exact -- S_z from the QR of [H*S | sqrt(R)], gain via triangular
  // solves, S downdated by the gain columns.
  const auto sqrtR = cholesky(cov2ToMatrix(r));
  if (!sqrtR) {
    throw std::invalid_argument("SquareRootUkf::update: R not PSD");
  }
  // Compound [H*S | sqrt(R)] is 2 x (n + 2); H*S picks the top two rows.
  dsp::Matrix compound(2, n_ + 2);
  for (size_t i = 0; i < 2; ++i) {
    for (size_t j = 0; j < n_; ++j) compound(i, j) = s_(i, j);
    for (size_t j = 0; j < 2; ++j) compound(i, n_ + j) = (*sqrtR)(i, j);
  }
  const dsp::Matrix sz = qrFactorLower(compound);

  // Cross covariance P_xz = P * H^T = (S S^T) columns 0..1.
  dsp::Matrix pxz(n_, 2);
  for (size_t i = 0; i < n_; ++i) {
    for (size_t j = 0; j < 2; ++j) {
      double v = 0.0;
      const size_t kMax = std::min(i, j) + 1;
      for (size_t k = 0; k < kMax; ++k) v += s_(i, k) * s_(j, k);
      pxz(i, j) = v;
    }
  }
  // K = P_xz * (S_z S_z^T)^-1, one row at a time via triangular solves.
  dsp::Matrix gain(n_, 2);
  for (size_t i = 0; i < n_; ++i) {
    std::vector<double> row = {pxz(i, 0), pxz(i, 1)};
    row = solveLowerTriangular(sz, std::move(row));
    row = solveLowerTransposed(sz, std::move(row));
    gain(i, 0) = row[0];
    gain(i, 1) = row[1];
  }

  const std::vector<double> innov = {z.x - x_[0], z.y - x_[1]};
  const double nis = quadFormInvSqrt(sz, innov);
  for (size_t i = 0; i < n_; ++i) {
    x_[i] += gain(i, 0) * innov[0] + gain(i, 1) * innov[1];
  }
  // S <- downdate(S, K * S_z), one column of U = K * S_z at a time.
  bool ok = true;
  dsp::Matrix sBackup = s_;
  for (size_t j = 0; j < 2 && ok; ++j) {
    std::vector<double> u(n_, 0.0);
    for (size_t i = 0; i < n_; ++i) {
      for (size_t k = 0; k < 2; ++k) u[i] += gain(i, k) * sz(k, j);
    }
    ok = cholDowndate(s_, std::move(u));
  }
  if (!ok) {
    // Numerically indefinite downdate (vanishing posterior variance):
    // rebuild from the explicit posterior with a diagonal floor.
    s_ = std::move(sBackup);
    dsp::Matrix p(n_, n_);
    for (size_t i = 0; i < n_; ++i) {
      for (size_t j = 0; j < n_; ++j) {
        double v = 0.0;
        for (size_t k = 0; k <= std::min(i, j); ++k) v += s_(i, k) * s_(j, k);
        p(i, j) = v;
      }
    }
    // P_post = P - U U^T with U = K S_z.
    dsp::Matrix u = matMul(gain, sz);
    for (size_t i = 0; i < n_; ++i) {
      for (size_t j = 0; j < n_; ++j) {
        p(i, j) -= u(i, 0) * u(j, 0) + u(i, 1) * u(j, 1);
      }
    }
    refactor(p);
  }
  return nis;
}

void SquareRootUkf::refactor(const dsp::Matrix& p) {
  dsp::Matrix reg = p;
  // Symmetrize, then escalate the diagonal floor until Cholesky succeeds.
  for (size_t i = 0; i < n_; ++i) {
    for (size_t j = i + 1; j < n_; ++j) {
      const double v = 0.5 * (reg(i, j) + reg(j, i));
      reg(i, j) = v;
      reg(j, i) = v;
    }
  }
  for (double floor = 1e-12; floor < 1.0; floor *= 100.0) {
    for (size_t i = 0; i < n_; ++i) {
      if (reg(i, i) < floor) reg(i, i) = floor;
    }
    if (auto l = cholesky(reg)) {
      s_ = std::move(*l);
      return;
    }
    for (size_t i = 0; i < n_; ++i) reg(i, i) += floor;
  }
  throw std::runtime_error("SquareRootUkf: covariance refactor failed");
}

Cov2 SquareRootUkf::positionCovariance() const {
  Cov2 p;
  p.xx = s_(0, 0) * s_(0, 0);
  p.xy = s_(1, 0) * s_(0, 0);
  p.yy = s_(1, 0) * s_(1, 0) + s_(1, 1) * s_(1, 1);
  return p;
}

dsp::Matrix SquareRootUkf::covariance() const {
  dsp::Matrix p(n_, n_);
  for (size_t i = 0; i < n_; ++i) {
    for (size_t j = 0; j < n_; ++j) {
      double v = 0.0;
      for (size_t k = 0; k <= std::min(i, j); ++k) v += s_(i, k) * s_(j, k);
      p(i, j) = v;
    }
  }
  return p;
}

}  // namespace tagspin::track
