#include "track/motion.hpp"

#include <cmath>
#include <stdexcept>

#include "track/kalman.hpp"

namespace tagspin::track {

namespace {

/// Below this |omega * dt| the CT trigonometry is evaluated by its series
/// limit (the CV propagation), keeping the Jacobian finite.
constexpr double kOmegaEps = 1e-9;

}  // namespace

const char* motionModelName(MotionModelId id) {
  switch (id) {
    case MotionModelId::kConstantVelocity:
      return "cv";
    case MotionModelId::kCoordinatedTurn:
      return "ct";
  }
  return "?";
}

size_t stateDim(MotionModelId id) {
  return id == MotionModelId::kCoordinatedTurn ? 5 : 4;
}

std::vector<double> propagateState(MotionModelId id,
                                   const std::vector<double>& x, double dt) {
  if (x.size() != stateDim(id)) {
    throw std::invalid_argument("propagateState: wrong state dimension");
  }
  if (id == MotionModelId::kConstantVelocity) {
    return {x[0] + dt * x[2], x[1] + dt * x[3], x[2], x[3]};
  }
  const double w = x[4];
  const double a = w * dt;
  if (std::abs(a) < kOmegaEps) {
    return {x[0] + dt * x[2], x[1] + dt * x[3], x[2], x[3], w};
  }
  const double sa = std::sin(a);
  const double ca = std::cos(a);
  return {x[0] + (sa * x[2] - (1.0 - ca) * x[3]) / w,
          x[1] + ((1.0 - ca) * x[2] + sa * x[3]) / w,
          ca * x[2] - sa * x[3],
          sa * x[2] + ca * x[3],
          w};
}

dsp::Matrix propagateJacobian(MotionModelId id, const std::vector<double>& x,
                              double dt) {
  const size_t n = stateDim(id);
  dsp::Matrix f(n, n);
  for (size_t i = 0; i < n; ++i) f(i, i) = 1.0;
  if (id == MotionModelId::kConstantVelocity) {
    f(0, 2) = dt;
    f(1, 3) = dt;
    return f;
  }
  const double w = x[4];
  const double vx = x[2];
  const double vy = x[3];
  const double a = w * dt;
  if (std::abs(a) < kOmegaEps) {
    // CV limit plus the exact omega column of the series expansion.
    f(0, 2) = dt;
    f(1, 3) = dt;
    f(0, 4) = -0.5 * dt * dt * vy;
    f(1, 4) = 0.5 * dt * dt * vx;
    f(2, 4) = -dt * vy;
    f(3, 4) = dt * vx;
    return f;
  }
  const double sa = std::sin(a);
  const double ca = std::cos(a);
  f(0, 2) = sa / w;
  f(0, 3) = -(1.0 - ca) / w;
  f(1, 2) = (1.0 - ca) / w;
  f(1, 3) = sa / w;
  f(2, 2) = ca;
  f(2, 3) = -sa;
  f(3, 2) = sa;
  f(3, 3) = ca;
  // d/dw of the position/velocity rows.
  f(0, 4) = (ca * dt * vx - sa * dt * vy) / w -
            (sa * vx - (1.0 - ca) * vy) / (w * w);
  f(1, 4) = (sa * dt * vx + ca * dt * vy) / w -
            ((1.0 - ca) * vx + sa * vy) / (w * w);
  f(2, 4) = -sa * dt * vx - ca * dt * vy;
  f(3, 4) = ca * dt * vx - sa * dt * vy;
  return f;
}

dsp::Matrix processNoise(MotionModelId id, const MotionNoise& noise,
                         double dt) {
  const size_t n = stateDim(id);
  const double q = noise.accelStd * noise.accelStd;
  const double dt2 = dt * dt;
  const double dt3 = dt2 * dt;
  dsp::Matrix m(n, n);
  // Discrete Wiener-acceleration block per axis.
  m(0, 0) = m(1, 1) = q * dt3 / 3.0;
  m(0, 2) = m(2, 0) = q * dt2 / 2.0;
  m(1, 3) = m(3, 1) = q * dt2 / 2.0;
  m(2, 2) = m(3, 3) = q * dt;
  if (id == MotionModelId::kCoordinatedTurn) {
    m(4, 4) = noise.turnRateStd * noise.turnRateStd * dt;
  }
  return m;
}

dsp::Matrix processNoiseSqrt(MotionModelId id, const MotionNoise& noise,
                             double dt) {
  dsp::Matrix q = processNoise(id, noise, dt);
  // Floor the diagonal so the factor exists even for dt = 0 (a repeated
  // timestamp must not break the square-root form).
  for (size_t i = 0; i < q.rows(); ++i) {
    if (q(i, i) < 1e-12) q(i, i) = 1e-12;
  }
  const auto l = cholesky(q);
  if (!l) {
    throw std::runtime_error("processNoiseSqrt: Q not positive definite");
  }
  return *l;
}

}  // namespace tagspin::track
