#include "track/ekf.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "track/kalman.hpp"

namespace tagspin::track {

Ekf::Ekf(MotionModelId model, MotionNoise noise)
    : model_(model), noise_(noise), n_(stateDim(model)), x_(n_, 0.0),
      p_(n_, n_) {
  for (size_t i = 0; i < n_; ++i) p_(i, i) = 1.0;
}

void Ekf::reset(const std::vector<double>& x0,
                const std::vector<double>& stdDiag) {
  if (x0.size() != n_ || stdDiag.size() != n_) {
    throw std::invalid_argument("Ekf::reset: wrong dimension");
  }
  x_ = x0;
  p_ = dsp::Matrix(n_, n_);
  for (size_t i = 0; i < n_; ++i) {
    const double s = std::max(stdDiag[i], 1e-6);
    p_(i, i) = s * s;
  }
}

void Ekf::predict(double dt) {
  if (dt < 0.0) throw std::invalid_argument("Ekf: dt < 0");
  const dsp::Matrix f = propagateJacobian(model_, x_, dt);
  x_ = propagateState(model_, x_, dt);
  dsp::Matrix fp = matMul(f, p_);
  p_ = matMul(fp, matTranspose(f));
  const dsp::Matrix q = processNoise(model_, noise_, dt);
  const double qs = std::max(qScale_, 1.0);
  for (size_t i = 0; i < n_; ++i) {
    for (size_t j = 0; j < n_; ++j) p_(i, j) += qs * q(i, j);
  }
}

double Ekf::update(const geom::Vec2& z, const Cov2& r) {
  // Innovation covariance S = H P H^T + R (2x2, H = [I2 | 0]).
  const double sxx = p_(0, 0) + r.xx;
  const double sxy = p_(0, 1) + r.xy;
  const double syy = p_(1, 1) + r.yy;
  const double det = sxx * syy - sxy * sxy;
  if (!(det > 0.0)) {
    throw std::runtime_error("Ekf::update: innovation covariance singular");
  }
  const double i00 = syy / det;
  const double i01 = -sxy / det;
  const double i11 = sxx / det;

  const double nx = z.x - x_[0];
  const double ny = z.y - x_[1];
  const double nis = i00 * nx * nx + 2.0 * i01 * nx * ny + i11 * ny * ny;

  // K = P H^T S^-1 (n x 2).
  dsp::Matrix k(n_, 2);
  for (size_t i = 0; i < n_; ++i) {
    k(i, 0) = p_(i, 0) * i00 + p_(i, 1) * i01;
    k(i, 1) = p_(i, 0) * i01 + p_(i, 1) * i11;
  }
  for (size_t i = 0; i < n_; ++i) {
    x_[i] += k(i, 0) * nx + k(i, 1) * ny;
  }
  // Joseph form: P = (I - K H) P (I - K H)^T + K R K^T.
  dsp::Matrix ikh(n_, n_);
  for (size_t i = 0; i < n_; ++i) ikh(i, i) = 1.0;
  for (size_t i = 0; i < n_; ++i) {
    ikh(i, 0) -= k(i, 0);
    ikh(i, 1) -= k(i, 1);
  }
  dsp::Matrix p1 = matMul(matMul(ikh, p_), matTranspose(ikh));
  for (size_t i = 0; i < n_; ++i) {
    for (size_t j = 0; j < n_; ++j) {
      const double krk = k(i, 0) * (r.xx * k(j, 0) + r.xy * k(j, 1)) +
                         k(i, 1) * (r.xy * k(j, 0) + r.yy * k(j, 1));
      p1(i, j) += krk;
    }
  }
  // Symmetrize against round-off drift.
  for (size_t i = 0; i < n_; ++i) {
    for (size_t j = i + 1; j < n_; ++j) {
      const double v = 0.5 * (p1(i, j) + p1(j, i));
      p1(i, j) = v;
      p1(j, i) = v;
    }
  }
  p_ = std::move(p1);
  return nis;
}

Cov2 Ekf::positionCovariance() const {
  return {p_(0, 0), p_(0, 1), p_(1, 1)};
}

}  // namespace tagspin::track
