// Square-root unscented Kalman filter over a track/motion.hpp model.
//
// The covariance is carried as its lower-triangular Cholesky factor S
// (P = S S^T) end to end: the time update rebuilds S from the QR factor of
// the weighted sigma-point deviation matrix (plus the process-noise
// square root), and the measurement update downdates S by the Kalman-gain
// columns.  Working in square-root form halves the effective condition
// number and guarantees P stays symmetric PSD through long coasting
// stretches and near-singular measurement ellipses -- the two regimes the
// fix stream actually produces.
//
// Sigma-point parameters are alpha = 1, beta = 2, kappa = 0 (lambda = 0):
// every covariance weight is non-negative, so the time update never needs
// a downdate and cannot lose positive definiteness.  With a linear motion
// model (constant velocity) the sigma points propagate exactly linearly
// and the filter reduces to the closed-form Kalman filter bit-for-bit
// modulo round-off (asserted to 1e-9 in tests).
//
// Shape reference: the UKF in
// /root/related/P-munchy__victor/coretech/common/robot/imuUKF.cpp
// (square-root form, rank-1 updates); this one is generic over the motion
// model instead of IMU-specific.
#pragma once

#include "dsp/linalg.hpp"
#include "track/filter.hpp"
#include "track/motion.hpp"

namespace tagspin::track {

class SquareRootUkf final : public PositionFilter {
 public:
  SquareRootUkf(MotionModelId model, MotionNoise noise);

  void reset(const std::vector<double>& x0,
             const std::vector<double>& stdDiag) override;
  void predict(double dt) override;
  void setProcessNoiseScale(double scale) override { qScale_ = scale; }
  double update(const geom::Vec2& z, const Cov2& r) override;
  const std::vector<double>& state() const override { return x_; }
  Cov2 positionCovariance() const override;

  MotionModelId model() const { return model_; }
  /// Full covariance P = S S^T (diagnostics / tests).
  dsp::Matrix covariance() const;

 private:
  /// Restore S from an explicit covariance with a diagonal floor -- the
  /// recovery path when a Kalman-gain downdate goes numerically indefinite.
  void refactor(const dsp::Matrix& p);

  MotionModelId model_;
  MotionNoise noise_;
  size_t n_;
  double qScale_ = 1.0;
  std::vector<double> x_;
  dsp::Matrix s_;  // lower-triangular, P = s_ s_^T
};

}  // namespace tagspin::track
