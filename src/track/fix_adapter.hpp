// Bridge from the locator's resilient fixes to tracker measurements.
//
// Everything the tracker needs is already attached to a ResilientFix2D:
// the bootstrap confidence ellipse becomes the measurement covariance
// R_k, the per-rig spin verdicts fold into a single measurement verdict
// (worst rig wins -- one quarantined spectrum is enough to distrust the
// intersection), and the resilience report's confidence rides along so
// degraded fixes are weighted down instead of discarded.
#pragma once

#include "core/locator.hpp"
#include "track/measurement.hpp"

namespace tagspin::track {

/// Fold the per-rig spin verdicts of a fix into one measurement verdict:
/// the worst verdict among the rigs that were actually used.  Fixes with
/// diagnostics disabled (no spins recorded) are accepted.  A sub-threshold
/// inlier fraction (consensus path) also raises suspicion.
MeasurementVerdict foldVerdict(const core::EstimationDiagnostics& estimation,
                               double suspectInlierFraction = 0.75);

/// Full conversion: position + ellipse-derived covariance + folded
/// verdict + report confidence.  `fallbackStdM` is the isotropic
/// 1-sigma used when the fix carries no ellipse.
TrackMeasurement toMeasurement(const core::ResilientFix2D& resilient,
                               double timeS, double fallbackStdM = 0.08);

}  // namespace tagspin::track
