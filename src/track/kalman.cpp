#include "track/kalman.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace tagspin::track {

dsp::Matrix matMul(const dsp::Matrix& a, const dsp::Matrix& b) {
  if (a.cols() != b.rows()) {
    throw std::invalid_argument("matMul: inner dimensions disagree");
  }
  dsp::Matrix c(a.rows(), b.cols());
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      for (size_t j = 0; j < b.cols(); ++j) {
        c(i, j) += aik * b(k, j);
      }
    }
  }
  return c;
}

dsp::Matrix matTranspose(const dsp::Matrix& a) {
  dsp::Matrix t(a.cols(), a.rows());
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < a.cols(); ++j) {
      t(j, i) = a(i, j);
    }
  }
  return t;
}

std::vector<double> matVec(const dsp::Matrix& a, const std::vector<double>& x) {
  if (a.cols() != x.size()) {
    throw std::invalid_argument("matVec: dimensions disagree");
  }
  std::vector<double> y(a.rows(), 0.0);
  for (size_t i = 0; i < a.rows(); ++i) {
    double s = 0.0;
    for (size_t j = 0; j < a.cols(); ++j) s += a(i, j) * x[j];
    y[i] = s;
  }
  return y;
}

std::optional<dsp::Matrix> cholesky(const dsp::Matrix& a, double tol) {
  if (a.rows() != a.cols()) return std::nullopt;
  const size_t n = a.rows();
  dsp::Matrix l(n, n);
  for (size_t j = 0; j < n; ++j) {
    double d = a(j, j);
    for (size_t k = 0; k < j; ++k) d -= l(j, k) * l(j, k);
    if (!(d > tol)) return std::nullopt;  // also rejects NaN
    const double lj = std::sqrt(d);
    l(j, j) = lj;
    for (size_t i = j + 1; i < n; ++i) {
      double s = a(i, j);
      for (size_t k = 0; k < j; ++k) s -= l(i, k) * l(j, k);
      l(i, j) = s / lj;
    }
  }
  return l;
}

std::vector<double> solveLowerTriangular(const dsp::Matrix& l,
                                         std::vector<double> b) {
  const size_t n = l.rows();
  for (size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (size_t j = 0; j < i; ++j) s -= l(i, j) * b[j];
    b[i] = s / l(i, i);
  }
  return b;
}

std::vector<double> solveLowerTransposed(const dsp::Matrix& l,
                                         std::vector<double> b) {
  const size_t n = l.rows();
  for (size_t ii = n; ii-- > 0;) {
    double s = b[ii];
    for (size_t j = ii + 1; j < n; ++j) s -= l(j, ii) * b[j];
    b[ii] = s / l(ii, ii);
  }
  return b;
}

dsp::Matrix qrFactorLower(const dsp::Matrix& m) {
  const size_t n = m.rows();
  const size_t cols = m.cols();
  if (cols < n) {
    throw std::invalid_argument("qrFactorLower: need at least n columns");
  }
  // Householder QR of A = M^T (cols x n); R^T is the lower factor we want.
  dsp::Matrix a = matTranspose(m);
  const size_t rows = cols;
  for (size_t k = 0; k < n; ++k) {
    // Householder vector for column k, rows k..rows-1.
    double norm2 = 0.0;
    for (size_t i = k; i < rows; ++i) norm2 += a(i, k) * a(i, k);
    const double norm = std::sqrt(norm2);
    if (norm == 0.0) continue;
    const double alpha = a(k, k) >= 0.0 ? -norm : norm;
    // v = x - alpha * e1 (stored in scratch); beta = 2 / (v^T v).
    std::vector<double> v(rows - k);
    v[0] = a(k, k) - alpha;
    for (size_t i = k + 1; i < rows; ++i) v[i - k] = a(i, k);
    double vtv = 0.0;
    for (double vi : v) vtv += vi * vi;
    if (vtv == 0.0) continue;
    const double beta = 2.0 / vtv;
    // Apply H = I - beta * v v^T to the remaining columns.
    for (size_t j = k; j < n; ++j) {
      double dot = 0.0;
      for (size_t i = k; i < rows; ++i) dot += v[i - k] * a(i, j);
      const double f = beta * dot;
      for (size_t i = k; i < rows; ++i) a(i, j) -= f * v[i - k];
    }
    a(k, k) = alpha;  // exact, avoids residual round-off below the diagonal
  }
  // R is the upper-triangular n x n block of a; S = R^T with a positive
  // diagonal (sign of each row of R is free).
  dsp::Matrix s(n, n);
  for (size_t i = 0; i < n; ++i) {
    const double sign = a(i, i) < 0.0 ? -1.0 : 1.0;
    for (size_t j = i; j < n; ++j) {
      s(j, i) = sign * a(i, j);
    }
  }
  return s;
}

void cholUpdate(dsp::Matrix& s, std::vector<double> u) {
  const size_t n = s.rows();
  for (size_t k = 0; k < n; ++k) {
    const double r = std::hypot(s(k, k), u[k]);
    const double c = r / s(k, k);
    const double sn = u[k] / s(k, k);
    s(k, k) = r;
    for (size_t i = k + 1; i < n; ++i) {
      s(i, k) = (s(i, k) + sn * u[i]) / c;
      u[i] = c * u[i] - sn * s(i, k);
    }
  }
}

bool cholDowndate(dsp::Matrix& s, std::vector<double> u) {
  const size_t n = s.rows();
  for (size_t k = 0; k < n; ++k) {
    const double d = s(k, k) * s(k, k) - u[k] * u[k];
    if (!(d > 0.0)) return false;
    const double r = std::sqrt(d);
    const double c = r / s(k, k);
    const double sn = u[k] / s(k, k);
    s(k, k) = r;
    for (size_t i = k + 1; i < n; ++i) {
      s(i, k) = (s(i, k) - sn * u[i]) / c;
      u[i] = c * u[i] - sn * s(i, k);
    }
  }
  return true;
}

double quadFormInvSqrt(const dsp::Matrix& s, const std::vector<double>& v) {
  const std::vector<double> w = solveLowerTriangular(s, v);
  double q = 0.0;
  for (double wi : w) q += wi * wi;
  return q;
}

double chiSquareInv2(double p) {
  if (!(p > 0.0) || !(p < 1.0)) {
    throw std::invalid_argument("chiSquareInv2: p must be in (0, 1)");
  }
  return -2.0 * std::log1p(-p);
}

}  // namespace tagspin::track
