// Single-target track management over the fix stream.
//
// The tracker turns the locator's one-shot fixes into a trajectory:
//
//  * two square-root UKF banks (constant-velocity and coordinated-turn)
//    run in lockstep on every accepted fix, and the active model -- the
//    one whose estimate is reported -- is chosen by windowed normalized
//    innovation squared (NIS) with hysteresis, so a reader that starts
//    turning hands the track to the CT model within a few fixes and
//    hands it back when the path straightens;
//  * each fix is vetted twice before it may touch the filters: the spin
//    self-diagnosis verdict (quarantine -> rejected outright, suspect ->
//    covariance inflated) and a chi-square Mahalanobis gate on the
//    innovation, which is what keeps multipath ghost fixes from walking
//    the track off the trajectory;
//  * lifecycle: tracks are born tentative, confirmed after `confirmHits`
//    accepted fixes, coast on the motion model through drop-out windows,
//    and are dropped -- requiring fresh initialization -- only after
//    `maxCoastS` without an accepted fix.  Surviving an outage therefore
//    means: state() never left {confirmed, coasting} and stats().reinits
//    stayed zero.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>

#include "core/mem_env.hpp"
#include "geom/vec.hpp"
#include "obs/metrics.hpp"
#include "track/measurement.hpp"
#include "track/motion.hpp"
#include "track/ukf.hpp"

namespace tagspin::track {

enum class TrackState {
  kDropped = 0,  // no live track; next accepted fix re-initializes
  kTentative,    // initialized, not yet confirmed
  kConfirmed,    // established track, fed by fresh fixes
  kCoasting,     // confirmed track riding the motion model through a gap
};
const char* trackStateName(TrackState state);

struct TrackerConfig {
  MotionNoise noise;
  /// Chi-square gate probability on the 2-dof innovation: fixes whose
  /// Mahalanobis NIS exceeds chiSquareInv2(gateProbability) are rejected.
  double gateProbability = 0.99;
  /// Accepted fixes needed to promote tentative -> confirmed.
  int confirmHits = 3;
  /// A confirmed track coasts at most this long before being dropped.
  double maxCoastS = 20.0;
  /// A tentative track is abandoned after this long without an accepted
  /// fix (tentative tracks have not earned a long coast).
  double tentativeMaxCoastS = 6.0;
  /// Initial per-axis standard deviations at (re)initialization.
  double initPosStdM = 0.4;
  double initVelStdMps = 0.6;
  double initTurnRateStd = 0.2;
  /// R-inflation factor applied to fixes the diagnostics call suspect.
  double suspectInflation = 4.0;
  /// Locator confidence scores below this floor widen R proportionally
  /// (score is relative quality, not probability; the ellipse already
  /// carries the calibrated uncertainty, so ordinary scores leave R
  /// alone).
  double lowConfidence = 0.05;
  /// Fix-count window for the per-model NIS average driving selection.
  int nisWindow = 6;
  /// The inactive model must beat the active one by this factor (on
  /// windowed NIS) to take over -- hysteresis against chatter.
  double modelSwitchMargin = 1.25;
  /// Run the coordinated-turn bank at all (off = pure CV tracking).
  bool enableCoordinatedTurn = true;
  /// Maneuver-adaptive process noise: when the active bank's windowed NIS
  /// exceeds adaptiveQNis, Q is inflated by their ratio (capped at
  /// adaptiveQMax) on subsequent predicts.  Straight stretches keep the
  /// heavy smoothing of the configured noise; turns get a responsive
  /// filter instead of innovation lag.  Set adaptiveQMax = 1 to disable.
  /// The threshold is on a windowed mean of 2-dof NIS values (expectation
  /// 2), so 3.5 is roughly the 2-sigma maneuver alarm.
  double adaptiveQNis = 3.5;
  double adaptiveQMax = 16.0;
  /// Innovation-based R calibration: the locator's confidence ellipse is
  /// an honest coverage region but often conservative as a 1-sigma noise
  /// model.  A slow multiplicative feedback scales R so the EWMA of the
  /// accepted-fix NIS settles at its chi-square(2) expectation; 0 turns
  /// the calibration off.  The scale is clamped to [rScaleMin, rScaleMax]
  /// so a burst of outliers cannot talk the gate open.
  double rCalibrationRate = 0.15;
  /// NIS value the calibration steers toward.  The chi-square(2)
  /// expectation is 2; a higher target keeps R deliberately conservative
  /// (stronger smoothing) while the gate -- which tests against the
  /// as-reported R -- still accepts every honest fix.
  double rCalibrationTargetNis = 2.0;
  double rScaleMin = 0.2;
  double rScaleMax = 10.0;
  /// Bound on the retained estimate history (0 disables history).  The
  /// history is diagnostics, not filter state: eviction can never move an
  /// estimate, and the most recent *measurement-backed* estimate is pinned
  /// as an anchor so a long coast stays explainable even after its feeding
  /// fixes were evicted.
  size_t historyLimit = 256;
  /// Optional byte ledger the history is charged to.  A denied reservation
  /// sheds oldest-first; if nothing is left to shed the new entry is
  /// refused (counted, never thrown).
  core::MemArena* historyArena = nullptr;
};

/// One output sample of the tracker -- everything downstream consumers
/// (checkpoints, digests, the bench CSV) need, in POD form.
struct TrackEstimate {
  double timeS = 0.0;
  geom::Vec2 position;
  geom::Vec2 velocity;
  Cov2 covariance;
  TrackState state = TrackState::kDropped;
  MotionModelId model = MotionModelId::kConstantVelocity;
  /// NIS of the applied fix; 0 when this sample coasted.
  double nis = 0.0;
  bool usedMeasurement = false;
};

struct TrackerStats {
  uint64_t accepted = 0;
  uint64_t gateRejects = 0;
  uint64_t verdictRejects = 0;
  uint64_t coasts = 0;
  uint64_t modelSwitches = 0;
  uint64_t reinits = 0;
  uint64_t drops = 0;
  uint64_t historyEvicted = 0;  // oldest history entries shed under bound/pressure
  uint64_t historyRefused = 0;  // entries refused outright (arena empty + denied)

  double coastFraction() const {
    const uint64_t total = accepted + coasts;
    return total ? static_cast<double>(coasts) / static_cast<double>(total)
                 : 0.0;
  }
};

class Tracker {
 public:
  explicit Tracker(TrackerConfig config = {});
  ~Tracker();

  /// Resolve track.* instruments from `registry` (null detaches).
  void setMetrics(obs::MetricsRegistry* registry);

  /// Feed one fix.  Handles (re)initialization, gating and model
  /// selection; returns the estimate after processing.
  TrackEstimate onMeasurement(const TrackMeasurement& m);

  /// Advance to `timeS` with no fix (an empty / failed window): the track
  /// coasts on the active motion model, or is dropped past its budget.
  TrackEstimate onGap(double timeS);

  /// Re-seed a confirmed track from checkpointed state (supervisor
  /// restore).  Covariance restarts at the initialization diagonal.
  void seedFrom(double timeS, geom::Vec2 position, geom::Vec2 velocity);

  /// Forget everything; the next fix starts a fresh tentative track.
  void reset();

  bool hasEstimate() const { return state_ != TrackState::kDropped; }
  TrackState state() const { return state_; }
  MotionModelId activeModel() const { return activeModel_; }
  const TrackerStats& stats() const { return stats_; }
  const TrackerConfig& config() const { return config_; }
  /// Last emitted estimate (valid once hasEstimate()).
  const TrackEstimate& lastEstimate() const { return last_; }

  /// Bounded estimate history (newest at the back; empty when disabled).
  const std::deque<TrackEstimate>& history() const { return history_; }
  /// The pinned most-recent measurement-backed estimate; survives any
  /// amount of history eviction (coasting-safe).
  bool hasAnchor() const { return hasAnchor_; }
  const TrackEstimate& anchor() const { return anchor_; }

  /// Bytes of growable state (the history); the term the supervisor's
  /// memory footprint estimate charges for tracking.
  uint64_t memoryBytes() const {
    return uint64_t(history_.size()) * sizeof(TrackEstimate);
  }

 private:
  struct Bank {
    MotionModelId model;
    std::unique_ptr<SquareRootUkf> filter;
    std::deque<double> nisWindow;
    double windowedNis() const;
  };

  void initializeAt(const TrackMeasurement& m, bool isReinit);
  void coastTo(double timeS);
  void dropTrack();
  Bank& active();
  const Bank& active() const;
  TrackEstimate makeEstimate(double timeS, double nis, bool used);
  void maybeSwitchModel();
  void publishGauges();
  void recordHistory(const TrackEstimate& estimate);
  void evictHistoryFront();
  void releaseHistory();

  TrackerConfig config_;
  std::vector<Bank> banks_;
  size_t activeIdx_ = 0;
  MotionModelId activeModel_ = MotionModelId::kConstantVelocity;
  TrackState state_ = TrackState::kDropped;
  double gateThreshold_ = 0.0;
  int hits_ = 0;
  bool everInitialized_ = false;
  double rScale_ = 1.0;    // innovation-calibrated R multiplier
  double ewmaNis_ = 2.0;   // EWMA of accepted-fix NIS (expectation 2)
  double filterTimeS_ = 0.0;   // time the filters are predicted to
  double lastAcceptS_ = 0.0;   // time of the last accepted fix
  TrackEstimate last_;
  std::deque<TrackEstimate> history_;
  TrackEstimate anchor_;
  bool hasAnchor_ = false;
  TrackerStats stats_;

  struct Instruments {
    obs::Counter* accepted = nullptr;
    obs::Counter* gateRejects = nullptr;
    obs::Counter* verdictRejects = nullptr;
    obs::Counter* coasts = nullptr;
    obs::Counter* modelSwitches = nullptr;
    obs::Counter* reinits = nullptr;
    obs::Counter* drops = nullptr;
    obs::Histogram* nis = nullptr;
    obs::Gauge* coastFraction = nullptr;
    obs::Gauge* state = nullptr;
    obs::Gauge* model = nullptr;
  } obs_;
};

}  // namespace tagspin::track
