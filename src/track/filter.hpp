// Common interface of the tracking filters (square-root UKF and the EKF
// reference implementation), so the tracker and the tests can swap them.
//
// All filters estimate a motion-model state whose first four entries are
// [x, y, vx, vy] (metres, metres/second) and consume position-only
// measurements z = [x, y] with per-measurement covariance R_k.  The
// measurement model is linear (H = [I2 | 0]); the nonlinearity lives in
// the motion models (track/motion.hpp), which is where the UKF's sigma
// points and the EKF's Jacobians earn their keep.
#pragma once

#include <vector>

#include "geom/vec.hpp"
#include "track/measurement.hpp"

namespace tagspin::track {

class PositionFilter {
 public:
  virtual ~PositionFilter() = default;

  /// (Re)initialize at state x0 with a diagonal covariance of the given
  /// per-component standard deviations (both sized to the model's state
  /// dimension).
  virtual void reset(const std::vector<double>& x0,
                     const std::vector<double>& stdDiag) = 0;

  /// Time update by dt seconds (dt >= 0).
  virtual void predict(double dt) = 0;

  /// Scale factor (>= 1) applied to the process noise covariance on
  /// subsequent predicts -- the tracker's maneuver-adaptive Q hook.  1
  /// restores the configured noise.
  virtual void setProcessNoiseScale(double scale) = 0;

  /// Measurement update with covariance r; returns the normalized
  /// innovation squared (NIS) of the applied measurement.
  virtual double update(const geom::Vec2& z, const Cov2& r) = 0;

  /// NIS the measurement WOULD have against the current (predicted) state,
  /// without applying it -- the Mahalanobis gate statistic.  Exact for the
  /// linear position measurement: nu^T (P_pos + R)^-1 nu.
  virtual double gateNis(const geom::Vec2& z, const Cov2& r) const;

  virtual const std::vector<double>& state() const = 0;
  /// Position block of the state covariance.
  virtual Cov2 positionCovariance() const = 0;

  geom::Vec2 position() const {
    return {state()[0], state()[1]};
  }
  geom::Vec2 velocity() const {
    return {state()[2], state()[3]};
  }
};

}  // namespace tagspin::track
