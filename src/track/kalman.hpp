// Dense matrix kernels for the square-root Kalman layer.
//
// The tracking filters live or die on covariance conditioning: a fix
// stream carries near-singular measurement ellipses (a two-ray fix whose
// rays are almost parallel) and long coasting stretches inflate the state
// covariance by orders of magnitude.  The square-root UKF therefore never
// forms a covariance P directly -- it propagates a lower-triangular factor
// S with P = S * S^T, which keeps the effective condition number at
// sqrt(cond(P)).  This header supplies exactly the kernels that form
// needs on top of dsp::Matrix: triangular solves, Cholesky, the QR
// triangular factor of a tall deviation matrix, and hyperbolic rank-1
// updates/downdates of a Cholesky factor.
#pragma once

#include <optional>
#include <vector>

#include "dsp/linalg.hpp"

namespace tagspin::track {

/// C = A * B.
dsp::Matrix matMul(const dsp::Matrix& a, const dsp::Matrix& b);
/// A^T.
dsp::Matrix matTranspose(const dsp::Matrix& a);
/// y = A * x.
std::vector<double> matVec(const dsp::Matrix& a, const std::vector<double>& x);

/// Lower-triangular Cholesky factor L with A = L * L^T.  Empty when A is
/// not positive definite to within `tol` (diagonal pivot <= tol).
std::optional<dsp::Matrix> cholesky(const dsp::Matrix& a, double tol = 1e-15);

/// Solve L * x = b with L lower-triangular (forward substitution).
std::vector<double> solveLowerTriangular(const dsp::Matrix& l,
                                         std::vector<double> b);
/// Solve L^T * x = b with L lower-triangular (back substitution).
std::vector<double> solveLowerTransposed(const dsp::Matrix& l,
                                         std::vector<double> b);

/// Lower-triangular S (n x n, non-negative diagonal) such that
/// S * S^T = M * M^T, computed as the transposed QR triangular factor of
/// M^T.  M is n x m with m >= n (each column a deviation vector); this is
/// the compound-matrix step of the square-root UKF time and measurement
/// updates.  Householder, no Q accumulation.
dsp::Matrix qrFactorLower(const dsp::Matrix& m);

/// Rank-1 Cholesky update: replace S by the factor of S*S^T + u*u^T.
/// S lower-triangular, updated in place.
void cholUpdate(dsp::Matrix& s, std::vector<double> u);

/// Rank-1 Cholesky downdate: replace S by the factor of S*S^T - u*u^T.
/// Returns false (leaving S partially modified only in exact-singular
/// corner cases, with the diagonal clamped positive) when the downdated
/// matrix is not numerically positive definite; callers treat that as a
/// signal to re-regularize.
bool cholDowndate(dsp::Matrix& s, std::vector<double> u);

/// Quadratic form v^T * (S * S^T)^-1 * v via two triangular solves -- the
/// normalized innovation squared (NIS) when v is an innovation and S the
/// innovation-covariance factor.
double quadFormInvSqrt(const dsp::Matrix& s, const std::vector<double>& v);

/// Inverse CDF of the chi-square distribution with 2 degrees of freedom:
/// chi2inv(p, 2) = -2 * ln(1 - p).  Closed form, used for both the
/// confidence-ellipse -> covariance conversion and the Mahalanobis gate
/// threshold on 2-D position innovations.
double chiSquareInv2(double p);

}  // namespace tagspin::track
