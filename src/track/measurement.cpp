#include "track/measurement.hpp"

#include <algorithm>
#include <cmath>

#include "track/kalman.hpp"

namespace tagspin::track {

double Cov2::minEigen() const {
  const double tr = 0.5 * (xx + yy);
  const double d = std::sqrt(0.25 * (xx - yy) * (xx - yy) + xy * xy);
  return tr - d;
}

bool Cov2::isPositiveDefinite(double tol) const {
  return std::isfinite(xx) && std::isfinite(xy) && std::isfinite(yy) &&
         minEigen() > tol;
}

const char* measurementVerdictName(MeasurementVerdict verdict) {
  switch (verdict) {
    case MeasurementVerdict::kAccept:
      return "accept";
    case MeasurementVerdict::kSuspect:
      return "suspect";
    case MeasurementVerdict::kQuarantine:
      return "quarantine";
  }
  return "?";
}

Cov2 ellipseToCovariance(const robust::ConfidenceEllipse& ellipse,
                         double floorStdM, double fallbackStdM) {
  const double floorVar = floorStdM * floorStdM;
  // Coverage quantile -> 1-sigma: the axes were scaled by sqrt(chi2inv(p, 2)).
  double level = ellipse.confidenceLevel;
  if (!(level > 0.0) || !(level < 1.0)) level = 0.90;
  const double k2 = chiSquareInv2(level);

  double varMajor = ellipse.semiMajorM * ellipse.semiMajorM / k2;
  double varMinor = ellipse.semiMinorM * ellipse.semiMinorM / k2;
  const double theta = ellipse.orientationRad;
  if (!std::isfinite(varMajor) || !std::isfinite(varMinor) ||
      !std::isfinite(theta)) {
    return Cov2::isotropic(fallbackStdM);
  }
  // Regularize in the eigenbasis: a degenerate/collapsed axis gets the
  // floor variance instead of making R singular.
  varMajor = std::max(varMajor, floorVar);
  varMinor = std::max(varMinor, floorVar);

  const double c = std::cos(theta);
  const double s = std::sin(theta);
  Cov2 r;
  r.xx = varMajor * c * c + varMinor * s * s;
  r.xy = (varMajor - varMinor) * c * s;
  r.yy = varMajor * s * s + varMinor * c * c;
  // Round-off in the rotation can still shave the smaller eigenvalue below
  // the floor; bump the diagonal until the factorization is safe.
  if (!r.isPositiveDefinite(0.25 * floorVar)) {
    r.xx += floorVar;
    r.yy += floorVar;
  }
  if (!r.isPositiveDefinite()) {
    return Cov2::isotropic(fallbackStdM);
  }
  return r;
}

}  // namespace tagspin::track
