#include "track/fix_adapter.hpp"

#include <algorithm>

namespace tagspin::track {

MeasurementVerdict foldVerdict(const core::EstimationDiagnostics& estimation,
                               double suspectInlierFraction) {
  MeasurementVerdict worst = MeasurementVerdict::kAccept;
  for (const auto& spin : estimation.spins) {
    MeasurementVerdict v = MeasurementVerdict::kAccept;
    switch (spin.verdict) {
      case robust::SpinVerdict::kAccept:
        v = MeasurementVerdict::kAccept;
        break;
      case robust::SpinVerdict::kSuspect:
        v = MeasurementVerdict::kSuspect;
        break;
      case robust::SpinVerdict::kQuarantine:
        v = MeasurementVerdict::kQuarantine;
        break;
    }
    worst = std::max(worst, v);
  }
  // A consensus fix that had to out-vote a large outlier fraction is
  // suspect even when every individual spectrum looked clean.
  if (estimation.consensusUsed &&
      estimation.inlierFraction < suspectInlierFraction) {
    worst = std::max(worst, MeasurementVerdict::kSuspect);
  }
  // Rays that put the fix behind a rig are the mirror-peak signature.
  if (estimation.behindOriginRays > 0) {
    worst = std::max(worst, MeasurementVerdict::kSuspect);
  }
  return worst;
}

TrackMeasurement toMeasurement(const core::ResilientFix2D& resilient,
                               double timeS, double fallbackStdM) {
  TrackMeasurement m;
  m.timeS = timeS;
  m.position = resilient.fix.position;
  if (resilient.fix.estimation.ellipse) {
    m.covariance = ellipseToCovariance(*resilient.fix.estimation.ellipse,
                                       /*floorStdM=*/0.01, fallbackStdM);
  } else {
    m.covariance = Cov2::isotropic(fallbackStdM);
  }
  m.verdict = foldVerdict(resilient.fix.estimation);
  m.confidence = std::clamp(resilient.report.confidence, 0.0, 1.0);
  if (m.confidence <= 0.0) m.confidence = 1.0;  // reports without scoring
  return m;
}

}  // namespace tagspin::track
