// Motion models for the moving-reader tracker.
//
// Two hypotheses cover handhelds, forklifts and robots between fixes:
//  * constant velocity (CV) -- state [x, y, vx, vy], white-acceleration
//    process noise (discrete Wiener-acceleration Q);
//  * coordinated turn (CT) -- state [x, y, vx, vy, omega], the standard
//    constant-speed turn propagation with a random-walk turn rate.  As
//    omega -> 0 the CT propagation reduces exactly to CV, so the model is
//    safe to run on straight legs too; what distinguishes the models in
//    practice is the extra turn-rate degree of freedom and its noise.
//
// Both models share the position-only linear measurement z = H x with
// H = [I2 | 0]; the tracker selects between them per track via windowed
// normalized innovation squared (see tracker.hpp).
#pragma once

#include <cstddef>
#include <vector>

#include "dsp/linalg.hpp"

namespace tagspin::track {

enum class MotionModelId {
  kConstantVelocity = 0,
  kCoordinatedTurn,
};
const char* motionModelName(MotionModelId id);

struct MotionNoise {
  /// White-acceleration spectral density, (m/s^2)^2 per Hz equivalent --
  /// drives position/velocity process noise in both models.
  double accelStd = 0.35;
  /// Turn-rate random-walk std, rad/s per sqrt(s) (CT only).
  double turnRateStd = 0.15;
};

/// State dimension of a model (CV 4, CT 5).
size_t stateDim(MotionModelId id);

/// Propagate a state vector by dt (in place semantics via return).  The
/// input must have stateDim(id) entries.
std::vector<double> propagateState(MotionModelId id,
                                   const std::vector<double>& x, double dt);

/// Jacobian of propagateState at x (the EKF transition matrix; exact for
/// CV, analytic for CT).
dsp::Matrix propagateJacobian(MotionModelId id, const std::vector<double>& x,
                              double dt);

/// Discrete process-noise covariance Q(dt) for the model.
dsp::Matrix processNoise(MotionModelId id, const MotionNoise& noise,
                         double dt);

/// Lower-triangular Cholesky factor of processNoise (regularized so it is
/// always positive definite, even at dt = 0).
dsp::Matrix processNoiseSqrt(MotionModelId id, const MotionNoise& noise,
                             double dt);

}  // namespace tagspin::track
