#include "track/tracker.hpp"

#include <algorithm>
#include <cmath>

#include "track/kalman.hpp"

namespace tagspin::track {

namespace {

// Nominal turn-rate seed for the CT bank at initialization: small but
// nonzero so the omega column of the covariance is observable.
constexpr double kInitTurnRate = 0.0;

Cov2 scaled(const Cov2& r, double s) {
  Cov2 out = r;
  out.xx *= s;
  out.xy *= s;
  out.yy *= s;
  return out;
}

}  // namespace

const char* trackStateName(TrackState state) {
  switch (state) {
    case TrackState::kDropped:
      return "dropped";
    case TrackState::kTentative:
      return "tentative";
    case TrackState::kConfirmed:
      return "confirmed";
    case TrackState::kCoasting:
      return "coasting";
  }
  return "unknown";
}

double Tracker::Bank::windowedNis() const {
  if (nisWindow.empty()) return 0.0;
  double sum = 0.0;
  for (double v : nisWindow) sum += v;
  return sum / static_cast<double>(nisWindow.size());
}

Tracker::Tracker(TrackerConfig config) : config_(std::move(config)) {
  const double p = std::clamp(config_.gateProbability, 0.5, 1.0 - 1e-12);
  gateThreshold_ = chiSquareInv2(p);
  banks_.push_back({MotionModelId::kConstantVelocity,
                    std::make_unique<SquareRootUkf>(
                        MotionModelId::kConstantVelocity, config_.noise),
                    {}});
  if (config_.enableCoordinatedTurn) {
    banks_.push_back({MotionModelId::kCoordinatedTurn,
                      std::make_unique<SquareRootUkf>(
                          MotionModelId::kCoordinatedTurn, config_.noise),
                      {}});
  }
  activeIdx_ = 0;
  activeModel_ = banks_[0].model;
}

Tracker::~Tracker() { releaseHistory(); }

void Tracker::setMetrics(obs::MetricsRegistry* registry) {
  if (!registry) {
    obs_ = {};
    return;
  }
  obs_.accepted = registry->counter("track.fixes_accepted");
  obs_.gateRejects = registry->counter("track.gate_rejects");
  obs_.verdictRejects = registry->counter("track.verdict_rejects");
  obs_.coasts = registry->counter("track.coasts");
  obs_.modelSwitches = registry->counter("track.model_switches");
  obs_.reinits = registry->counter("track.reinits");
  obs_.drops = registry->counter("track.drops");
  obs_.nis = registry->histogram("track.nis");
  obs_.coastFraction = registry->gauge("track.coast_fraction");
  obs_.state = registry->gauge("track.state");
  obs_.model = registry->gauge("track.model");
}

Tracker::Bank& Tracker::active() { return banks_[activeIdx_]; }
const Tracker::Bank& Tracker::active() const { return banks_[activeIdx_]; }

void Tracker::reset() {
  state_ = TrackState::kDropped;
  hits_ = 0;
  everInitialized_ = false;
  filterTimeS_ = 0.0;
  lastAcceptS_ = 0.0;
  last_ = {};
  releaseHistory();
  hasAnchor_ = false;
  anchor_ = {};
  for (auto& b : banks_) b.nisWindow.clear();
  rScale_ = 1.0;
  ewmaNis_ = 2.0;
  activeIdx_ = 0;
  activeModel_ = banks_[0].model;
  publishGauges();
}

void Tracker::initializeAt(const TrackMeasurement& m, bool isReinit) {
  for (auto& b : banks_) {
    const size_t n = stateDim(b.model);
    std::vector<double> x0(n, 0.0);
    std::vector<double> sd(n, 0.0);
    x0[0] = m.position.x;
    x0[1] = m.position.y;
    sd[0] = sd[1] = config_.initPosStdM;
    sd[2] = sd[3] = config_.initVelStdMps;
    if (n > 4) {
      x0[4] = kInitTurnRate;
      sd[4] = config_.initTurnRateStd;
    }
    b.filter->reset(x0, sd);
    b.filter->setProcessNoiseScale(1.0);
    b.nisWindow.clear();
  }
  rScale_ = 1.0;
  ewmaNis_ = 2.0;
  activeIdx_ = 0;
  activeModel_ = banks_[0].model;
  state_ = TrackState::kTentative;
  hits_ = 1;
  filterTimeS_ = m.timeS;
  lastAcceptS_ = m.timeS;
  if (isReinit) {
    ++stats_.reinits;
    obs::add(obs_.reinits);
  }
  everInitialized_ = true;
  last_ = makeEstimate(m.timeS, 0.0, true);
  publishGauges();
}

void Tracker::seedFrom(double timeS, geom::Vec2 position,
                       geom::Vec2 velocity) {
  for (auto& b : banks_) {
    const size_t n = stateDim(b.model);
    std::vector<double> x0(n, 0.0);
    std::vector<double> sd(n, 0.0);
    x0[0] = position.x;
    x0[1] = position.y;
    x0[2] = velocity.x;
    x0[3] = velocity.y;
    sd[0] = sd[1] = config_.initPosStdM;
    sd[2] = sd[3] = config_.initVelStdMps;
    if (n > 4) sd[4] = config_.initTurnRateStd;
    b.filter->reset(x0, sd);
    b.filter->setProcessNoiseScale(1.0);
    b.nisWindow.clear();
  }
  rScale_ = 1.0;
  ewmaNis_ = 2.0;
  activeIdx_ = 0;
  activeModel_ = banks_[0].model;
  state_ = TrackState::kConfirmed;
  hits_ = config_.confirmHits;
  everInitialized_ = true;
  filterTimeS_ = timeS;
  lastAcceptS_ = timeS;
  last_ = makeEstimate(timeS, 0.0, false);
  publishGauges();
}

void Tracker::dropTrack() {
  if (state_ != TrackState::kDropped) {
    ++stats_.drops;
    obs::add(obs_.drops);
  }
  state_ = TrackState::kDropped;
  hits_ = 0;
  publishGauges();
}

void Tracker::coastTo(double timeS) {
  const double dt = timeS - filterTimeS_;
  if (dt > 0.0) {
    for (auto& b : banks_) b.filter->predict(dt);
    filterTimeS_ = timeS;
  }
  const double sinceAccept = timeS - lastAcceptS_;
  const double budget = state_ == TrackState::kTentative
                            ? config_.tentativeMaxCoastS
                            : config_.maxCoastS;
  if (sinceAccept > budget) {
    dropTrack();
    return;
  }
  if (state_ == TrackState::kConfirmed) state_ = TrackState::kCoasting;
}

TrackEstimate Tracker::makeEstimate(double timeS, double nis, bool used) {
  TrackEstimate e;
  e.timeS = timeS;
  if (state_ != TrackState::kDropped) {
    const auto& f = *active().filter;
    e.position = f.position();
    e.velocity = f.velocity();
    e.covariance = f.positionCovariance();
  }
  e.state = state_;
  e.model = activeModel_;
  e.nis = nis;
  e.usedMeasurement = used;
  recordHistory(e);
  return e;
}

void Tracker::evictHistoryFront() {
  history_.pop_front();
  ++stats_.historyEvicted;
  if (config_.historyArena) config_.historyArena->release(sizeof(TrackEstimate));
}

void Tracker::recordHistory(const TrackEstimate& estimate) {
  // The anchor is pinned outside the deque, so eviction can shed every
  // fix-backed entry and a coasting track still knows where its last
  // measurement put it.
  if (estimate.usedMeasurement) {
    anchor_ = estimate;
    hasAnchor_ = true;
  }
  if (config_.historyLimit == 0) return;
  while (history_.size() >= config_.historyLimit) evictHistoryFront();
  if (config_.historyArena) {
    // Under arena pressure shed oldest-first before refusing: the history
    // is diagnostics, and the freshest samples are the valuable ones.
    bool granted = config_.historyArena->tryReserve(sizeof(TrackEstimate));
    while (!granted && !history_.empty()) {
      evictHistoryFront();
      granted = config_.historyArena->tryReserve(sizeof(TrackEstimate));
    }
    if (!granted) {
      ++stats_.historyRefused;
      return;
    }
  }
  history_.push_back(estimate);
}

void Tracker::releaseHistory() {
  if (config_.historyArena && !history_.empty()) {
    config_.historyArena->release(uint64_t(history_.size()) *
                                  sizeof(TrackEstimate));
  }
  history_.clear();
}

void Tracker::maybeSwitchModel() {
  if (banks_.size() < 2) return;
  const size_t window = static_cast<size_t>(std::max(config_.nisWindow, 1));
  const Bank& cur = active();
  if (cur.nisWindow.size() < window) return;
  size_t best = activeIdx_;
  double bestNis = cur.windowedNis();
  for (size_t i = 0; i < banks_.size(); ++i) {
    if (i == activeIdx_) continue;
    if (banks_[i].nisWindow.size() < window) continue;
    const double nis = banks_[i].windowedNis();
    if (nis * config_.modelSwitchMargin < bestNis) {
      best = i;
      bestNis = nis;
    }
  }
  if (best != activeIdx_) {
    activeIdx_ = best;
    activeModel_ = banks_[best].model;
    ++stats_.modelSwitches;
    obs::add(obs_.modelSwitches);
  }
}

void Tracker::publishGauges() {
  obs::set(obs_.coastFraction, stats_.coastFraction());
  obs::set(obs_.state, static_cast<double>(static_cast<int>(state_)));
  obs::set(obs_.model, static_cast<double>(static_cast<int>(activeModel_)));
}

TrackEstimate Tracker::onGap(double timeS) {
  if (state_ == TrackState::kDropped || timeS < filterTimeS_) {
    last_.timeS = timeS;
    last_.usedMeasurement = false;
    return last_;
  }
  coastTo(timeS);
  ++stats_.coasts;
  obs::add(obs_.coasts);
  publishGauges();
  last_ = makeEstimate(timeS, 0.0, false);
  return last_;
}

TrackEstimate Tracker::onMeasurement(const TrackMeasurement& m) {
  // Out-of-order fixes (time running backwards) are ignored outright --
  // the filters cannot predict backwards.
  if (state_ != TrackState::kDropped && m.timeS < filterTimeS_) {
    return last_;
  }

  // Quarantined fixes never touch the track; the window still has to be
  // accounted for, so the track coasts across it.
  if (m.verdict == MeasurementVerdict::kQuarantine) {
    ++stats_.verdictRejects;
    obs::add(obs_.verdictRejects);
    if (state_ == TrackState::kDropped) {
      last_.timeS = m.timeS;
      last_.usedMeasurement = false;
      return last_;
    }
    return onGap(m.timeS);
  }

  if (state_ == TrackState::kDropped) {
    initializeAt(m, /*isReinit=*/everInitialized_);
    ++stats_.accepted;
    obs::add(obs_.accepted);
    publishGauges();
    return last_;
  }

  // Time update to the fix instant.
  const double dt = m.timeS - filterTimeS_;
  if (dt > 0.0) {
    for (auto& b : banks_) b.filter->predict(dt);
    filterTimeS_ = m.timeS;
  }

  // Suspect fixes are usable but less trustworthy: widen R instead of
  // discarding the information.  The locator confidence is a relative
  // quality score, not a calibrated probability -- the ellipse already
  // carries the calibrated uncertainty -- so only scores below the
  // lowConfidence floor widen R further.
  Cov2 r = m.covariance;
  double scale = 1.0;
  if (m.verdict == MeasurementVerdict::kSuspect) {
    scale *= std::max(config_.suspectInflation, 1.0);
  }
  if (m.confidence > 0.0 && m.confidence < config_.lowConfidence) {
    scale *= config_.lowConfidence / std::max(m.confidence, 0.01);
  }
  r.xx *= scale;
  r.xy *= scale;
  r.yy *= scale;

  // Mahalanobis gate on the active bank's predicted state, against the
  // UNcalibrated covariance: the gate is an outlier test, and testing
  // with the wide as-reported R keeps a tight innovation calibration from
  // ever rejecting honest fixes (a rejected fix cannot re-widen the
  // calibration, so gating on the calibrated R can spiral).
  const double gateNis = active().filter->gateNis(
      m.position, rScale_ < 1.0 ? r : scaled(r, rScale_));
  if (!(gateNis <= gateThreshold_)) {
    ++stats_.gateRejects;
    obs::add(obs_.gateRejects);
    // The rejected window behaves like a gap: coast, maybe drop.
    const double sinceAccept = m.timeS - lastAcceptS_;
    const double budget = state_ == TrackState::kTentative
                              ? config_.tentativeMaxCoastS
                              : config_.maxCoastS;
    if (sinceAccept > budget) {
      dropTrack();
      last_ = makeEstimate(m.timeS, 0.0, false);
      return last_;
    }
    if (state_ == TrackState::kConfirmed) state_ = TrackState::kCoasting;
    ++stats_.coasts;
    obs::add(obs_.coasts);
    publishGauges();
    last_ = makeEstimate(m.timeS, 0.0, false);
    return last_;
  }

  // Accepted: update every bank (with the innovation-calibrated R) so the
  // inactive model's NIS history stays comparable, then revisit the model
  // choice.
  r = scaled(r, rScale_);
  double activeNis = 0.0;
  const size_t window = static_cast<size_t>(std::max(config_.nisWindow, 1));
  for (size_t i = 0; i < banks_.size(); ++i) {
    const double nis = banks_[i].filter->update(m.position, r);
    banks_[i].nisWindow.push_back(nis);
    while (banks_[i].nisWindow.size() > window) {
      banks_[i].nisWindow.pop_front();
    }
    if (i == activeIdx_) activeNis = nis;
  }
  maybeSwitchModel();

  // Innovation-based R calibration: drive the accepted-fix NIS EWMA
  // toward its chi-square(2) expectation with a slow multiplicative
  // feedback on the R scale.  NIS below 2 means R (as scaled) is too wide
  // -> shrink; above 2 -> widen.  The per-step factor is clamped so one
  // outlier cannot yank the calibration.
  if (config_.rCalibrationRate > 0.0) {
    const double a = std::clamp(config_.rCalibrationRate, 0.0, 1.0);
    ewmaNis_ = (1.0 - a) * ewmaNis_ + a * activeNis;
    const double target = std::max(config_.rCalibrationTargetNis, 0.1);
    rScale_ *= std::clamp(std::pow(ewmaNis_ / target, a), 0.8, 1.25);
    rScale_ = std::clamp(rScale_, config_.rScaleMin, config_.rScaleMax);
  }

  // Maneuver detection: a windowed NIS above target means the motion
  // model is under-shooting the dynamics -- open up Q proportionally so
  // the next predicts track the maneuver instead of lagging it.
  if (config_.adaptiveQMax > 1.0 && config_.adaptiveQNis > 0.0) {
    const double scale = std::clamp(
        active().windowedNis() / config_.adaptiveQNis, 1.0,
        config_.adaptiveQMax);
    for (auto& b : banks_) b.filter->setProcessNoiseScale(scale);
  }

  lastAcceptS_ = m.timeS;
  ++hits_;
  ++stats_.accepted;
  obs::add(obs_.accepted);
  obs::observe(obs_.nis, activeNis);
  if (state_ == TrackState::kTentative && hits_ >= config_.confirmHits) {
    state_ = TrackState::kConfirmed;
  } else if (state_ == TrackState::kCoasting) {
    state_ = TrackState::kConfirmed;
  }
  publishGauges();
  last_ = makeEstimate(m.timeS, activeNis, true);
  return last_;
}

}  // namespace tagspin::track
