// The tracker's measurement type: one position fix with its uncertainty
// and the robust-estimation verdict that produced it.
//
// The bootstrap confidence ellipse attached to every robust fix (paper
// pipeline -> src/robust/bootstrap) is exactly the measurement covariance
// R_k a Bayes filter wants -- ellipseToCovariance does the coverage-level
// descaling (the axes are quantiles, not standard deviations) and the
// PSD regularization that degenerate near-parallel-ray ellipses need.
#pragma once

#include <optional>

#include "geom/vec.hpp"
#include "robust/bootstrap.hpp"

namespace tagspin::track {

/// Symmetric 2x2 covariance, stored explicitly so measurements stay POD.
struct Cov2 {
  double xx = 0.0;
  double xy = 0.0;
  double yy = 0.0;

  double trace() const { return xx + yy; }
  double det() const { return xx * yy - xy * xy; }
  /// Smallest eigenvalue (symmetric 2x2 closed form).
  double minEigen() const;
  /// Positive definite to within `tol` on the smaller eigenvalue.
  bool isPositiveDefinite(double tol = 0.0) const;

  static Cov2 isotropic(double stdM) {
    return {stdM * stdM, 0.0, stdM * stdM};
  }
};

/// Spin self-diagnosis verdict carried alongside the fix (mirrors
/// robust::SpinVerdict, folded over all rigs: the worst verdict wins).
enum class MeasurementVerdict {
  kAccept = 0,
  kSuspect,
  kQuarantine,
};
const char* measurementVerdictName(MeasurementVerdict verdict);

struct TrackMeasurement {
  double timeS = 0.0;
  geom::Vec2 position;
  /// Measurement covariance R_k in m^2 (from the fix's bootstrap ellipse
  /// via ellipseToCovariance, or an isotropic default when no ellipse was
  /// computed).
  Cov2 covariance = Cov2::isotropic(0.08);
  MeasurementVerdict verdict = MeasurementVerdict::kAccept;
  /// ResilienceReport::confidence of the fix (downgraded fixes widen R).
  double confidence = 1.0;
};

/// Convert a bootstrap confidence ellipse into the measurement covariance
/// R_k: descale the axes from the `confidenceLevel` coverage quantile to
/// 1-sigma (chi-square with 2 dof), rotate into world axes, and regularize
/// so the result is strictly positive definite -- degenerate and
/// near-singular ellipses (collapsed axis, NaN axes, absurd aspect ratios)
/// are floored at `floorStdM` per axis.  Never throws; a completely
/// unusable ellipse falls back to isotropic(fallbackStdM).
Cov2 ellipseToCovariance(const robust::ConfidenceEllipse& ellipse,
                         double floorStdM = 0.01,
                         double fallbackStdM = 0.08);

}  // namespace tagspin::track
