#include "robust/bootstrap.hpp"

#include <algorithm>
#include <cmath>
#include <random>

#include "geom/angles.hpp"
#include "geom/ray.hpp"

namespace tagspin::robust {
namespace {

// Replicates farther than this from the fix come from a near-singular
// resampled geometry; they carry no calibrated information and would
// otherwise dominate the covariance.
constexpr double kReplicateSanityM = 1e3;

}  // namespace

double ConfidenceEllipse::areaM2() const {
  return geom::kPi * semiMajorM * semiMinorM;
}

bool ConfidenceEllipse::contains(const geom::Vec2& p) const {
  if (semiMajorM <= 0.0 || semiMinorM <= 0.0) return false;
  const geom::Vec2 d = p - center;
  const double c = std::cos(orientationRad);
  const double s = std::sin(orientationRad);
  const double u = (c * d.x + s * d.y) / semiMajorM;
  const double v = (-s * d.x + c * d.y) / semiMinorM;
  return u * u + v * v <= 1.0;
}

std::optional<ConfidenceEllipse> bootstrapEllipse(
    std::span<const BearingSamples> rays, const geom::Vec2& fix,
    const BootstrapConfig& config) {
  const size_t n = rays.size();
  if (n < 2 || config.replicates <= 0) return std::nullopt;
  const bool anyDeviations =
      std::any_of(rays.begin(), rays.end(), [](const BearingSamples& r) {
        return !r.deviationsRad.empty();
      });
  if (!anyDeviations) return std::nullopt;

  std::mt19937_64 rng(config.seed);
  std::uniform_int_distribution<size_t> pickRay(0, n - 1);
  const bool resample = config.resampleRays && n >= 3;

  std::vector<geom::Vec2> points;
  points.reserve(static_cast<size_t>(config.replicates));
  std::vector<geom::Ray2> replicate(n);
  for (int b = 0; b < config.replicates; ++b) {
    for (size_t slot = 0; slot < n; ++slot) {
      const size_t i = resample ? pickRay(rng) : slot;
      const BearingSamples& ray = rays[i];
      double bearing = ray.bearingRad;
      if (!ray.deviationsRad.empty()) {
        std::uniform_int_distribution<size_t> pickDev(
            0, ray.deviationsRad.size() - 1);
        bearing += ray.deviationsRad[pickDev(rng)];
      }
      replicate[slot] = geom::Ray2{ray.origin, bearing};
    }
    const auto p = geom::leastSquaresIntersection(replicate);
    if (!p) continue;
    if (geom::distance(*p, fix) > kReplicateSanityM) continue;
    points.push_back(*p);
  }
  if (points.size() < static_cast<size_t>(
                          std::max(config.minValidReplicates, 2))) {
    return std::nullopt;
  }

  geom::Vec2 mean{0.0, 0.0};
  for (const auto& p : points) mean = mean + p;
  mean = mean * (1.0 / static_cast<double>(points.size()));
  double cxx = 0.0, cxy = 0.0, cyy = 0.0;
  for (const auto& p : points) {
    const geom::Vec2 d = p - mean;
    cxx += d.x * d.x;
    cxy += d.x * d.y;
    cyy += d.y * d.y;
  }
  const double denom = static_cast<double>(points.size()) - 1.0;
  cxx /= denom;
  cxy /= denom;
  cyy /= denom;

  const double tr = cxx + cyy;
  const double det = cxx * cyy - cxy * cxy;
  const double disc = std::sqrt(std::max(0.0, tr * tr - 4.0 * det));
  const double lambda1 = std::max(0.5 * (tr + disc), 1e-12);
  const double lambda2 = std::max(0.5 * (tr - disc), 1e-12);
  // Exact chi-square quantile for 2 degrees of freedom.
  const double chi2 = -2.0 * std::log(1.0 - config.confidenceLevel);

  ConfidenceEllipse ellipse;
  ellipse.center = fix;
  ellipse.semiMajorM = std::sqrt(lambda1 * chi2);
  ellipse.semiMinorM = std::sqrt(lambda2 * chi2);
  ellipse.orientationRad = 0.5 * std::atan2(2.0 * cxy, cxx - cyy);
  ellipse.confidenceLevel = config.confidenceLevel;
  return ellipse;
}

}  // namespace tagspin::robust
