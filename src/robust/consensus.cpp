#include "robust/consensus.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "geom/angles.hpp"

namespace tagspin::robust {
namespace {

geom::Ray2 candidateRay(const BearingObservation& obs, int candidate) {
  return geom::Ray2{obs.origin, obs.candidates[static_cast<size_t>(candidate)]
                                    .angleRad};
}

/// Angular misfit of `p` against a bearing ray: |angle(p - origin) -
/// bearing|, wrapped.  Behind-origin points come out near pi automatically.
double bearingResidual(const geom::Ray2& ray, const geom::Vec2& p) {
  const geom::Vec2 v = p - ray.origin;
  if (v.norm2() < 1e-18) return geom::kPi;
  return std::abs(geom::wrapToPi(v.angle() - ray.angle));
}

double lossWeight(double residual, const ConsensusConfig& config) {
  const double r = std::abs(residual);
  // Trimmed: a ray the vote rejected exerts no pull at all.  Huber alone is
  // not enough here -- its influence never redescends (w*r -> delta), and a
  // near-parallel rig bundle is so soft along-range that a far outlier's
  // constant delta-pull can drag the IRLS solution metres away from the
  // consensus point it started from.
  if (r >= config.inlierThresholdRad) return 0.0;
  if (config.loss == ConsensusConfig::Loss::kHuber) {
    return r <= config.huberDeltaRad ? 1.0 : config.huberDeltaRad / r;
  }
  if (r >= config.tukeyCRad) return 0.0;
  const double u = r / config.tukeyCRad;
  const double v = 1.0 - u * u;
  return v * v;
}

struct Hypothesis {
  size_t obsA, obsB;
  int candA, candB;
  double power;  // candidate value product, for the deterministic ordering
};

/// For each observation, the candidate whose bearing best explains `p`.
/// Returns (candidate index, angular residual in radians).
std::pair<int, double> closestCandidate(const BearingObservation& obs,
                                        const geom::Vec2& p) {
  int best = -1;
  double bestDist = std::numeric_limits<double>::infinity();
  for (size_t c = 0; c < obs.candidates.size(); ++c) {
    const geom::Ray2 ray = candidateRay(obs, static_cast<int>(c));
    const double dist = bearingResidual(ray, p);
    if (dist < bestDist) {
      bestDist = dist;
      best = static_cast<int>(c);
    }
  }
  return {best, bestDist};
}

struct Score {
  size_t inliers = 0;
  double distanceSum = 0.0;  // angular misfit, capped per-ray, lower wins
  double power = 0.0;        // chosen candidate values, higher is better
  bool betterThan(const Score& other) const {
    if (inliers != other.inliers) return inliers > other.inliers;
    if (distanceSum != other.distanceSum)
      return distanceSum < other.distanceSum;
    return power > other.power;
  }
};

Score scoreHypothesis(std::span<const BearingObservation> observations,
                      const geom::Vec2& p, const ConsensusConfig& config) {
  Score s;
  for (const auto& obs : observations) {
    const auto [cand, dist] = closestCandidate(obs, p);
    if (cand < 0) continue;
    if (dist < config.inlierThresholdRad) ++s.inliers;
    s.distanceSum += std::min(dist, config.inlierThresholdRad);
    s.power += obs.candidates[static_cast<size_t>(cand)].value;
  }
  return s;
}

/// Local optimization of a pair hypothesis: least squares over the
/// hypothesis's inlier set (each rig's closest candidate).  A raw two-ray
/// intersection of a near-parallel bundle is ill-conditioned *along* the
/// rays -- bearing noise slides it metres down-range while it stays within
/// the perpendicular inlier threshold of most rays, so inlier counting
/// alone cannot rank such hypotheses.  Pooling the inliers restores the
/// well-conditioned estimate the vote actually implies.
std::optional<geom::Vec2> refineOnInliers(
    std::span<const BearingObservation> observations, const geom::Vec2& p,
    const ConsensusConfig& config) {
  std::vector<geom::Ray2> rays;
  std::vector<double> weights;
  rays.reserve(observations.size());
  weights.reserve(observations.size());
  for (const auto& obs : observations) {
    const auto [cand, dist] = closestCandidate(obs, p);
    if (cand < 0) continue;
    rays.push_back(candidateRay(obs, cand));
    weights.push_back(dist < config.inlierThresholdRad ? 1.0 : 0.0);
  }
  const auto solved = geom::leastSquaresIntersectionDetailed(rays, weights);
  if (!solved) return std::nullopt;
  return solved->point;
}

}  // namespace

std::optional<ConsensusFix> consensusIntersection(
    std::span<const BearingObservation> observations,
    const ConsensusConfig& config) {
  const size_t n = observations.size();
  if (n < 2) return std::nullopt;
  for (const auto& obs : observations) {
    if (obs.candidates.empty()) return std::nullopt;
  }

  // Enumerate cross-observation candidate pairs, strongest first.
  std::vector<Hypothesis> hypotheses;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      for (size_t a = 0; a < observations[i].candidates.size(); ++a) {
        for (size_t b = 0; b < observations[j].candidates.size(); ++b) {
          hypotheses.push_back({i, j, static_cast<int>(a),
                                static_cast<int>(b),
                                observations[i].candidates[a].value *
                                    observations[j].candidates[b].value});
        }
      }
    }
  }
  std::stable_sort(hypotheses.begin(), hypotheses.end(),
                   [](const Hypothesis& x, const Hypothesis& y) {
                     return x.power > y.power;
                   });
  if (hypotheses.size() > config.maxHypotheses) {
    hypotheses.resize(config.maxHypotheses);
  }

  bool haveBest = false;
  geom::Vec2 bestPoint;
  Score bestScore;
  for (const auto& h : hypotheses) {
    const auto hit = geom::intersectRays(candidateRay(observations[h.obsA],
                                                      h.candA),
                                         candidateRay(observations[h.obsB],
                                                      h.candB));
    if (!hit) continue;
    geom::Vec2 p = hit->point;
    Score s = scoreHypothesis(observations, p, config);
    if (s.inliers < 2) continue;
    // Locally optimize (up to 3 rounds: the refined point can recruit new
    // inliers, which changes the pooled solution), keeping the better of
    // raw and refined.
    for (int round = 0; round < 3; ++round) {
      const auto refined = refineOnInliers(observations, p, config);
      if (!refined) break;
      const Score sr = scoreHypothesis(observations, *refined, config);
      if (sr.inliers < 2 || !sr.betterThan(s)) break;
      s = sr;
      p = *refined;
    }
    if (!haveBest || s.betterThan(bestScore)) {
      haveBest = true;
      bestScore = s;
      bestPoint = p;
    }
  }
  if (!haveBest) return std::nullopt;

  // IRLS refinement: re-choose each rig's candidate against the current
  // point, solve the weighted least squares, repeat to convergence.
  geom::Vec2 point = bestPoint;
  std::vector<geom::Ray2> rays(n);
  std::vector<int> chosen(n, -1);
  std::vector<double> weights(n, 0.0);
  for (int iter = 0; iter < config.irlsIterations; ++iter) {
    for (size_t i = 0; i < n; ++i) {
      const auto [cand, dist] = closestCandidate(observations[i], point);
      chosen[i] = cand;
      rays[i] = candidateRay(observations[i], cand);
      weights[i] = lossWeight(dist, config);
    }
    const auto solved = geom::leastSquaresIntersectionDetailed(
        rays, weights);
    if (!solved) break;  // weights collapsed or bundle went parallel
    const double moved = geom::distance(point, solved->point);
    point = solved->point;
    if (moved < config.convergenceM) break;
  }

  ConsensusFix fix;
  fix.position = point;
  fix.chosen.resize(n);
  fix.weights.resize(n);
  fix.rayT.resize(n);
  fix.inlier.resize(n);
  double weightedSq = 0.0, weightSum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const auto [cand, dist] = closestCandidate(observations[i], point);
    fix.chosen[i] = cand;
    const geom::Ray2 ray = candidateRay(observations[i], cand);
    fix.weights[i] = lossWeight(dist, config);
    fix.rayT[i] = ray.project(point);
    fix.inlier[i] = dist < config.inlierThresholdRad;
    if (fix.inlier[i]) {
      if (fix.rayT[i] < 0.0) ++fix.behindOrigin;
      const double perp = ray.signedDistance(point);  // residualM is metric
      weightedSq += fix.weights[i] * perp * perp;
      weightSum += fix.weights[i];
    }
  }
  fix.inlierFraction =
      static_cast<double>(std::count(fix.inlier.begin(), fix.inlier.end(),
                                     true)) /
      static_cast<double>(n);
  if (fix.inlierFraction < 2.0 / static_cast<double>(n)) return std::nullopt;
  fix.residualM = weightSum > 0.0 ? std::sqrt(weightedSq / weightSum) : 0.0;
  return fix;
}

}  // namespace tagspin::robust
