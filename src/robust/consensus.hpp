// Consensus ray intersection: RANSAC-style hypothesis voting over bearing
// candidates, then IRLS refinement with a robust loss.
//
// The unweighted least-squares intersection (geom::leastSquaresIntersection)
// treats every ray as equally credible, so one multipath-captured spectrum
// peak drags the fix arbitrarily far.  Here each rig contributes *all* of
// its plausible spectrum peaks (robust/spectrum_diag.hpp candidates), and
// geometry decides:
//
//  1. Hypotheses: every cross-rig pair of candidates defines an exact
//     two-ray intersection.  Enumeration is deterministic (value-ordered,
//     capped) rather than randomized -- the hypothesis space is small
//     enough to cover, which keeps runs reproducible under a fixed seed.
//  2. Voting: each rig votes with its best-fitting candidate; a vote is an
//     inlier when the hypothesis point sits within `inlierThresholdRad` of
//     that candidate's bearing as seen from the rig.  Residuals are
//     *angular*, not metric: bearing noise produces angle errors, so a
//     perpendicular-metres threshold is simultaneously too strict at long
//     range and too lax close to the rig line -- close-in ghost points
//     collect spurious metric inliers from a near-parallel bundle.  The
//     hypothesis with the most inliers wins (ties broken by total angular
//     misfit, then candidate power), after a local least-squares
//     re-optimization over its inlier set.
//  3. Refinement: iteratively reweighted least squares from the winning
//     point, re-choosing each rig's candidate every iteration and
//     down-weighting angular residuals with a trimmed Huber or Tukey loss.
//
// With clean spectra every rig has a single candidate, all residuals sit
// far inside the loss's linear region, every weight is 1, and the result
// coincides with the unweighted least-squares fix -- no robustness tax.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "geom/ray.hpp"
#include "robust/spectrum_diag.hpp"

namespace tagspin::robust {

/// One rig's contribution: where its disk center is and every direction
/// its spectrum could not rule out (main peak first, value-descending).
struct BearingObservation {
  geom::Vec2 origin;
  std::vector<BearingCandidate> candidates;
};

struct ConsensusConfig {
  /// Angular residual (radians between a candidate bearing and the
  /// direction from its rig to the point) below which a ray supports a
  /// hypothesis.  ~3.4 degrees: several sigma of a healthy spectrum peak,
  /// far under the tens of degrees a ghost lobe is off by.
  double inlierThresholdRad = 0.06;
  /// Robust loss for the IRLS refinement.
  enum class Loss { kHuber, kTukey };
  Loss loss = Loss::kHuber;
  /// Huber transition point / Tukey cutoff, radians of angular residual.
  /// Clean simulated bearings sit at a fraction of a degree, so ~1 degree
  /// of slack keeps honest rays in the quadratic (weight-1) region.
  double huberDeltaRad = 0.02;
  double tukeyCRad = 0.10;
  int irlsIterations = 12;
  /// Stop refining when the fix moves less than this between iterations.
  double convergenceM = 1e-7;
  /// Cap on evaluated pair hypotheses (value-ordered, so the cap sheds the
  /// least powerful candidate pairs first).
  size_t maxHypotheses = 128;
};

struct ConsensusFix {
  geom::Vec2 position;
  /// Chosen candidate index per observation (-1: none usable).
  std::vector<int> chosen;
  /// Final IRLS weight per observation (0 for trimmed outliers).
  std::vector<double> weights;
  /// Ray parameter of the fix along each observation's chosen ray;
  /// negative means the fix is behind that rig (see
  /// geom::MultiRayIntersection).
  std::vector<double> rayT;
  std::vector<bool> inlier;
  double inlierFraction = 0.0;
  size_t behindOrigin = 0;
  /// Weighted RMS perpendicular distance over inlier rays, metres.
  double residualM = 0.0;
};

/// Consensus fix over >= 2 observations, each with >= 1 candidate.  Empty
/// when no pair of candidate rays intersects (mutually parallel bundle) or
/// fewer than two observations end up supporting any hypothesis.
std::optional<ConsensusFix> consensusIntersection(
    std::span<const BearingObservation> observations,
    const ConsensusConfig& config = {});

}  // namespace tagspin::robust
