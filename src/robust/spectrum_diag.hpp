// Spin self-diagnosis: is a single rig's angle spectrum trustworthy?
//
// A spinning tag captured by a strong reflector (paper section IV's
// multipath regime) produces a spectrum whose tallest lobe points at the
// *reflection*, not the reader.  Averaging such a spin into a fix drags the
// antenna estimate arbitrarily far with no warning.  This module inspects a
// sampled azimuth spectrum and renders a typed verdict:
//
//   kAccept     -- sharp, unimodal, well-supported peak; use as-is.
//   kSuspect    -- usable but degraded (wide lobe, strong sidelobe, or a
//                  meaningful ghost score); contribute, at reduced trust.
//   kQuarantine -- the peak is ambiguous or ghost-dominated; the spin must
//                  not pick its own direction.  Downstream either drops it
//                  or feeds *all* candidate peaks to the consensus
//                  intersection (robust/consensus.hpp) and lets geometry
//                  decide.
//
// The diagnostics are computed from dense spectrum samples alone plus one
// scalar the caller supplies: the ghost score, derived from the enhanced
// profile's likelihood weights (core::PowerProfile::weightStats) -- a peak
// supported by only a small coherent subset of snapshots is a classic
// multipath ghost.  Keeping the profile type out of this header lets the
// robust library sit below core in the dependency order.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace tagspin::robust {

enum class SpinVerdict {
  kAccept = 0,
  kSuspect,
  kQuarantine,
};
const char* spinVerdictName(SpinVerdict verdict);

/// One plausible direction hypothesis extracted from the spectrum.
struct BearingCandidate {
  double angleRad = 0.0;  // [0, 2*pi)
  double value = 0.0;     // spectrum value at the (refined) peak
};

struct SpinDiagnostics {
  double peakValue = 0.0;
  /// Main peak / strongest sidelobe (any other local maximum).  Large is
  /// good; infinity when the spectrum has a single local maximum.
  double peakToSidelobeRatio = 0.0;
  /// Local maxima (excluding the main peak) taller than
  /// `ambiguityRatio * peakValue` -- each is a direction the spin cannot
  /// rule out on its own.
  int ambiguousPeakCount = 0;
  /// Half-power width of the main lobe, degrees.
  double lobeWidthDeg = 360.0;
  /// [0, 1]; 1 - effective-support fraction of the enhanced profile's
  /// likelihood weights at the main peak.  0 when every snapshot backs the
  /// peak, ~0.5 when only half do (the ghost signature).  Callers without
  /// weight information pass 0.
  double ghostScore = 0.0;
  SpinVerdict verdict = SpinVerdict::kAccept;
  /// Main peak first, then ambiguous secondaries, value-descending.
  std::vector<BearingCandidate> candidates;
};

struct SpinDiagnosticsConfig {
  /// Secondary peaks above this fraction of the main peak count as
  /// ambiguous and are emitted as candidates.
  double ambiguityRatio = 0.70;
  /// Verdict ladder: suspect when the peak-to-sidelobe ratio drops below
  /// `suspectSidelobeRatio`, quarantine below `quarantineSidelobeRatio`
  /// (a sidelobe within ~10% of the main peak is indistinguishable from
  /// the true direction).
  double suspectSidelobeRatio = 1.45;
  double quarantineSidelobeRatio = 1.12;
  /// Lobe-width gates, degrees (a clean enhanced profile is a few degrees
  /// wide; tens of degrees means the aperture collapsed).
  double suspectLobeWidthDeg = 60.0;
  double quarantineLobeWidthDeg = 150.0;
  /// Ghost-score gates (see SpinDiagnostics::ghostScore).
  double suspectGhostScore = 0.35;
  double quarantineGhostScore = 0.60;
  size_t maxCandidates = 4;
  /// Minimum angular separation between reported candidates, in samples
  /// of the analysed grid (mirrors core::assessSpectrum's peak spacing).
  size_t minPeakSeparationDivisor = 36;
};

/// Diagnose one azimuth spectrum sampled densely on [0, 2*pi) (samples[i]
/// at angle 2*pi*i/n, circular).  `ghostScore` comes from the profile's
/// likelihood weights; pass 0 when unavailable.  Fewer than 8 samples
/// yield a quarantine verdict (no meaningful peak structure).
SpinDiagnostics diagnoseSpectrum(std::span<const double> samples,
                                 double ghostScore,
                                 const SpinDiagnosticsConfig& config = {});

}  // namespace tagspin::robust
