#include "robust/spectrum_diag.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "dsp/peaks.hpp"
#include "geom/angles.hpp"

namespace tagspin::robust {
namespace {

double indexToAngle(double index, size_t n) {
  return geom::wrapTwoPi(index * geom::kTwoPi / static_cast<double>(n));
}

}  // namespace

const char* spinVerdictName(SpinVerdict verdict) {
  switch (verdict) {
    case SpinVerdict::kAccept:
      return "accept";
    case SpinVerdict::kSuspect:
      return "suspect";
    case SpinVerdict::kQuarantine:
      return "quarantine";
  }
  return "unknown";
}

SpinDiagnostics diagnoseSpectrum(std::span<const double> samples,
                                 double ghostScore,
                                 const SpinDiagnosticsConfig& config) {
  SpinDiagnostics diag;
  diag.ghostScore = std::clamp(ghostScore, 0.0, 1.0);
  if (samples.size() < 8) {
    diag.verdict = SpinVerdict::kQuarantine;
    return diag;
  }

  const size_t minSep =
      std::max<size_t>(1, samples.size() / config.minPeakSeparationDivisor);
  const auto peaks = dsp::findPeaks(samples, /*circular=*/true, minSep,
                                    std::max<size_t>(config.maxCandidates, 8));
  if (peaks.empty()) {
    // Flat (or monotone) spectrum: no direction information at all.
    diag.verdict = SpinVerdict::kQuarantine;
    return diag;
  }

  const auto& main = peaks.front();
  diag.peakValue = main.value;
  diag.lobeWidthDeg = geom::radToDeg(
      dsp::halfPowerWidth(samples, main.index, /*circular=*/true) *
      geom::kTwoPi / static_cast<double>(samples.size()));
  diag.candidates.push_back({indexToAngle(main.refined, samples.size()),
                             main.value});

  diag.peakToSidelobeRatio = std::numeric_limits<double>::infinity();
  if (peaks.size() > 1 && peaks[1].value > 0.0) {
    diag.peakToSidelobeRatio = main.value / peaks[1].value;
  }
  for (size_t i = 1; i < peaks.size(); ++i) {
    if (peaks[i].value < config.ambiguityRatio * main.value) break;
    ++diag.ambiguousPeakCount;
    if (diag.candidates.size() < config.maxCandidates) {
      diag.candidates.push_back(
          {indexToAngle(peaks[i].refined, samples.size()), peaks[i].value});
    }
  }

  const bool quarantine =
      diag.peakToSidelobeRatio < config.quarantineSidelobeRatio ||
      diag.lobeWidthDeg >= config.quarantineLobeWidthDeg ||
      diag.ghostScore >= config.quarantineGhostScore;
  const bool suspect =
      diag.peakToSidelobeRatio < config.suspectSidelobeRatio ||
      diag.lobeWidthDeg >= config.suspectLobeWidthDeg ||
      diag.ghostScore >= config.suspectGhostScore ||
      diag.ambiguousPeakCount > 0;
  diag.verdict = quarantine ? SpinVerdict::kQuarantine
               : suspect    ? SpinVerdict::kSuspect
                            : SpinVerdict::kAccept;
  return diag;
}

}  // namespace tagspin::robust
