// Bootstrap confidence regions for ray-intersection fixes.
//
// A point estimate without an uncertainty statement is half an answer: the
// ROADMAP's production north-star needs every fix to say how wrong it
// might be.  The locator resamples each rig's snapshots into subsample
// bearing estimates; the *deviations* of those half-sample bearings around
// the full-sample bearing are (by the half-sampling identity: with
// theta_full ~= (theta_half + theta_other_half)/2, the deviation
// theta_half - theta_full = (theta_half - theta_other_half)/2 has variance
// ~= Var[theta_full]) an empirical draw from the full-sample estimator's
// own error distribution -- no rescaling needed.  Each bootstrap replicate
// perturbs every ray's bearing by a resampled deviation (and, with >= 3
// rays, resamples the ray set itself), re-intersects, and the cloud of
// replicate fixes yields a Gaussian-approximated confidence ellipse.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "geom/vec.hpp"

namespace tagspin::robust {

struct ConfidenceEllipse {
  geom::Vec2 center;
  double semiMajorM = 0.0;
  double semiMinorM = 0.0;
  /// Orientation of the major axis, radians from +x.
  double orientationRad = 0.0;
  /// Coverage target the axes were scaled for (e.g. 0.90).
  double confidenceLevel = 0.0;

  double areaM2() const;
  bool contains(const geom::Vec2& p) const;
};

/// One ray's bootstrap inputs: origin, full-sample bearing, and the
/// deviations (radians, wrapped) of its subsample bearing re-estimates
/// from that full-sample bearing.
struct BearingSamples {
  geom::Vec2 origin;
  double bearingRad = 0.0;
  std::vector<double> deviationsRad;
};

struct BootstrapConfig {
  int replicates = 160;
  double confidenceLevel = 0.90;
  uint64_t seed = 0xB0075;
  /// Give up (return empty) when fewer replicates than this produced a
  /// non-degenerate intersection.
  int minValidReplicates = 24;
  /// Also resample the ray set with replacement (pairs bootstrap over
  /// rays).  Off by default: with a handful of rays most replicates draw
  /// the same rig twice, and two same-origin rays with different bearing
  /// deviations intersect at the rig itself -- the replicate cloud gets
  /// anchored to the rig line and the covariance grows well beyond the
  /// bearing-noise level the deviations are calibrated for.  That
  /// conservatism is exactly what the locator's field path wants (each
  /// rig's multipath bias is invisible to half-sample deviations, so the
  /// calibrated region under-covers in real scenes -- see
  /// RobustEstimationConfig::pairsBootstrap); leave it off when the
  /// deviations genuinely capture the whole error, as in calibration
  /// studies.
  bool resampleRays = false;
};

/// Confidence ellipse centred on `fix` from bootstrap re-intersections.
/// Empty when fewer than 2 rays, no ray has deviation samples, or too few
/// replicates converge.
std::optional<ConfidenceEllipse> bootstrapEllipse(
    std::span<const BearingSamples> rays, const geom::Vec2& fix,
    const BootstrapConfig& config = {});

}  // namespace tagspin::robust
