// Deterministic digests for the replay-parity gates.
//
// "Replaying the same capture twice yields the same result" is asserted as
// byte equality on an FNV-1a-64 digest of the fix: every double is folded
// by its raw bit pattern, so two digests match iff the fixes are
// bit-identical -- no epsilon, no rounding story.  A stream digest covers
// the decoded reports the same way (capture round-trip and replay-feed
// equality checks).
#pragma once

#include <cstdint>
#include <string>

#include "core/locator.hpp"
#include "rfid/report.hpp"

namespace tagspin::capture {

/// FNV-1a 64-bit accumulator; fold raw bytes, integers, or double bit
/// patterns.  Exposed so harnesses can digest their own structures.
class Fnv1a {
 public:
  void bytes(const void* data, size_t size);
  void u64(uint64_t v);
  void f64(double v);  // folds the IEEE-754 bit pattern
  uint64_t value() const { return hash_; }

 private:
  uint64_t hash_ = 1469598103934665603ULL;
};

/// Digest of a resilient 2D fix: position, residual, grade, confidence,
/// and every rig direction (azimuth + peak).  Diagnostics that do not
/// affect the answer (timings, counters) are excluded on purpose.
uint64_t fixDigest(const core::ResilientFix2D& fix);

/// Digest of a report stream (every field of every report, in order).
uint64_t streamDigest(const rfid::ReportStream& reports);

/// 16-hex-digit rendering for logs and JSON.
std::string digestHex(uint64_t digest);

}  // namespace tagspin::capture
