// CaptureWriter: crash-safe, chunk-at-a-time appender for capture files.
//
// The append model is the opposite of CheckpointStore's whole-file
// replacement: a capture grows for the life of a recording, so it is
// appended chunk by chunk (each chunk self-framed with length + CRC, see
// capture/format.hpp) with an fsync cadence bounding how much a power cut
// can cost.  Crash safety is recovered at *open* time: reopening an
// existing capture walks its chunks strictly, truncates any torn tail left
// by a crashed writer (a partial chunk can never validate), and resumes
// appending with the next sequence number -- so a kill -9 mid-write costs
// at most the unsynced suffix, never the file.
//
// When the writer *creates* the capture file, the parent directory is
// fsynced after the header is on stable media: without that, a power cut
// can erase the directory entry and lose the whole capture even though
// every appended chunk was fsynced.  All storage goes through the
// core::IoEnv seam so the crash-point explorer can falsify these claims.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "capture/format.hpp"
#include "core/errors.hpp"
#include "core/io_env.hpp"
#include "core/mem_env.hpp"

namespace tagspin::capture {

struct CaptureWriterConfig {
  /// Reports buffered before a chunk is framed and appended.  Smaller
  /// chunks bound both the corruption blast radius (one bad CRC loses one
  /// chunk) and the crash window; 64 reports is ~0.6 KiB framed.
  size_t chunkReports = 64;
  /// fsync after every Nth appended chunk (1 = every chunk; 0 = only on
  /// close).  The crash-loss bound in reports is chunkReports *
  /// fsyncEveryChunks.
  size_t fsyncEveryChunks = 4;
  /// Storage environment; nullptr means the real filesystem.
  core::IoEnv* io = nullptr;
  /// Optional byte ledger the chunk buffer is charged to (nullptr = no
  /// accounting).  When a reservation for an incoming report is denied the
  /// writer first *spills* -- flushes the buffered chunk early, which
  /// releases its accounting and moves the bytes to stable storage -- and
  /// retries; if even an empty buffer cannot reserve, the report is
  /// *refused* (dropped, counted in reportsRefused) rather than growing
  /// past the budget.
  core::MemArena* arena = nullptr;
};

struct CaptureWriterStats {
  uint64_t reportsBuffered = 0;   // accepted, not yet framed
  uint64_t reportsWritten = 0;    // framed into appended chunks
  uint64_t chunksWritten = 0;
  uint64_t bytesWritten = 0;      // this writer's appends (excl. preexisting)
  uint64_t fsyncs = 0;
  /// Torn bytes truncated from a preexisting file at open.
  uint64_t tornBytesTruncated = 0;
  /// Valid chunks found in a preexisting file at open.
  uint64_t chunksRecoveredOnOpen = 0;
  /// Early flushes forced by a denied buffer reservation (spill).
  uint64_t bufferSpills = 0;
  /// Reports dropped because even a spilled buffer could not reserve.
  uint64_t reportsRefused = 0;
};

class CaptureWriter {
 public:
  /// Open (or create) `path` for appending.  A fresh file gets the format
  /// header; an existing capture is validated and its torn tail truncated.
  /// Throws std::runtime_error on I/O failure and CaptureVersionError /
  /// std::invalid_argument when the existing file is not an appendable
  /// capture (wrong magic or major version -- appending to an alien file
  /// would corrupt it).
  explicit CaptureWriter(std::string path, CaptureWriterConfig config = {});
  ~CaptureWriter();
  CaptureWriter(const CaptureWriter&) = delete;
  CaptureWriter& operator=(const CaptureWriter&) = delete;

  /// Buffer one report (deliveryS = transport delivery time); flushes a
  /// chunk when the buffer reaches chunkReports.
  void append(const rfid::TagReport& report, double deliveryS);
  void append(const TimedStream& reports);

  /// Non-throwing admission: like append(), but a closed writer comes back
  /// as a Result error instead of an exception, and the return value says
  /// whether the report was admitted (false = refused under memory
  /// pressure).  The form fleet workers use so neither I/O state nor
  /// pressure crosses the worker boundary as a throw.
  core::Result<bool> tryAppend(const rfid::TagReport& report,
                               double deliveryS);

  /// Frame and append the buffered reports now (no-op when empty).
  void flush();

  /// fsync the file descriptor now.
  void sync();

  /// flush + fsync + close.  Idempotent; the destructor calls it too
  /// (swallowing errors -- call close() yourself to observe them).
  void close();

  const std::string& path() const { return path_; }
  const CaptureWriterStats& stats() const { return stats_; }
  uint32_t nextSequence() const { return nextSequence_; }
  bool isOpen() const { return fd_ >= 0; }

 private:
  void appendBytes(const std::vector<uint8_t>& bytes);
  /// Charge one buffered report to the arena, spilling once on denial.
  /// False = refuse (the caller drops the report).
  bool reserveForReport();

  std::string path_;
  CaptureWriterConfig config_;
  core::IoEnv* io_ = nullptr;
  int fd_ = -1;
  uint32_t nextSequence_ = 0;
  size_t chunksSinceSync_ = 0;
  TimedStream buffer_;
  CaptureWriterStats stats_;
};

}  // namespace tagspin::capture
