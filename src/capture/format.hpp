// Compact, versioned, CRC32-framed capture format for LLRP report streams.
//
// A capture file persists what a reader session actually delivered -- the
// decoded tag reports plus their *delivery* timing -- so every chaos, soak
// and fleet scenario becomes a replayable corpus instead of dying with the
// process.  The format is built for two hostile realities:
//
//  * the writer can be killed at any byte (crash-safe append: the file is a
//    16-byte header followed by independent chunks, each self-framed with
//    its own length and CRC32, so a torn tail is detectable and truncatable
//    on reopen);
//  * the file can rot at rest (the reader resynchronizes on the chunk magic
//    and skips chunks whose header or payload CRC fails, in the same spirit
//    as rfid::llrp::decodeStreamTolerant on live streams).
//
// Layout (all integers big-endian, matching the LLRP codec):
//
//   file header, 16 bytes:
//     0  "TSPC"            magic
//     4  u8   version major  (readers hard-fail on majors they cannot read)
//     5  u8   version minor  (additive changes only; readers ignore)
//     6  u16  flags          (reserved, 0)
//     8  u32  reserved       (0)
//    12  u32  CRC32 of bytes [0, 12)
//
//   chunk, 32-byte header + payload:
//     0  "TSCK"            chunk magic (the tolerant reader's resync token)
//     4  u32  payload length in bytes
//     8  u32  sequence number (monotone per file; detects duplicated chunks)
//    12  u64  base timestamp, microseconds (reader clock of first record)
//    20  u32  report count
//    24  u32  CRC32 of the payload
//    28  u32  CRC32 of header bytes [0, 28) -- a flipped length field must
//              not send the reader off a cliff
//
//   chunk payload:
//     u8  epcCount,     epcCount  x (u64 hi, u32 lo)   chunk-local EPC dict
//     u8  channelCount, channelCount x (u16 index, u32 kHz)  channel dict
//     reportCount records:
//       varint  zigzag(delta reader timestamp, us)   vs previous record
//       varint  zigzag(delivery - reader timestamp, us)
//       u8      EPC dictionary index
//       u8      channel dictionary index
//       u8      antenna port (0-based)
//       u16     phase, 1/4096ths of a turn (the Impinj quantisation)
//       i16     peak RSSI, centi-dBm
//
// Quantisation deliberately mirrors the LLRP wire codec bit for bit
// (microsecond timestamps, 12-bit phase, centi-dBm RSSI, kHz frequency), so
// capture -> replay -> re-encode round-trips to the exact reports a live
// session decoded: replay determinism is a byte-equality property, not an
// epsilon test.  A typical record is 8-10 bytes against LLRP's 40.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "rfid/report.hpp"

namespace tagspin::capture {

inline constexpr uint8_t kVersionMajor = 1;
inline constexpr uint8_t kVersionMinor = 0;
inline constexpr size_t kFileHeaderSize = 16;
inline constexpr size_t kChunkHeaderSize = 32;
/// Dictionary indices are one byte; the writer must flush before overflow.
inline constexpr size_t kMaxDictEntries = 255;

/// The reader cannot understand the file's major version (or the file is
/// not a capture at all).  This is the only condition the tolerant reader
/// hard-fails on; everything else degrades to skipped chunks.
class CaptureVersionError : public std::runtime_error {
 public:
  explicit CaptureVersionError(const std::string& what)
      : std::runtime_error(what) {}
};

/// One decoded report plus the wall-clock instant the transport delivered
/// it.  Reader timestamps drive estimation; delivery timestamps drive
/// replay pacing (they preserve the original fault timing: a stall's burst
/// flush or a flood arrives in replay exactly when it arrived live).
struct TimedReport {
  rfid::TagReport report;
  double deliveryS = 0.0;
};
using TimedStream = std::vector<TimedReport>;

/// Accounting of a tolerant read, mirroring rfid::llrp::DecodeStats.
struct CaptureStats {
  uint8_t versionMajor = 0;
  uint8_t versionMinor = 0;
  /// File header was missing or corrupt; the reader resynced straight to
  /// the first chunk magic and assumed the current major version.
  bool headerRecovered = false;
  size_t chunksDecoded = 0;
  /// Chunks dropped because their header or payload failed CRC/bounds.
  size_t chunksSkipped = 0;
  /// Chunks dropped because their sequence number was already seen.
  size_t chunksDuplicated = 0;
  uint64_t reportsRecovered = 0;
  /// Bytes stepped over hunting for the next chunk magic (includes any
  /// torn trailing chunk).
  size_t bytesResynced = 0;
  size_t bytesTotal = 0;
};

/// Encode the 16-byte file header for the current format version.
std::vector<uint8_t> encodeFileHeader();

/// Encode one chunk (header + payload) from `reports`.  Throws
/// std::invalid_argument when empty or when the chunk-local dictionaries
/// would overflow (more than kMaxDictEntries distinct EPCs or channels) --
/// the writer sizes chunks to stay far below that.
std::vector<uint8_t> encodeChunk(std::span<const TimedReport> reports,
                                 uint32_t sequence);

/// Strict decode of a whole capture image; throws CaptureVersionError on an
/// unreadable major version and std::invalid_argument on any framing or CRC
/// failure.  The crash-safe writer + tolerant reader pair is the production
/// path; strict decode is the test oracle and the integrity check.
TimedStream decodeCapture(std::span<const uint8_t> bytes);

/// Corruption-tolerant decode: validates the header (resyncing past it when
/// corrupt), then walks chunks, resynchronizing on the chunk magic after
/// any CRC/bounds failure and dropping duplicated sequence numbers.  Never
/// throws except CaptureVersionError for a major version this code cannot
/// read.  `stats` (optional) reports what was lost.
TimedStream decodeCaptureTolerant(std::span<const uint8_t> bytes,
                                  CaptureStats* stats = nullptr);

/// Result of scanning a capture image for its longest strictly-valid
/// prefix: the file header plus consecutive intact chunks numbered 0..n-1.
/// The crash-safe writer truncates to `validBytes` on reopen; everything
/// past it is a torn tail (or rot) that can never validate.
struct PrefixScan {
  bool headerValid = false;
  size_t validBytes = 0;  // 0 when the header itself is invalid
  uint64_t chunks = 0;
  uint32_t nextSequence = 0;
};

/// Strictly scan from byte 0.  Throws CaptureVersionError when the header
/// is intact but carries a major version this build cannot read; any other
/// damage just ends the prefix.
PrefixScan scanValidPrefix(std::span<const uint8_t> bytes);

/// Drop the delivery timing (estimation consumes plain reports).
rfid::ReportStream stripTiming(const TimedStream& timed);

/// Wrap a plain stream with delivery == reader timestamp (synthetic
/// captures for the load generator have no transport timing of their own).
TimedStream withReaderTiming(const rfid::ReportStream& reports);

/// Whole-file convenience: read `path` and decode.  `tolerant` selects the
/// decoder; throws std::runtime_error when the file cannot be opened.
TimedStream readCaptureFile(const std::string& path, bool tolerant = true,
                            CaptureStats* stats = nullptr);

}  // namespace tagspin::capture
