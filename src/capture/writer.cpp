#include "capture/writer.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>

namespace tagspin::capture {

CaptureWriter::CaptureWriter(std::string path, CaptureWriterConfig config)
    : path_(std::move(path)), config_(config) {
  if (config_.chunkReports == 0) config_.chunkReports = 1;

  std::vector<uint8_t> existing;
  {
    std::ifstream in(path_, std::ios::binary);
    if (in) {
      existing.assign((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    }
  }

  size_t keepBytes = 0;
  bool writeHeader = true;
  if (existing.size() >= kFileHeaderSize) {
    // scanValidPrefix throws CaptureVersionError on a foreign major --
    // appending this build's chunks to it would corrupt the file, so that
    // propagates.  A valid header yields the longest strictly-valid prefix;
    // everything past it is a torn tail from a crashed writer (or rot) and
    // gets truncated.  An invalid header on a full-sized file is not ours
    // to destroy: refuse rather than overwrite.
    const PrefixScan scan = scanValidPrefix(existing);
    if (!scan.headerValid) {
      throw std::invalid_argument(
          "capture: " + path_ +
          " exists but is not a readable capture (corrupt or foreign "
          "header); refusing to append over it");
    }
    writeHeader = false;
    keepBytes = scan.validBytes;
    nextSequence_ = scan.nextSequence;
    stats_.chunksRecoveredOnOpen = scan.chunks;
    stats_.tornBytesTruncated = existing.size() - keepBytes;
  } else if (!existing.empty()) {
    // Shorter than one header: a writer died inside its very first write.
    // Nothing valid can be salvaged; start the file over.
    keepBytes = 0;
    writeHeader = true;
    stats_.tornBytesTruncated = existing.size();
  }

  fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT, 0644);
  if (fd_ < 0) {
    throw std::runtime_error("capture: cannot open " + path_ + ": " +
                             std::strerror(errno));
  }
  if (!existing.empty()) {
    if (::ftruncate(fd_, static_cast<off_t>(keepBytes)) != 0) {
      const int err = errno;
      ::close(fd_);
      fd_ = -1;
      throw std::runtime_error("capture: cannot truncate torn tail of " +
                               path_ + ": " + std::strerror(err));
    }
    if (::lseek(fd_, 0, SEEK_END) < 0) {
      ::close(fd_);
      fd_ = -1;
      throw std::runtime_error("capture: cannot seek " + path_);
    }
  }
  if (writeHeader) {
    appendBytes(encodeFileHeader());
    sync();  // the header must survive before any chunk refers to it
  } else if (stats_.tornBytesTruncated > 0) {
    sync();  // persist the truncation before appending over it
  }
}

CaptureWriter::~CaptureWriter() {
  try {
    close();
  } catch (...) {
    // Destructor must not throw; call close() explicitly to observe errors.
  }
}

void CaptureWriter::append(const rfid::TagReport& report, double deliveryS) {
  if (fd_ < 0) {
    throw std::runtime_error("capture: writer is closed: " + path_);
  }
  buffer_.push_back({report, deliveryS});
  ++stats_.reportsBuffered;
  if (buffer_.size() >= config_.chunkReports) flush();
}

void CaptureWriter::append(const TimedStream& reports) {
  for (const TimedReport& tr : reports) append(tr.report, tr.deliveryS);
}

void CaptureWriter::flush() {
  if (buffer_.empty()) return;
  if (fd_ < 0) {
    throw std::runtime_error("capture: writer is closed: " + path_);
  }
  const std::vector<uint8_t> chunk = encodeChunk(buffer_, nextSequence_);
  appendBytes(chunk);
  ++nextSequence_;
  ++stats_.chunksWritten;
  stats_.reportsWritten += buffer_.size();
  stats_.reportsBuffered -= buffer_.size();
  buffer_.clear();
  if (config_.fsyncEveryChunks > 0 &&
      ++chunksSinceSync_ >= config_.fsyncEveryChunks) {
    sync();
  }
}

void CaptureWriter::sync() {
  if (fd_ < 0) return;
  if (::fsync(fd_) != 0) {
    throw std::runtime_error("capture: fsync failed: " + path_ + ": " +
                             std::strerror(errno));
  }
  ++stats_.fsyncs;
  chunksSinceSync_ = 0;
}

void CaptureWriter::close() {
  if (fd_ < 0) return;
  flush();
  sync();
  const int fd = fd_;
  fd_ = -1;
  if (::close(fd) != 0) {
    throw std::runtime_error("capture: close failed: " + path_ + ": " +
                             std::strerror(errno));
  }
}

void CaptureWriter::appendBytes(const std::vector<uint8_t>& bytes) {
  size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n = ::write(fd_, bytes.data() + written,
                              bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("capture: write failed: " + path_ + ": " +
                               std::strerror(errno));
    }
    written += static_cast<size_t>(n);
  }
  stats_.bytesWritten += bytes.size();
}

}  // namespace tagspin::capture
