#include "capture/writer.hpp"

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace tagspin::capture {

CaptureWriter::CaptureWriter(std::string path, CaptureWriterConfig config)
    : path_(std::move(path)),
      config_(config),
      io_(&core::resolveIo(config.io)) {
  if (config_.chunkReports == 0) config_.chunkReports = 1;

  std::string raw;
  const core::IoStatus readSt = io_->readFile(path_, raw);
  const bool fileExisted = readSt.ok();
  std::vector<uint8_t> existing(raw.begin(), raw.end());

  size_t keepBytes = 0;
  bool writeHeader = true;
  if (existing.size() >= kFileHeaderSize) {
    // scanValidPrefix throws CaptureVersionError on a foreign major --
    // appending this build's chunks to it would corrupt the file, so that
    // propagates.  A valid header yields the longest strictly-valid prefix;
    // everything past it is a torn tail from a crashed writer (or rot) and
    // gets truncated.  An invalid header on a full-sized file is not ours
    // to destroy: refuse rather than overwrite.
    const PrefixScan scan = scanValidPrefix(existing);
    if (!scan.headerValid) {
      throw std::invalid_argument(
          "capture: " + path_ +
          " exists but is not a readable capture (corrupt or foreign "
          "header); refusing to append over it");
    }
    writeHeader = false;
    keepBytes = scan.validBytes;
    nextSequence_ = scan.nextSequence;
    stats_.chunksRecoveredOnOpen = scan.chunks;
    stats_.tornBytesTruncated = existing.size() - keepBytes;
  } else if (!existing.empty()) {
    // Shorter than one header: a writer died inside its very first write.
    // Nothing valid can be salvaged; start the file over.
    keepBytes = 0;
    writeHeader = true;
    stats_.tornBytesTruncated = existing.size();
  }

  const core::IoStatus fd =
      core::openRetry(*io_, path_, core::OpenMode::kAppendable);
  if (!fd.ok()) {
    throw std::runtime_error("capture: cannot open " + path_ + ": " +
                             std::strerror(fd.err));
  }
  fd_ = static_cast<int>(fd.value);
  if (!existing.empty()) {
    core::IoStatus st = io_->truncate(fd_, keepBytes);
    if (st.err == EINTR) st = io_->truncate(fd_, keepBytes);
    if (!st.ok()) {
      const int err = st.err;
      io_->close(fd_);
      fd_ = -1;
      throw std::runtime_error("capture: cannot truncate torn tail of " +
                               path_ + ": " + std::strerror(err));
    }
    if (!io_->seekEnd(fd_).ok()) {
      io_->close(fd_);
      fd_ = -1;
      throw std::runtime_error("capture: cannot seek " + path_);
    }
  }
  if (writeHeader) {
    appendBytes(encodeFileHeader());
    sync();  // the header must survive before any chunk refers to it
  } else if (stats_.tornBytesTruncated > 0) {
    sync();  // persist the truncation before appending over it
  }
  if (!fileExisted) {
    // We created the directory entry: seal it, or a power cut can erase
    // the file entirely even though its header was just fsynced.
    const core::IoStatus st =
        core::syncDirRetry(*io_, core::parentDir(path_));
    if (!st.ok()) {
      io_->close(fd_);
      fd_ = -1;
      throw std::runtime_error("capture: directory fsync failed for " +
                               path_ + ": " + std::strerror(st.err));
    }
  }
}

CaptureWriter::~CaptureWriter() {
  try {
    close();
  } catch (...) {
    // Destructor must not throw; call close() explicitly to observe errors.
  }
}

bool CaptureWriter::reserveForReport() {
  if (!config_.arena) return true;
  if (config_.arena->tryReserve(sizeof(TimedReport))) return true;
  // Spill: an early flush releases the buffered reports' accounting and
  // moves them to stable storage, then the incoming report gets one retry.
  ++stats_.bufferSpills;
  flush();
  if (config_.arena->tryReserve(sizeof(TimedReport))) return true;
  ++stats_.reportsRefused;
  return false;
}

void CaptureWriter::append(const rfid::TagReport& report, double deliveryS) {
  if (fd_ < 0) {
    throw std::runtime_error("capture: writer is closed: " + path_);
  }
  if (!reserveForReport()) return;  // refused under memory pressure
  buffer_.push_back({report, deliveryS});
  ++stats_.reportsBuffered;
  if (buffer_.size() >= config_.chunkReports) flush();
}

void CaptureWriter::append(const TimedStream& reports) {
  for (const TimedReport& tr : reports) append(tr.report, tr.deliveryS);
}

core::Result<bool> CaptureWriter::tryAppend(const rfid::TagReport& report,
                                            double deliveryS) {
  if (fd_ < 0) {
    return core::Result<bool>::fail(core::ErrorCode::kInternal,
                                    "capture: writer is closed: " + path_);
  }
  if (!reserveForReport()) return false;
  buffer_.push_back({report, deliveryS});
  ++stats_.reportsBuffered;
  if (buffer_.size() >= config_.chunkReports) flush();
  return true;
}

void CaptureWriter::flush() {
  if (buffer_.empty()) return;
  if (fd_ < 0) {
    throw std::runtime_error("capture: writer is closed: " + path_);
  }
  const std::vector<uint8_t> chunk = encodeChunk(buffer_, nextSequence_);
  appendBytes(chunk);
  ++nextSequence_;
  ++stats_.chunksWritten;
  stats_.reportsWritten += buffer_.size();
  stats_.reportsBuffered -= buffer_.size();
  if (config_.arena) {
    config_.arena->release(uint64_t(buffer_.size()) * sizeof(TimedReport));
  }
  buffer_.clear();
  if (config_.fsyncEveryChunks > 0 &&
      ++chunksSinceSync_ >= config_.fsyncEveryChunks) {
    sync();
  }
}

void CaptureWriter::sync() {
  if (fd_ < 0) return;
  const core::IoStatus st = core::fsyncRetry(*io_, fd_);
  if (!st.ok()) {
    throw std::runtime_error("capture: fsync failed: " + path_ + ": " +
                             std::strerror(st.err));
  }
  ++stats_.fsyncs;
  chunksSinceSync_ = 0;
}

void CaptureWriter::close() {
  if (fd_ < 0) return;
  flush();
  sync();
  const int fd = fd_;
  fd_ = -1;
  const core::IoStatus st = io_->close(fd);
  if (!st.ok()) {
    throw std::runtime_error("capture: close failed: " + path_ + ": " +
                             std::strerror(st.err));
  }
}

void CaptureWriter::appendBytes(const std::vector<uint8_t>& bytes) {
  const core::IoStatus st =
      core::writeAllRetry(*io_, fd_, bytes.data(), bytes.size());
  if (!st.ok()) {
    throw std::runtime_error("capture: write failed: " + path_ + ": " +
                             std::strerror(st.err));
  }
  stats_.bytesWritten += bytes.size();
}

}  // namespace tagspin::capture
