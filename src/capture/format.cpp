#include "capture/format.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>
#include <map>
#include <numbers>
#include <unordered_set>

#include "geom/angles.hpp"
#include "runtime/checkpoint.hpp"

namespace tagspin::capture {

namespace {

constexpr uint8_t kFileMagic[4] = {'T', 'S', 'P', 'C'};
constexpr uint8_t kChunkMagic[4] = {'T', 'S', 'C', 'K'};

void putU16(std::vector<uint8_t>& out, uint16_t v) {
  out.push_back(static_cast<uint8_t>(v >> 8));
  out.push_back(static_cast<uint8_t>(v));
}
void putU32(std::vector<uint8_t>& out, uint32_t v) {
  putU16(out, static_cast<uint16_t>(v >> 16));
  putU16(out, static_cast<uint16_t>(v));
}
void putU64(std::vector<uint8_t>& out, uint64_t v) {
  putU32(out, static_cast<uint32_t>(v >> 32));
  putU32(out, static_cast<uint32_t>(v));
}

uint16_t getU16(std::span<const uint8_t> d, size_t at) {
  return static_cast<uint16_t>(static_cast<uint16_t>(d[at]) << 8 |
                               static_cast<uint16_t>(d[at + 1]));
}
uint32_t getU32(std::span<const uint8_t> d, size_t at) {
  return static_cast<uint32_t>(getU16(d, at)) << 16 | getU16(d, at + 2);
}
uint64_t getU64(std::span<const uint8_t> d, size_t at) {
  return static_cast<uint64_t>(getU32(d, at)) << 32 | getU32(d, at + 4);
}

uint32_t crcOf(std::span<const uint8_t> bytes) {
  return runtime::crc32(bytes);
}

uint64_t zigzag(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^
         static_cast<uint64_t>(v >> 63);
}
int64_t unzigzag(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

void putVarint(std::vector<uint8_t>& out, uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<uint8_t>(v));
}

/// Read a varint; advances `at`.  Throws on truncation or > 10 bytes.
uint64_t getVarint(std::span<const uint8_t> d, size_t& at) {
  uint64_t v = 0;
  int shift = 0;
  for (int i = 0; i < 10; ++i) {
    if (at >= d.size()) {
      throw std::invalid_argument("capture: varint truncated");
    }
    const uint8_t b = d[at++];
    v |= static_cast<uint64_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) return v;
    shift += 7;
  }
  throw std::invalid_argument("capture: varint overlong");
}

int64_t toMicros(double seconds) {
  return static_cast<int64_t>(std::llround(seconds * 1e6));
}

}  // namespace

std::vector<uint8_t> encodeFileHeader() {
  std::vector<uint8_t> out;
  out.reserve(kFileHeaderSize);
  out.insert(out.end(), kFileMagic, kFileMagic + 4);
  out.push_back(kVersionMajor);
  out.push_back(kVersionMinor);
  putU16(out, 0);  // flags
  putU32(out, 0);  // reserved
  putU32(out, crcOf({out.data(), out.size()}));
  return out;
}

std::vector<uint8_t> encodeChunk(std::span<const TimedReport> reports,
                                 uint32_t sequence) {
  if (reports.empty()) {
    throw std::invalid_argument("capture: cannot encode an empty chunk");
  }

  // Chunk-local dictionaries, in first-appearance order so encoding is a
  // pure function of the report sequence.
  std::vector<rfid::Epc> epcs;
  std::map<rfid::Epc, uint8_t> epcIndex;
  std::vector<std::pair<uint16_t, uint32_t>> channels;  // (index, kHz)
  std::map<std::pair<uint16_t, uint32_t>, uint8_t> channelIndex;
  for (const TimedReport& tr : reports) {
    const rfid::TagReport& r = tr.report;
    if (epcIndex.emplace(r.epc, static_cast<uint8_t>(epcs.size())).second) {
      epcs.push_back(r.epc);
    }
    const std::pair<uint16_t, uint32_t> chan{
        static_cast<uint16_t>(r.channelIndex),
        static_cast<uint32_t>(std::llround(r.frequencyHz / 1e3))};
    if (channelIndex.emplace(chan, static_cast<uint8_t>(channels.size()))
            .second) {
      channels.push_back(chan);
    }
  }
  if (epcs.size() > kMaxDictEntries || channels.size() > kMaxDictEntries) {
    throw std::invalid_argument("capture: chunk dictionary overflow (" +
                                std::to_string(epcs.size()) + " EPCs, " +
                                std::to_string(channels.size()) +
                                " channels); flush smaller chunks");
  }

  std::vector<uint8_t> payload;
  payload.reserve(reports.size() * 10 + epcs.size() * 12 +
                  channels.size() * 6 + 2);
  payload.push_back(static_cast<uint8_t>(epcs.size()));
  for (const rfid::Epc& e : epcs) {
    putU64(payload, e.hi());
    putU32(payload, e.lo());
  }
  payload.push_back(static_cast<uint8_t>(channels.size()));
  for (const auto& [index, khz] : channels) {
    putU16(payload, index);
    putU32(payload, khz);
  }

  const int64_t baseUs = toMicros(reports.front().report.timestampS);
  int64_t prevUs = baseUs;
  for (const TimedReport& tr : reports) {
    const rfid::TagReport& r = tr.report;
    const int64_t readerUs = toMicros(r.timestampS);
    putVarint(payload, zigzag(readerUs - prevUs));
    prevUs = readerUs;
    putVarint(payload, zigzag(toMicros(tr.deliveryS) - readerUs));
    payload.push_back(epcIndex.at(r.epc));
    payload.push_back(channelIndex.at(
        {static_cast<uint16_t>(r.channelIndex),
         static_cast<uint32_t>(std::llround(r.frequencyHz / 1e3))}));
    payload.push_back(static_cast<uint8_t>(std::max(0, r.antennaPort)));
    const double turns =
        geom::wrapTwoPi(r.phaseRad) / (2.0 * std::numbers::pi);
    putU16(payload,
           static_cast<uint16_t>(std::lround(turns * 4096.0)) & 0x0FFF);
    putU16(payload, static_cast<uint16_t>(static_cast<int16_t>(
                        std::lround(r.rssiDbm * 100.0))));
  }

  std::vector<uint8_t> out;
  out.reserve(kChunkHeaderSize + payload.size());
  out.insert(out.end(), kChunkMagic, kChunkMagic + 4);
  putU32(out, static_cast<uint32_t>(payload.size()));
  putU32(out, sequence);
  putU64(out, static_cast<uint64_t>(baseUs));
  putU32(out, static_cast<uint32_t>(reports.size()));
  putU32(out, crcOf({payload.data(), payload.size()}));
  putU32(out, crcOf({out.data(), out.size()}));  // header CRC over [0, 28)
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

namespace {

struct ChunkHeader {
  uint32_t payloadLen = 0;
  uint32_t sequence = 0;
  int64_t baseUs = 0;
  uint32_t reportCount = 0;
  uint32_t payloadCrc = 0;
};

bool chunkMagicAt(std::span<const uint8_t> d, size_t at) {
  return at + 4 <= d.size() && std::memcmp(d.data() + at, kChunkMagic, 4) == 0;
}

/// Parse and validate a chunk header at `at` (magic already confirmed).
/// Returns false on header-CRC failure or absurd bounds.
bool parseChunkHeader(std::span<const uint8_t> d, size_t at,
                      ChunkHeader& out) {
  if (at + kChunkHeaderSize > d.size()) return false;
  if (crcOf(d.subspan(at, kChunkHeaderSize - 4)) !=
      getU32(d, at + kChunkHeaderSize - 4)) {
    return false;
  }
  out.payloadLen = getU32(d, at + 4);
  out.sequence = getU32(d, at + 8);
  out.baseUs = static_cast<int64_t>(getU64(d, at + 12));
  out.reportCount = getU32(d, at + 20);
  out.payloadCrc = getU32(d, at + 24);
  return at + kChunkHeaderSize + out.payloadLen <= d.size();
}

/// Decode a chunk payload (CRC already verified).  Throws
/// std::invalid_argument on structural damage the CRC let through (it
/// cannot: this only fires on encoder bugs, but the tolerant reader treats
/// a throw as a skipped chunk anyway).
void decodePayload(std::span<const uint8_t> p, const ChunkHeader& h,
                   TimedStream& out) {
  size_t at = 0;
  const auto need = [&](size_t n) {
    if (at + n > p.size()) {
      throw std::invalid_argument("capture: chunk payload truncated");
    }
  };
  need(1);
  const size_t epcCount = p[at++];
  need(epcCount * 12);
  std::vector<rfid::Epc> epcs;
  epcs.reserve(epcCount);
  for (size_t i = 0; i < epcCount; ++i) {
    epcs.emplace_back(getU64(p, at), getU32(p, at + 8));
    at += 12;
  }
  need(1);
  const size_t channelCount = p[at++];
  need(channelCount * 6);
  std::vector<std::pair<uint16_t, uint32_t>> channels;
  channels.reserve(channelCount);
  for (size_t i = 0; i < channelCount; ++i) {
    channels.emplace_back(getU16(p, at), getU32(p, at + 2));
    at += 6;
  }

  int64_t prevUs = h.baseUs;
  for (uint32_t i = 0; i < h.reportCount; ++i) {
    const int64_t readerUs = prevUs + unzigzag(getVarint(p, at));
    prevUs = readerUs;
    const int64_t deliveryUs = readerUs + unzigzag(getVarint(p, at));
    need(7);
    const uint8_t epcIdx = p[at++];
    const uint8_t chanIdx = p[at++];
    const uint8_t port = p[at++];
    const uint16_t phase = getU16(p, at);
    const int16_t rssi = static_cast<int16_t>(getU16(p, at + 2));
    at += 4;
    if (epcIdx >= epcs.size() || chanIdx >= channels.size()) {
      throw std::invalid_argument("capture: dictionary index out of range");
    }
    TimedReport tr;
    tr.report.epc = epcs[epcIdx];
    tr.report.timestampS = static_cast<double>(readerUs) / 1e6;
    tr.report.phaseRad = static_cast<double>(phase & 0x0FFF) / 4096.0 * 2.0 *
                         std::numbers::pi;
    tr.report.rssiDbm = static_cast<double>(rssi) / 100.0;
    tr.report.channelIndex = channels[chanIdx].first;
    tr.report.frequencyHz = static_cast<double>(channels[chanIdx].second) * 1e3;
    tr.report.antennaPort = port;
    tr.deliveryS = static_cast<double>(deliveryUs) / 1e6;
    out.push_back(std::move(tr));
  }
  if (at != p.size()) {
    throw std::invalid_argument("capture: trailing bytes in chunk payload");
  }
}

/// Validate the file header.  Returns the offset past it; throws
/// CaptureVersionError on an unreadable major version; returns 0 (with
/// `ok = false`) when the header is corrupt.
size_t checkFileHeader(std::span<const uint8_t> d, bool& ok,
                       uint8_t& major, uint8_t& minor) {
  ok = false;
  if (d.size() < kFileHeaderSize ||
      std::memcmp(d.data(), kFileMagic, 4) != 0) {
    return 0;
  }
  if (crcOf(d.subspan(0, 12)) != getU32(d, 12)) return 0;
  major = d[4];
  minor = d[5];
  if (major != kVersionMajor) {
    throw CaptureVersionError(
        "capture: format version " + std::to_string(int(major)) + "." +
        std::to_string(int(minor)) + " is not readable by this build (v" +
        std::to_string(int(kVersionMajor)) + ".x)");
  }
  ok = true;
  return kFileHeaderSize;
}

}  // namespace

TimedStream decodeCapture(std::span<const uint8_t> bytes) {
  bool headerOk = false;
  uint8_t major = 0, minor = 0;
  const size_t start = checkFileHeader(bytes, headerOk, major, minor);
  if (!headerOk) {
    throw std::invalid_argument("capture: missing or corrupt file header");
  }
  TimedStream out;
  size_t at = start;
  uint64_t expectedSeq = 0;
  while (at < bytes.size()) {
    if (!chunkMagicAt(bytes, at)) {
      throw std::invalid_argument("capture: bad chunk magic at offset " +
                                  std::to_string(at));
    }
    ChunkHeader h;
    if (!parseChunkHeader(bytes, at, h)) {
      throw std::invalid_argument("capture: corrupt chunk header at offset " +
                                  std::to_string(at));
    }
    if (h.sequence != expectedSeq) {
      throw std::invalid_argument(
          "capture: chunk sequence " + std::to_string(h.sequence) +
          " at offset " + std::to_string(at) + " (want " +
          std::to_string(expectedSeq) + ")");
    }
    const auto payload = bytes.subspan(at + kChunkHeaderSize, h.payloadLen);
    if (crcOf(payload) != h.payloadCrc) {
      throw std::invalid_argument("capture: chunk payload CRC mismatch at "
                                  "offset " + std::to_string(at));
    }
    decodePayload(payload, h, out);
    at += kChunkHeaderSize + h.payloadLen;
    ++expectedSeq;
  }
  return out;
}

TimedStream decodeCaptureTolerant(std::span<const uint8_t> bytes,
                                  CaptureStats* stats) {
  CaptureStats local;
  CaptureStats& s = stats ? *stats : local;
  s = {};
  s.bytesTotal = bytes.size();

  bool headerOk = false;
  size_t at = checkFileHeader(bytes, headerOk, s.versionMajor,
                              s.versionMinor);  // may throw VersionError
  if (!headerOk) {
    // Header rot: hunt for the first chunk and read best-effort at the
    // current major version.  (A wrong-major file announces itself in the
    // header, which just validated as absent -- so this is rot, not skew.)
    s.headerRecovered = true;
    s.versionMajor = kVersionMajor;
    s.versionMinor = kVersionMinor;
  }

  TimedStream out;
  std::unordered_set<uint32_t> seenSeq;
  size_t resyncRun = 0;
  while (at < bytes.size()) {
    if (!chunkMagicAt(bytes, at)) {
      ++at;
      ++resyncRun;
      continue;
    }
    ChunkHeader h;
    if (!parseChunkHeader(bytes, at, h)) {
      // Corrupt or torn header: step past the magic and keep hunting (the
      // magic bytes themselves count as resynced).
      ++s.chunksSkipped;
      s.bytesResynced += 4;
      at += 4;
      continue;
    }
    const auto payload = bytes.subspan(at + kChunkHeaderSize, h.payloadLen);
    if (crcOf(payload) != h.payloadCrc) {
      // The header is intact (its own CRC passed), so the length field is
      // trustworthy: account the whole chunk and step over it rather than
      // re-scanning its payload for phantom magics.
      ++s.chunksSkipped;
      s.bytesResynced += kChunkHeaderSize + h.payloadLen;
      at += kChunkHeaderSize + h.payloadLen;
      continue;
    }
    if (!seenSeq.insert(h.sequence).second) {
      ++s.chunksDuplicated;
      at += kChunkHeaderSize + h.payloadLen;
      continue;
    }
    try {
      TimedStream chunk;
      decodePayload(payload, h, chunk);
      ++s.chunksDecoded;
      s.reportsRecovered += chunk.size();
      out.insert(out.end(), std::make_move_iterator(chunk.begin()),
                 std::make_move_iterator(chunk.end()));
    } catch (const std::invalid_argument&) {
      ++s.chunksSkipped;
      s.bytesResynced += kChunkHeaderSize + h.payloadLen;
    }
    at += kChunkHeaderSize + h.payloadLen;
  }
  s.bytesResynced += resyncRun;
  return out;
}

PrefixScan scanValidPrefix(std::span<const uint8_t> bytes) {
  PrefixScan scan;
  uint8_t major = 0, minor = 0;
  size_t at = checkFileHeader(bytes, scan.headerValid, major, minor);
  if (!scan.headerValid) return scan;
  scan.validBytes = at;
  while (at < bytes.size()) {
    if (!chunkMagicAt(bytes, at)) break;
    ChunkHeader h;
    if (!parseChunkHeader(bytes, at, h)) break;
    if (h.sequence != scan.nextSequence) break;
    const auto payload = bytes.subspan(at + kChunkHeaderSize, h.payloadLen);
    if (crcOf(payload) != h.payloadCrc) break;
    at += kChunkHeaderSize + h.payloadLen;
    scan.validBytes = at;
    ++scan.chunks;
    ++scan.nextSequence;
  }
  return scan;
}

rfid::ReportStream stripTiming(const TimedStream& timed) {
  rfid::ReportStream out;
  out.reserve(timed.size());
  for (const TimedReport& tr : timed) out.push_back(tr.report);
  return out;
}

TimedStream withReaderTiming(const rfid::ReportStream& reports) {
  TimedStream out;
  out.reserve(reports.size());
  for (const rfid::TagReport& r : reports) {
    out.push_back({r, r.timestampS});
  }
  return out;
}

TimedStream readCaptureFile(const std::string& path, bool tolerant,
                            CaptureStats* stats) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("capture: cannot open " + path);
  }
  std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  return tolerant ? decodeCaptureTolerant(bytes, stats)
                  : decodeCapture(bytes);
}

}  // namespace tagspin::capture
