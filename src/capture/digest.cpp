#include "capture/digest.hpp"

#include <bit>
#include <cstdio>

namespace tagspin::capture {

void Fnv1a::bytes(const void* data, size_t size) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < size; ++i) {
    hash_ ^= p[i];
    hash_ *= 1099511628211ULL;
  }
}

void Fnv1a::u64(uint64_t v) {
  uint8_t buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<uint8_t>(v >> (8 * i));
  bytes(buf, sizeof(buf));
}

void Fnv1a::f64(double v) { u64(std::bit_cast<uint64_t>(v)); }

uint64_t fixDigest(const core::ResilientFix2D& fix) {
  Fnv1a h;
  h.f64(fix.fix.position.x);
  h.f64(fix.fix.position.y);
  h.f64(fix.fix.residualM);
  h.u64(static_cast<uint64_t>(fix.report.grade));
  h.f64(fix.report.confidence);
  h.u64(fix.fix.directions.size());
  for (const core::RigDirection& d : fix.fix.directions) {
    h.f64(d.azimuth);
    h.f64(d.peakValue);
  }
  return h.value();
}

uint64_t streamDigest(const rfid::ReportStream& reports) {
  Fnv1a h;
  h.u64(reports.size());
  for (const rfid::TagReport& r : reports) {
    h.u64(r.epc.hi());
    h.u64(r.epc.lo());
    h.f64(r.timestampS);
    h.f64(r.phaseRad);
    h.f64(r.rssiDbm);
    h.u64(static_cast<uint64_t>(r.channelIndex));
    h.f64(r.frequencyHz);
    h.u64(static_cast<uint64_t>(r.antennaPort));
  }
  return h.value();
}

std::string digestHex(uint64_t digest) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(digest));
  return buf;
}

}  // namespace tagspin::capture
