// RecordingTransport: a pass-through Transport tap that captures what the
// session actually received.
//
// It forwards connect/poll/close to the wrapped transport untouched, and on
// the side feeds every polled byte through its own tolerant LLRP decoder,
// appending each decoded report (stamped with the poll time as its delivery
// time) to a CaptureWriter.  Because the tap sees exactly the bytes the
// session sees -- including torn frames, resync garbage and flood bursts --
// the capture is a faithful record of the session's input: replaying it
// reproduces the live run's ingest byte-for-byte (the recorder's decoder
// and the session's decoder drop the same junk).
//
// The writer outlives any single transport: supervisor-level restarts mint
// a fresh RecordingTransport per attempt, all appending to one capture.
#pragma once

#include <memory>

#include "capture/writer.hpp"
#include "rfid/llrp.hpp"
#include "runtime/transport.hpp"

namespace tagspin::capture {

class RecordingTransport final : public runtime::Transport {
 public:
  /// `writer` must outlive this transport (not owned).
  RecordingTransport(std::unique_ptr<runtime::Transport> inner,
                     CaptureWriter* writer)
      : inner_(std::move(inner)), writer_(writer) {}

  bool connect(double nowS) override { return inner_->connect(nowS); }

  runtime::TransportRead poll(double nowS) override {
    runtime::TransportRead read = inner_->poll(nowS);
    if (writer_ && !read.bytes.empty()) {
      for (const rfid::TagReport& r : decoder_.feed(read.bytes)) {
        writer_->append(r, nowS);
      }
    }
    return read;
  }

  void close() override {
    decoder_.finish();  // torn tail can never decode; keep stats faithful
    inner_->close();
  }

  const rfid::llrp::DecodeStats& decodeStats() const {
    return decoder_.stats();
  }

 private:
  std::unique_ptr<runtime::Transport> inner_;
  CaptureWriter* writer_;
  rfid::llrp::TolerantStreamDecoder decoder_;
};

}  // namespace tagspin::capture
