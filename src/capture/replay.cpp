#include "capture/replay.hpp"

#include "rfid/llrp.hpp"

namespace tagspin::capture {

uint64_t replayStreamBytes(size_t reports) {
  return uint64_t(reports) * (sizeof(TimedReport) +
                              rfid::llrp::kMessageSize + sizeof(double));
}

std::shared_ptr<const ReplayStream> makeReplayStream(TimedStream timed) {
  // The unbudgeted path cannot be refused, so the Result always holds.
  return *makeReplayStreamBudgeted(std::move(timed), nullptr);
}

core::Result<std::shared_ptr<const ReplayStream>> makeReplayStreamBudgeted(
    TimedStream timed, core::MemArena* arena) {
  using StreamResult = core::Result<std::shared_ptr<const ReplayStream>>;
  const uint64_t bytes = replayStreamBytes(timed.size());
  if (arena && !arena->tryReserve(bytes)) {
    return StreamResult::fail(
        core::ErrorCode::kOutOfMemory,
        "replay stream refused: " + std::to_string(bytes) +
            " bytes denied by arena '" + arena->domain() + "'");
  }
  auto stream = std::make_shared<ReplayStream>();
  if (arena) stream->reservation = core::MemReservation(arena, bytes);
  stream->timed = std::move(timed);
  stream->wire.reserve(stream->timed.size() * rfid::llrp::kMessageSize);
  stream->releaseS.reserve(stream->timed.size());
  const double firstDeliveryS =
      stream->timed.empty() ? 0.0 : stream->timed.front().deliveryS;
  for (const TimedReport& tr : stream->timed) {
    const std::vector<uint8_t> frame = rfid::llrp::encodeReport(tr.report);
    stream->wire.insert(stream->wire.end(), frame.begin(), frame.end());
    stream->releaseS.push_back(tr.deliveryS - firstDeliveryS);
  }
  return StreamResult::ok(std::move(stream));
}

ReplayTransport::ReplayTransport(std::shared_ptr<const ReplayStream> stream,
                                 ReplayTransportConfig config)
    : stream_(std::move(stream)), config_(config) {}

bool ReplayTransport::connect(double nowS) {
  if (connected_) return true;
  if (connectStartedS_ < 0.0) connectStartedS_ = nowS;
  if (nowS - connectStartedS_ + 1e-12 < config_.connectDelayS) return false;
  connected_ = true;
  if (!epochSet_) {
    epochS_ = nowS;
    epochSet_ = true;
  }
  return true;
}

runtime::TransportRead ReplayTransport::poll(double nowS) {
  runtime::TransportRead read;
  if (!connected_) {
    read.status = runtime::TransportStatus::kClosed;
    return read;
  }
  const size_t total = stream_->timed.size();
  const double elapsed = nowS - epochS_;
  size_t end = nextFrame_;
  while (end < total &&
         (config_.speed <= 0.0 ||
          stream_->releaseS[end] <= elapsed * config_.speed + 1e-12)) {
    ++end;
  }
  if (end > nextFrame_) {
    const size_t from = nextFrame_ * rfid::llrp::kMessageSize;
    const size_t to = end * rfid::llrp::kMessageSize;
    read.bytes.assign(stream_->wire.begin() + from,
                      stream_->wire.begin() + to);
    nextFrame_ = end;
    read.status = runtime::TransportStatus::kOk;
  } else {
    read.status = runtime::TransportStatus::kIdle;
  }
  return read;
}

void ReplayTransport::close() {
  connected_ = false;
  connectStartedS_ = -1.0;
  // epochS_ survives: the schedule keeps running while disconnected, as a
  // live reader's stream would (frames "emitted" while away stay delivered
  // in order here, though -- replay preserves content, the flaky transport
  // is where loss is simulated).
}

}  // namespace tagspin::capture
