// ReplayTransport: drive the session runtime from a capture instead of a
// live reader.
//
// A decoded capture (reports + delivery timing) is re-encoded to the exact
// LLRP wire image a reader would have produced -- the capture quantisation
// mirrors the wire codec bit for bit, so this is lossless -- and released
// against the polled clock at `speed`x the original pace.  Delivery
// timestamps, not reader timestamps, drive the release schedule: a stall's
// burst flush, a flood, or the silence of a disconnect replays with its
// original shape (compressed 1/speed), so the ingest queue and watchdogs
// see the same stress the live run saw.
//
// Many transports can share one ReplayStream (the fleet load generator
// fans a single capture across N sessions); the cursor and clock anchoring
// stay per-transport, so sessions connected at different times each get
// the full stream from its start.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "capture/format.hpp"
#include "core/errors.hpp"
#include "core/mem_env.hpp"
#include "runtime/transport.hpp"

namespace tagspin::capture {

/// A capture prepared for replay: the decoded reports, their LLRP wire
/// image, and per-frame release offsets (delivery time minus the first
/// delivery, seconds).  Immutable; share freely across transports.
struct ReplayStream {
  TimedStream timed;
  std::vector<uint8_t> wire;       // frame i at [i*40, (i+1)*40)
  std::vector<double> releaseS;    // sorted by construction order
  /// Byte accounting for the whole stream (reports + wire image + release
  /// schedule), released when the stream is destroyed.  Empty when the
  /// stream was built without an arena.
  core::MemReservation reservation;
};

/// Build a ReplayStream (encode once, share many).  Reports are released
/// in capture order; delivery offsets are taken relative to the first
/// report's delivery time.
std::shared_ptr<const ReplayStream> makeReplayStream(TimedStream timed);

/// Bytes makeReplayStreamBudgeted will charge for a capture of `reports`
/// reports: the retained TimedStream, the encoded wire image, and the
/// release schedule.
uint64_t replayStreamBytes(size_t reports);

/// Budgeted form of makeReplayStream: the full cost of the stream -- the
/// one unbounded buffer of the replay path, since the wire image is encoded
/// upfront -- is reserved against `arena` *before* encoding.  A denial
/// refuses the whole stream (kOutOfMemory; no partial image) so a fleet
/// fan-out under pressure loses one session's replay, not the process.
/// A null arena behaves exactly like makeReplayStream.
core::Result<std::shared_ptr<const ReplayStream>> makeReplayStreamBudgeted(
    TimedStream timed, core::MemArena* arena);

struct ReplayTransportConfig {
  /// Playback rate: 2.0 replays a 60 s capture in 30 s of tick time.
  /// Values <= 0 mean "as fast as possible" -- every remaining frame is
  /// delivered on the first poll (throughput benchmarking).
  double speed = 1.0;
  /// Time from a connect() attempt to an established connection.
  double connectDelayS = 0.0;
};

class ReplayTransport final : public runtime::Transport {
 public:
  ReplayTransport(std::shared_ptr<const ReplayStream> stream,
                  ReplayTransportConfig config = {});

  // runtime::Transport
  bool connect(double nowS) override;
  runtime::TransportRead poll(double nowS) override;
  void close() override;

  /// All frames delivered (the session will see kIdle forever after).
  bool exhausted() const { return nextFrame_ >= stream_->timed.size(); }
  size_t framesDelivered() const { return nextFrame_; }
  const ReplayStream& stream() const { return *stream_; }

 private:
  std::shared_ptr<const ReplayStream> stream_;
  ReplayTransportConfig config_;
  size_t nextFrame_ = 0;
  bool connected_ = false;
  double connectStartedS_ = -1.0;
  /// Tick time corresponding to release offset 0; anchored at the first
  /// successful connect so reconnects do not rewind the schedule.
  double epochS_ = 0.0;
  bool epochSet_ = false;
};

}  // namespace tagspin::capture
