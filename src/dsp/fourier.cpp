#include "dsp/fourier.hpp"

#include <cmath>
#include <stdexcept>

#include "dsp/linalg.hpp"

namespace tagspin::dsp {

double FourierSeries::evaluate(double x) const {
  double v = a0;
  for (size_t k = 1; k <= a.size(); ++k) {
    const double kx = static_cast<double>(k) * x;
    v += a[k - 1] * std::cos(kx) + b[k - 1] * std::sin(kx);
  }
  return v;
}

FourierSeries FourierSeries::referencedAt(double ref) const {
  FourierSeries out = *this;
  out.a0 -= evaluate(ref);
  return out;
}

FourierSeries fitFourier(std::span<const double> x, std::span<const double> y,
                         size_t order) {
  if (x.size() != y.size()) {
    throw std::invalid_argument("fitFourier: x/y size mismatch");
  }
  const size_t nparams = 2 * order + 1;
  if (x.size() < nparams) {
    throw std::invalid_argument("fitFourier: too few samples for order");
  }
  Matrix design(x.size(), nparams);
  std::vector<double> rhs(y.begin(), y.end());
  for (size_t r = 0; r < x.size(); ++r) {
    design(r, 0) = 1.0;
    for (size_t k = 1; k <= order; ++k) {
      const double kx = static_cast<double>(k) * x[r];
      design(r, 2 * k - 1) = std::cos(kx);
      design(r, 2 * k) = std::sin(kx);
    }
  }
  const auto sol = solveLeastSquares(design, rhs);
  if (!sol) throw std::runtime_error("fitFourier: rank-deficient design");
  FourierSeries s;
  s.a0 = (*sol)[0];
  s.a.resize(order);
  s.b.resize(order);
  for (size_t k = 1; k <= order; ++k) {
    s.a[k - 1] = (*sol)[2 * k - 1];
    s.b[k - 1] = (*sol)[2 * k];
  }
  return s;
}

double fitResidualRms(const FourierSeries& s, std::span<const double> x,
                      std::span<const double> y) {
  if (x.size() != y.size()) {
    throw std::invalid_argument("fitResidualRms: x/y size mismatch");
  }
  if (x.empty()) return 0.0;
  double ss = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    const double r = y[i] - s.evaluate(x[i]);
    ss += r * r;
  }
  return std::sqrt(ss / static_cast<double>(x.size()));
}

}  // namespace tagspin::dsp
