// Truncated Fourier series on the circle, and least-squares fitting.
//
// The paper's Observation 3.1: a tag's phase offset as a function of its
// orientation rho follows a stable pattern "which can be fitted by a Fourier
// transform function".  The calibration stage (section III-B, Step 1) samples
// (rho_i, theta_i) pairs with the tag at the disk center and fits this series.
#pragma once

#include <span>
#include <vector>

namespace tagspin::dsp {

/// g(x) = a0 + sum_{k=1..K} a_k cos(kx) + b_k sin(kx)
struct FourierSeries {
  double a0 = 0.0;
  std::vector<double> a;  // cosine coefficients, a[k-1] multiplies cos(kx)
  std::vector<double> b;  // sine coefficients, b[k-1] multiplies sin(kx)

  size_t order() const { return a.size(); }
  double evaluate(double x) const;

  /// Series with the constant shifted so that g(ref) == 0; used to express
  /// orientation offsets relative to the rho = pi/2 reference orientation.
  FourierSeries referencedAt(double ref) const;
};

/// Least-squares fit of a Fourier series of the given order to samples
/// (x_i, y_i).  x values may be arbitrary reals (interpreted on the circle).
/// Throws std::invalid_argument on size mismatch or too few samples
/// (need at least 2*order + 1); throws std::runtime_error if the design is
/// rank-deficient (e.g. all x identical).
FourierSeries fitFourier(std::span<const double> x, std::span<const double> y,
                         size_t order);

/// Root-mean-square residual of the fit over the given samples.
double fitResidualRms(const FourierSeries& s, std::span<const double> x,
                      std::span<const double> y);

}  // namespace tagspin::dsp
