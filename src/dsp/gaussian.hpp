// Gaussian density helpers used by the enhanced power profile (Defn. 4.1).
#pragma once

#include <cmath>
#include <numbers>

namespace tagspin::dsp {

/// Probability density of N(mu, sigma^2) at x.  sigma must be > 0.
inline double gaussianPdf(double x, double mu, double sigma) {
  const double z = (x - mu) / sigma;
  return std::exp(-0.5 * z * z) /
         (sigma * std::sqrt(2.0 * std::numbers::pi));
}

/// Density of a zero-mean Gaussian at x; the common case in R(phi) where the
/// wrapped residual is compared against N(0, sigma^2).
inline double gaussianPdf0(double x, double sigma) {
  return gaussianPdf(x, 0.0, sigma);
}

/// Standard normal CDF via erfc.
inline double gaussianCdf(double x, double mu, double sigma) {
  return 0.5 * std::erfc(-(x - mu) / (sigma * std::numbers::sqrt2));
}

}  // namespace tagspin::dsp
