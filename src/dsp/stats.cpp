#include "dsp/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tagspin::dsp {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double ss = 0.0;
  for (double x : xs) ss += (x - m) * (x - m);
  return std::sqrt(ss / static_cast<double>(xs.size() - 1));
}

double rms(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double ss = 0.0;
  for (double x : xs) ss += x * x;
  return std::sqrt(ss / static_cast<double>(xs.size()));
}

double minOf(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument("minOf: empty input");
  return *std::min_element(xs.begin(), xs.end());
}

double maxOf(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument("maxOf: empty input");
  return *std::max_element(xs.begin(), xs.end());
}

double percentile(std::span<const double> xs, double p) {
  if (xs.empty()) throw std::invalid_argument("percentile: empty input");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double clamped = std::clamp(p, 0.0, 100.0);
  const double pos = clamped / 100.0 * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(std::floor(pos));
  const size_t hi = static_cast<size_t>(std::ceil(pos));
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double median(std::span<const double> xs) { return percentile(xs, 50.0); }

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;
  s.mean = mean(xs);
  s.stddev = stddev(xs);
  s.min = minOf(xs);
  s.median = median(xs);
  s.p90 = percentile(xs, 90.0);
  s.max = maxOf(xs);
  return s;
}

double Ecdf::at(double x) const {
  const auto it = std::upper_bound(values.begin(), values.end(), x);
  if (it == values.begin()) return 0.0;
  const size_t idx = static_cast<size_t>(it - values.begin()) - 1;
  return probs[idx];
}

double Ecdf::quantile(double p) const {
  if (values.empty()) throw std::logic_error("Ecdf::quantile: empty CDF");
  const auto it = std::lower_bound(probs.begin(), probs.end(), p);
  if (it == probs.end()) return values.back();
  return values[static_cast<size_t>(it - probs.begin())];
}

Ecdf makeEcdf(std::span<const double> xs) {
  Ecdf e;
  e.values.assign(xs.begin(), xs.end());
  std::sort(e.values.begin(), e.values.end());
  e.probs.resize(e.values.size());
  const double n = static_cast<double>(e.values.size());
  for (size_t i = 0; i < e.values.size(); ++i) {
    e.probs[i] = static_cast<double>(i + 1) / n;
  }
  return e;
}

}  // namespace tagspin::dsp
