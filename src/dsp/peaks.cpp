#include "dsp/peaks.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tagspin::dsp {

size_t argmax(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument("argmax: empty input");
  return static_cast<size_t>(
      std::max_element(xs.begin(), xs.end()) - xs.begin());
}

double parabolicOffset(double left, double center, double right) {
  const double denom = left - 2.0 * center + right;
  if (denom == 0.0) return 0.0;
  const double off = 0.5 * (left - right) / denom;
  return std::clamp(off, -0.5, 0.5);
}

std::vector<Peak> findPeaks(std::span<const double> xs, bool circular,
                            size_t minSeparation, size_t maxCount) {
  const size_t n = xs.size();
  std::vector<Peak> candidates;
  if (n < 3) return candidates;
  auto at = [&](size_t i) { return xs[i % n]; };
  const size_t begin = circular ? 0 : 1;
  const size_t end = circular ? n : n - 1;
  for (size_t i = begin; i < end; ++i) {
    const double left = circular ? at(i + n - 1) : xs[i - 1];
    const double right = circular ? at(i + 1) : xs[i + 1];
    if (xs[i] > left && xs[i] > right) {
      Peak p;
      p.index = i;
      p.value = xs[i];
      p.refined = static_cast<double>(i) + parabolicOffset(left, xs[i], right);
      candidates.push_back(p);
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Peak& a, const Peak& b) { return a.value > b.value; });
  std::vector<Peak> selected;
  for (const Peak& c : candidates) {
    if (selected.size() >= maxCount) break;
    const bool tooClose = std::any_of(
        selected.begin(), selected.end(), [&](const Peak& s) {
          size_t d = c.index > s.index ? c.index - s.index : s.index - c.index;
          if (circular) d = std::min(d, n - d);
          return d < minSeparation;
        });
    if (!tooClose) selected.push_back(c);
  }
  return selected;
}

double halfPowerWidth(std::span<const double> xs, size_t index,
                      bool circular) {
  const size_t n = xs.size();
  if (n == 0) throw std::invalid_argument("halfPowerWidth: empty input");
  const double threshold = xs[index] / std::sqrt(2.0);
  auto at = [&](long i) {
    if (circular) return xs[static_cast<size_t>(((i % (long)n) + (long)n) % (long)n)];
    if (i < 0 || i >= static_cast<long>(n)) return -1.0;  // off the edge
    return xs[static_cast<size_t>(i)];
  };
  double width = 1.0;
  // Walk right.
  for (long i = static_cast<long>(index) + 1;
       i <= static_cast<long>(index + n); ++i) {
    if (at(i) < threshold) break;
    width += 1.0;
  }
  // Walk left.
  for (long i = static_cast<long>(index) - 1;
       i >= static_cast<long>(index) - static_cast<long>(n); --i) {
    if (at(i) < threshold) break;
    width += 1.0;
  }
  return std::min(width, static_cast<double>(n));
}

}  // namespace tagspin::dsp
