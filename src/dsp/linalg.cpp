#include "dsp/linalg.hpp"

#include <cmath>
#include <stdexcept>

namespace tagspin::dsp {

std::optional<std::vector<double>> solveLinear(Matrix a, std::vector<double> b,
                                               double pivotTol) {
  const size_t n = a.rows();
  if (a.cols() != n || b.size() != n) {
    throw std::invalid_argument("solveLinear: dimension mismatch");
  }
  for (size_t col = 0; col < n; ++col) {
    // Partial pivot.
    size_t pivot = col;
    double best = std::abs(a(col, col));
    for (size_t r = col + 1; r < n; ++r) {
      if (std::abs(a(r, col)) > best) {
        best = std::abs(a(r, col));
        pivot = r;
      }
    }
    if (best < pivotTol) return std::nullopt;
    if (pivot != col) {
      for (size_t c = 0; c < n; ++c) std::swap(a(pivot, c), a(col, c));
      std::swap(b[pivot], b[col]);
    }
    for (size_t r = col + 1; r < n; ++r) {
      const double factor = a(r, col) / a(col, col);
      if (factor == 0.0) continue;
      for (size_t c = col; c < n; ++c) a(r, c) -= factor * a(col, c);
      b[r] -= factor * b[col];
    }
  }
  std::vector<double> x(n, 0.0);
  for (size_t ri = n; ri-- > 0;) {
    double s = b[ri];
    for (size_t c = ri + 1; c < n; ++c) s -= a(ri, c) * x[c];
    x[ri] = s / a(ri, ri);
  }
  return x;
}

std::optional<std::vector<double>> solveLeastSquares(
    const Matrix& a, const std::vector<double>& b, double pivotTol) {
  const size_t m = a.rows();
  const size_t n = a.cols();
  if (b.size() != m) {
    throw std::invalid_argument("solveLeastSquares: dimension mismatch");
  }
  Matrix ata(n, n);
  std::vector<double> atb(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i; j < n; ++j) {
      double s = 0.0;
      for (size_t r = 0; r < m; ++r) s += a(r, i) * a(r, j);
      ata(i, j) = s;
      ata(j, i) = s;
    }
    double s = 0.0;
    for (size_t r = 0; r < m; ++r) s += a(r, i) * b[r];
    atb[i] = s;
  }
  return solveLinear(std::move(ata), std::move(atb), pivotTol);
}

}  // namespace tagspin::dsp
