// Grid-search maximisation on circular and rectangular domains.
//
// The angle spectrum is a smooth function of the candidate direction; the
// paper traverses "all possible angles" on a grid.  We provide the exhaustive
// traversal plus a coarse-to-fine refinement used by the perf ablation.
#pragma once

#include <cmath>
#include <concepts>
#include <numbers>
#include <vector>

namespace tagspin::dsp {

struct GridMax1D {
  double x = 0.0;      // argmax
  double value = 0.0;  // function value at argmax
};

struct GridMax2D {
  double x = 0.0;
  double y = 0.0;
  double value = 0.0;
};

/// Evaluate `f` at `n` uniformly spaced points on [0, 2*pi) and return the
/// sampled values (used to plot full profiles).
template <std::invocable<double> F>
std::vector<double> sampleCircular(F&& f, size_t n) {
  std::vector<double> out(n);
  const double step = 2.0 * std::numbers::pi / static_cast<double>(n);
  for (size_t i = 0; i < n; ++i) out[i] = f(static_cast<double>(i) * step);
  return out;
}

/// Exhaustive maximisation of `f` over [0, 2*pi) on an n-point grid followed
/// by `refineRounds` of local 3-point zooming (each round shrinks the bracket
/// by 4x around the best sample).
template <std::invocable<double> F>
GridMax1D maximizeCircular(F&& f, size_t n = 720, int refineRounds = 6) {
  const double twoPi = 2.0 * std::numbers::pi;
  const double step = twoPi / static_cast<double>(n);
  GridMax1D best{0.0, f(0.0)};
  for (size_t i = 1; i < n; ++i) {
    const double x = static_cast<double>(i) * step;
    const double v = f(x);
    if (v > best.value) best = {x, v};
  }
  double halfSpan = step;
  for (int round = 0; round < refineRounds; ++round) {
    const double candidates[4] = {best.x - halfSpan, best.x - halfSpan / 2.0,
                                  best.x + halfSpan / 2.0, best.x + halfSpan};
    for (double c : candidates) {
      const double v = f(c);
      if (v > best.value) best = {c, v};
    }
    halfSpan /= 2.0;
  }
  best.x = std::fmod(best.x + twoPi, twoPi);
  return best;
}

/// Maximisation over the rectangle [0, 2*pi) x [ymin, ymax] on an
/// (nx x ny) grid with local refinement; used for the (azimuth, polar)
/// spectrum of section V-B.
template <std::invocable<double, double> F>
GridMax2D maximizeRect(F&& f, double ymin, double ymax, size_t nx = 360,
                       size_t ny = 91, int refineRounds = 6) {
  const double twoPi = 2.0 * std::numbers::pi;
  const double xstep = twoPi / static_cast<double>(nx);
  const double ystep = ny > 1 ? (ymax - ymin) / static_cast<double>(ny - 1) : 0.0;
  GridMax2D best{0.0, ymin, f(0.0, ymin)};
  for (size_t i = 0; i < nx; ++i) {
    const double x = static_cast<double>(i) * xstep;
    for (size_t j = 0; j < ny; ++j) {
      const double y = ymin + static_cast<double>(j) * ystep;
      const double v = f(x, y);
      if (v > best.value) best = {x, y, v};
    }
  }
  double hx = xstep;
  double hy = std::max(ystep, 1e-6);
  for (int round = 0; round < refineRounds; ++round) {
    for (int dx = -2; dx <= 2; ++dx) {
      for (int dy = -2; dy <= 2; ++dy) {
        if (dx == 0 && dy == 0) continue;
        const double x = best.x + dx * hx / 2.0;
        double y = best.y + dy * hy / 2.0;
        if (y < ymin || y > ymax) continue;
        const double v = f(x, y);
        if (v > best.value) best = {x, y, v};
      }
    }
    hx /= 2.0;
    hy /= 2.0;
  }
  best.x = std::fmod(best.x + twoPi, twoPi);
  return best;
}

/// Two-stage coarse-to-fine circular maximisation: a coarse grid of
/// `nCoarse` points selects a bracket which is then searched with a dense
/// local grid.  Equivalent result to maximizeCircular for unimodal-enough
/// profiles at a fraction of the evaluations; benchmarked in perf_profiles.
template <std::invocable<double> F>
GridMax1D maximizeCircularCoarseFine(F&& f, size_t nCoarse = 90,
                                     size_t nFine = 64, int refineRounds = 4) {
  const double twoPi = 2.0 * std::numbers::pi;
  const double coarseStep = twoPi / static_cast<double>(nCoarse);
  GridMax1D best{0.0, f(0.0)};
  for (size_t i = 1; i < nCoarse; ++i) {
    const double x = static_cast<double>(i) * coarseStep;
    const double v = f(x);
    if (v > best.value) best = {x, v};
  }
  const double lo = best.x - coarseStep;
  const double fineStep = 2.0 * coarseStep / static_cast<double>(nFine);
  for (size_t i = 0; i <= nFine; ++i) {
    const double x = lo + static_cast<double>(i) * fineStep;
    const double v = f(x);
    if (v > best.value) best = {x, v};
  }
  double halfSpan = fineStep;
  for (int round = 0; round < refineRounds; ++round) {
    for (double c : {best.x - halfSpan, best.x + halfSpan}) {
      const double v = f(c);
      if (v > best.value) best = {c, v};
    }
    halfSpan /= 2.0;
  }
  best.x = std::fmod(best.x + twoPi, twoPi);
  return best;
}

}  // namespace tagspin::dsp
