// Peak finding on sampled (optionally circular) functions.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace tagspin::dsp {

struct Peak {
  size_t index = 0;      // sample index of the maximum
  double value = 0.0;    // sample value at the maximum
  double refined = 0.0;  // sub-bin position from parabolic interpolation,
                         // expressed in (possibly fractional) bins
};

/// Index of the global maximum.  Requires non-empty input.
size_t argmax(std::span<const double> xs);

/// Strict local maxima (greater than both neighbours), sorted by value
/// descending, keeping at most `maxCount` peaks separated by at least
/// `minSeparation` bins.  When `circular` is true the array wraps around.
std::vector<Peak> findPeaks(std::span<const double> xs, bool circular,
                            size_t minSeparation = 1, size_t maxCount = 16);

/// Three-point parabolic interpolation of a peak position around index i.
/// Returns the fractional bin offset in [-0.5, 0.5] to add to i.  Flat
/// neighbourhoods return 0.
double parabolicOffset(double left, double center, double right);

/// Half-power (-3 dB equivalent: value >= peak/sqrt(2)) width of the peak at
/// `index`, in bins, walking outward on an optionally circular array.  Used
/// to quantify how much sharper R(phi) is than Q(phi) (Fig. 6).
double halfPowerWidth(std::span<const double> xs, size_t index, bool circular);

}  // namespace tagspin::dsp
