// Minimal dense linear algebra: just enough to solve the small least-squares
// systems produced by Fourier fitting (normal equations of order ~2K+1).
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

namespace tagspin::dsp {

/// Row-major dense matrix.
class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double& operator()(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double operator()(size_t r, size_t c) const { return data_[r * cols_ + c]; }

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

/// Solve A x = b by Gaussian elimination with partial pivoting.  A must be
/// square with A.rows() == b.size().  Returns empty when A is singular to
/// within `pivotTol`.
std::optional<std::vector<double>> solveLinear(Matrix a, std::vector<double> b,
                                               double pivotTol = 1e-12);

/// Solve the linear least-squares problem min ||A x - b||_2 via the normal
/// equations (adequate for the small, well-conditioned systems used here).
std::optional<std::vector<double>> solveLeastSquares(const Matrix& a,
                                                     const std::vector<double>& b,
                                                     double pivotTol = 1e-12);

}  // namespace tagspin::dsp
