// Descriptive statistics and empirical CDFs.
#pragma once

#include <span>
#include <vector>

namespace tagspin::dsp {

double mean(std::span<const double> xs);

/// Sample standard deviation (n-1 denominator); 0 for fewer than 2 samples.
double stddev(std::span<const double> xs);

/// Population RMS.
double rms(std::span<const double> xs);

double minOf(std::span<const double> xs);
double maxOf(std::span<const double> xs);

/// Linear-interpolated percentile, p in [0, 100].  Requires non-empty input.
double percentile(std::span<const double> xs, double p);

double median(std::span<const double> xs);

/// Five-number style summary used by the evaluation reports.
struct Summary {
  size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double median = 0.0;
  double p90 = 0.0;
  double max = 0.0;
};

Summary summarize(std::span<const double> xs);

/// Empirical CDF: sorted values paired with cumulative probabilities
/// i/n for i = 1..n.
struct Ecdf {
  std::vector<double> values;  // ascending
  std::vector<double> probs;   // matching cumulative probability

  /// P(X <= x); 0 for x below the smallest sample.
  double at(double x) const;
  /// Smallest sample value v with P(X <= v) >= p.
  double quantile(double p) const;
};

Ecdf makeEcdf(std::span<const double> xs);

}  // namespace tagspin::dsp
