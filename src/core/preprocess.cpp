#include "core/preprocess.hpp"

#include <algorithm>
#include <stdexcept>

#include "geom/angles.hpp"

namespace tagspin::core {

std::vector<Snapshot> extractSnapshots(const rfid::ReportStream& reports,
                                       const rfid::Epc& epc,
                                       const PreprocessConfig& config) {
  std::vector<Snapshot> snaps;
  for (const rfid::TagReport& r : reports) {
    if (!(r.epc == epc)) continue;
    if (r.rssiDbm < config.minRssiDbm) continue;
    Snapshot s;
    s.timeS = r.timestampS;
    s.phaseRad = geom::wrapTwoPi(r.phaseRad);
    s.lambdaM = r.wavelengthM();
    s.channel = r.channelIndex;
    s.rssiDbm = r.rssiDbm;
    snaps.push_back(s);
  }
  if (snaps.empty()) {
    throw std::invalid_argument(
        "extractSnapshots: no usable reports for EPC " + epc.toHex());
  }
  std::sort(snaps.begin(), snaps.end(),
            [](const Snapshot& a, const Snapshot& b) {
              return a.timeS < b.timeS;
            });
  if (config.maxSnapshots > 0 && snaps.size() > config.maxSnapshots) {
    std::vector<Snapshot> kept;
    kept.reserve(config.maxSnapshots);
    const double step = static_cast<double>(snaps.size()) /
                        static_cast<double>(config.maxSnapshots);
    for (size_t i = 0; i < config.maxSnapshots; ++i) {
      kept.push_back(snaps[static_cast<size_t>(i * step)]);
    }
    snaps = std::move(kept);
  }
  return snaps;
}

std::vector<double> smoothedPhases(const std::vector<Snapshot>& snaps) {
  std::vector<double> wrapped;
  wrapped.reserve(snaps.size());
  for (const Snapshot& s : snaps) wrapped.push_back(s.phaseRad);
  return geom::smoothPhasesPaperRule(wrapped);
}

std::vector<double> samplingDensity(const std::vector<Snapshot>& snaps,
                                    double windowS) {
  std::vector<double> density(snaps.size(), 0.0);
  if (snaps.empty() || windowS <= 0.0) return density;
  size_t lo = 0;
  size_t hi = 0;
  for (size_t i = 0; i < snaps.size(); ++i) {
    const double t = snaps[i].timeS;
    while (lo < snaps.size() && snaps[lo].timeS < t - windowS / 2.0) ++lo;
    while (hi < snaps.size() && snaps[hi].timeS <= t + windowS / 2.0) ++hi;
    density[i] = static_cast<double>(hi - lo) / windowS;
  }
  return density;
}

}  // namespace tagspin::core
