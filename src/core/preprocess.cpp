#include "core/preprocess.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

#include "geom/angles.hpp"

namespace tagspin::core {

namespace {

/// Collect + RSSI-gate + sort: the shared head of the strict and robust
/// extraction paths.  `matched` counts reports of the EPC before gating.
std::vector<Snapshot> collectSorted(const rfid::ReportStream& reports,
                                    const rfid::Epc& epc,
                                    const PreprocessConfig& config,
                                    size_t* matched) {
  std::vector<Snapshot> snaps;
  size_t seen = 0;
  for (const rfid::TagReport& r : reports) {
    if (!(r.epc == epc)) continue;
    ++seen;
    if (r.rssiDbm < config.minRssiDbm) continue;
    // A report without a carrier frequency has no wavelength; treat it as
    // unusable rather than letting wavelengthM() throw mid-extraction.
    if (r.frequencyHz <= 0.0) continue;
    Snapshot s;
    s.timeS = r.timestampS;
    s.phaseRad = geom::wrapTwoPi(r.phaseRad);
    s.lambdaM = r.wavelengthM();
    s.channel = r.channelIndex;
    s.rssiDbm = r.rssiDbm;
    snaps.push_back(s);
  }
  if (matched) *matched = seen;
  std::sort(snaps.begin(), snaps.end(),
            [](const Snapshot& a, const Snapshot& b) {
              return a.timeS < b.timeS;
            });
  return snaps;
}

std::string noReportsMessage(const rfid::Epc& epc, size_t streamSize,
                             size_t matched) {
  return "no usable reports for EPC " + epc.toHex() + " in a stream of " +
         std::to_string(streamSize) + " reports (" + std::to_string(matched) +
         " matched the EPC" +
         (matched > 0 ? ", all below the RSSI floor)" : ")");
}

void subsample(std::vector<Snapshot>& snaps, size_t maxSnapshots) {
  if (maxSnapshots == 0 || snaps.size() <= maxSnapshots) return;
  std::vector<Snapshot> kept;
  kept.reserve(maxSnapshots);
  const double step = static_cast<double>(snaps.size()) /
                      static_cast<double>(maxSnapshots);
  for (size_t i = 0; i < maxSnapshots; ++i) {
    kept.push_back(snaps[static_cast<size_t>(i * step)]);
  }
  snaps = std::move(kept);
}

/// Drop reads temporally isolated from both neighbours -- the signature of
/// a glitched timestamp that sorting has relocated into no-man's-land.
/// Legitimate gaps (dropout windows) separate two dense blocks: the reads at
/// the block edges stay close to their inward neighbour and survive.
std::vector<Snapshot> dropTimeOutliers(std::vector<Snapshot> snaps,
                                       double gapFactor, double gapFloorS,
                                       size_t* dropped) {
  if (snaps.size() < 3) return snaps;
  std::vector<double> steps;
  steps.reserve(snaps.size() - 1);
  for (size_t i = 1; i < snaps.size(); ++i) {
    steps.push_back(snaps[i].timeS - snaps[i - 1].timeS);
  }
  std::nth_element(steps.begin(), steps.begin() + steps.size() / 2,
                   steps.end());
  const double medianStep = steps[steps.size() / 2];
  const double limit = std::max(gapFloorS, gapFactor * medianStep);

  std::vector<Snapshot> kept;
  kept.reserve(snaps.size());
  for (size_t i = 0; i < snaps.size(); ++i) {
    const double before =
        i > 0 ? snaps[i].timeS - snaps[i - 1].timeS
              : std::numeric_limits<double>::infinity();
    const double after =
        i + 1 < snaps.size() ? snaps[i + 1].timeS - snaps[i].timeS
                             : std::numeric_limits<double>::infinity();
    if (std::min(before, after) > limit) {
      if (dropped) ++*dropped;
      continue;
    }
    kept.push_back(snaps[i]);
  }
  return kept;
}

}  // namespace

std::vector<Snapshot> extractSnapshots(const rfid::ReportStream& reports,
                                       const rfid::Epc& epc,
                                       const PreprocessConfig& config) {
  size_t matched = 0;
  std::vector<Snapshot> snaps = collectSorted(reports, epc, config, &matched);
  if (snaps.empty()) {
    throw std::invalid_argument(
        "extractSnapshots: " + noReportsMessage(epc, reports.size(), matched));
  }
  subsample(snaps, config.maxSnapshots);
  return snaps;
}

std::vector<Snapshot> hampelFilterPhases(const std::vector<Snapshot>& snaps,
                                         size_t window, double threshold,
                                         double floorRad, size_t* dropped) {
  if (snaps.size() < 5 || window < 3) return snaps;
  const size_t half = window / 2;
  std::vector<Snapshot> kept;
  kept.reserve(snaps.size());
  std::vector<double> devs;
  std::vector<double> absdevs;
  for (size_t i = 0; i < snaps.size(); ++i) {
    // Edge samples only have a one-sided neighbourhood, where a genuine
    // phase slope shifts the median deviation off zero while the MAD stays
    // small -- a false rejection.  Without a symmetric window the test
    // cannot tell slope from outlier, so edge samples are always kept.
    if (i < half || i + half + 1 > snaps.size()) {
      kept.push_back(snaps[i]);
      continue;
    }
    const size_t lo = i - half;
    const size_t hi = i + half + 1;
    devs.clear();
    for (size_t j = lo; j < hi; ++j) {
      if (j == i) continue;
      devs.push_back(geom::circularDiff(snaps[j].phaseRad, snaps[i].phaseRad));
    }
    // Median deviation of the neighbourhood from this sample: for an inlier
    // it sits near 0; for an outlier it equals (minus) the outlier's error.
    std::nth_element(devs.begin(), devs.begin() + devs.size() / 2, devs.end());
    const double med = devs[devs.size() / 2];
    absdevs.clear();
    for (double d : devs) absdevs.push_back(std::abs(d - med));
    std::nth_element(absdevs.begin(), absdevs.begin() + absdevs.size() / 2,
                     absdevs.end());
    const double madSigma = 1.4826 * absdevs[absdevs.size() / 2];
    const double limit = std::max(floorRad, threshold * madSigma);
    if (std::abs(med) > limit) {
      if (dropped) ++*dropped;
      continue;
    }
    kept.push_back(snaps[i]);
  }
  return kept;
}

Result<std::vector<Snapshot>> extractSnapshotsRobust(
    const rfid::ReportStream& reports, const rfid::Epc& epc,
    const PreprocessConfig& config, RepairStats* repairs) {
  size_t matched = 0;
  std::vector<Snapshot> snaps = collectSorted(reports, epc, config, &matched);
  if (snaps.empty()) {
    return Error{ErrorCode::kNoReports,
                 "extractSnapshotsRobust: " +
                     noReportsMessage(epc, reports.size(), matched)};
  }
  RepairStats local;
  RepairStats* st = repairs ? repairs : &local;

  if (config.dedupe) {
    std::vector<Snapshot> unique;
    unique.reserve(snaps.size());
    for (const Snapshot& s : snaps) {
      if (!unique.empty() && unique.back().timeS == s.timeS &&
          unique.back().phaseRad == s.phaseRad &&
          unique.back().channel == s.channel) {
        ++st->duplicatesRemoved;
        continue;
      }
      unique.push_back(s);
    }
    snaps = std::move(unique);
  }
  if (config.repairTimestamps) {
    snaps = dropTimeOutliers(std::move(snaps), config.timestampGapFactor,
                             config.timestampGapFloorS,
                             &st->timestampOutliersDropped);
  }
  if (config.hampelFilter) {
    snaps = hampelFilterPhases(snaps, config.hampelWindow,
                               config.hampelThreshold, config.hampelFloorRad,
                               &st->phaseOutliersDropped);
  }
  if (snaps.empty()) {
    return Error{ErrorCode::kNoReports,
                 "extractSnapshotsRobust: every report of EPC " +
                     epc.toHex() + " was rejected by the repair stages"};
  }
  subsample(snaps, config.maxSnapshots);
  return snaps;
}

std::vector<double> smoothedPhases(const std::vector<Snapshot>& snaps) {
  std::vector<double> wrapped;
  wrapped.reserve(snaps.size());
  for (const Snapshot& s : snaps) wrapped.push_back(s.phaseRad);
  return geom::smoothPhasesPaperRule(wrapped);
}

std::vector<double> samplingDensity(const std::vector<Snapshot>& snaps,
                                    double windowS) {
  std::vector<double> density(snaps.size(), 0.0);
  if (snaps.empty() || windowS <= 0.0) return density;
  size_t lo = 0;
  size_t hi = 0;
  for (size_t i = 0; i < snaps.size(); ++i) {
    const double t = snaps[i].timeS;
    while (lo < snaps.size() && snaps[lo].timeS < t - windowS / 2.0) ++lo;
    while (hi < snaps.size() && snaps[hi].timeS <= t + windowS / 2.0) ++hi;
    density[i] = static_cast<double>(hi - lo) / windowS;
  }
  return density;
}

}  // namespace tagspin::core
