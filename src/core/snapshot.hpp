// Core input types: signal snapshots and the rig description known to the
// localization server.
//
// The server (paper section II) stores each spinning tag's center location,
// disk radius, angular speed and phase reference; the reader streams LLRP
// reports.  Everything the algorithms consume is reduced to Snapshot --
// deliberately free of simulator types so the core library could ingest a
// real reader trace unchanged.
#pragma once

#include <vector>

#include "geom/vec.hpp"

namespace tagspin::core {

/// One phase measurement of one spinning tag.
struct Snapshot {
  double timeS = 0.0;     // reader-clock timestamp
  double phaseRad = 0.0;  // wrapped to [0, 2*pi)
  double lambdaM = 0.0;   // carrier wavelength of this read
  int channel = 0;        // channel index (groups reads of equal lambda)
  double rssiDbm = 0.0;
};

/// Kinematics of a spinning rig as registered with the server.
struct RigKinematics {
  double radiusM = 0.10;
  double omegaRadPerS = 0.5;
  /// Disk angle at t = 0, so the tag's position angle is
  /// a(t) = omega*t + initialAngle.
  double initialAngle = 0.0;
  /// Mounting offset of the tag plane vs. the radial direction (pi/2 =
  /// tangential); needed to convert disk angle to orientation rho.
  double tagPlaneOffset = 1.5707963267948966;

  double diskAngle(double t) const {
    return omegaRadPerS * t + initialAngle;
  }
};

/// A rig as registered with the localization server: kinematics plus the
/// world position of the disk center.
struct RigSpec {
  geom::Vec3 center;
  RigKinematics kinematics;
};

}  // namespace tagspin::core
