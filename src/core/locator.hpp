// Reader localization from multiple spinning-tag angle spectra
// (paper section V).
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/errors.hpp"
#include "core/orientation_calibration.hpp"
#include "core/quality.hpp"
#include "core/snapshot.hpp"
#include "core/spectrum.hpp"
#include "geom/ray.hpp"
#include "obs/metrics.hpp"
#include "robust/bootstrap.hpp"
#include "robust/consensus.hpp"
#include "robust/spectrum_diag.hpp"

namespace tagspin::core {

/// A rig's observations for one localization attempt.  `orientation` is the
/// phase-orientation model of the specific tag on this rig (identity when
/// no calibration prelude was run for it).
struct RigObservation {
  RigSpec rig;
  std::vector<Snapshot> snapshots;
  OrientationModel orientation;
};

/// Per-rig direction estimate produced on the way to a fix.
struct RigDirection {
  double azimuth = 0.0;
  double polar = 0.0;       // |gamma|; 0 in pure 2D runs
  double peakValue = 0.0;   // profile value at the peak (confidence)
};

/// Robust-estimation audit trail attached to every fix.  All per-ray
/// vectors are parallel to `fix.directions` (the rigs that produced the
/// fix, in input order).
struct EstimationDiagnostics {
  /// Spin self-diagnosis per rig (empty when diagnostics are disabled).
  std::vector<robust::SpinDiagnostics> spins;
  /// True when the fix came from consensus voting + IRLS rather than the
  /// plain (two-ray / least-squares) intersection.
  bool consensusUsed = false;
  /// Fraction of rigs whose chosen ray passes within the inlier threshold
  /// of the fix; 1.0 on the non-consensus path.
  double inlierFraction = 1.0;
  std::vector<bool> inliers;  // empty unless consensusUsed
  /// Ray parameter of the fix along each rig's (chosen) bearing ray;
  /// negative = the fix sits behind that rig, a physically impossible
  /// bearing that indicates a mirror/ghost peak.
  std::vector<double> rayT;
  size_t behindOriginRays = 0;
  /// Bootstrap confidence region (set when RobustEstimationConfig::
  /// bootstrap is enabled and enough replicates converged).
  std::optional<robust::ConfidenceEllipse> ellipse;
};

struct Fix2D {
  geom::Vec2 position;
  std::vector<RigDirection> directions;
  /// RMS perpendicular distance of the fix to the rig rays -- a consistency
  /// diagnostic (meaningful for >= 3 rigs; ~0 for exactly 2).
  double residualM = 0.0;
  EstimationDiagnostics estimation;
};

struct Fix3D {
  geom::Vec3 position;
  /// The mirror candidate (z negated) when ZResolution::kBoth is selected.
  std::optional<geom::Vec3> mirrorCandidate;
  std::vector<RigDirection> directions;
  double residualM = 0.0;
  EstimationDiagnostics estimation;
};

/// How much the resilient path had to give up to produce a fix.
enum class FixGrade {
  kFull,      // every offered rig was healthy and used
  kDegraded,  // >= 2 healthy rigs, but unhealthy ones were dropped
  kMinimal,   // fewer than 2 healthy rigs; best-effort 2-rig fallback
};
const char* fixGradeName(FixGrade grade);

/// Degradation audit trail attached to a resilient fix.  Indices refer to
/// the observation span passed to tryLocate2D/3D; `fix.directions` is
/// parallel to `usedRigs`, not to the input.
struct ResilienceReport {
  FixGrade grade = FixGrade::kFull;
  /// fixConfidence() of the used rigs, scaled down by the grade (x1 full,
  /// x0.7 degraded, x0.4 minimal) -- the explicit confidence downgrade.
  double confidence = 0.0;
  std::vector<RigHealth> rigHealth;  // parallel to the input observations
  std::vector<size_t> usedRigs;
  std::vector<size_t> droppedRigs;
  std::vector<std::string> droppedReasons;  // parallel to droppedRigs
};

struct ResilientFix2D {
  Fix2D fix;
  ResilienceReport report;
};

struct ResilientFix3D {
  Fix3D fix;
  ResilienceReport report;
};

class Locator {
 public:
  explicit Locator(LocatorConfig config = {});

  const LocatorConfig& config() const { return config_; }

  /// Wire (or unwire, with null) the locator's telemetry: locator.*
  /// counters (attempts, grades, fallbacks, dropped rigs) and the
  /// span.profile_eval / span.spectrum_search / span.fix2d / span.fix3d
  /// latency histograms.  Handles resolve once here; the estimation hot
  /// path never touches the registry's lock.
  void setMetrics(obs::MetricsRegistry* registry);

  /// Azimuth spectrum of a single rig, with iterative orientation
  /// calibration when a model is installed.
  RigDirection estimateDirection2D(const RigObservation& obs) const;

  /// (azimuth, polar) spectrum of a single rig, 3D.
  RigDirection estimateDirection3D(const RigObservation& obs) const;

  /// 2D fix from >= 2 horizontal rigs (Eqn. 9 for two rigs via the robust
  /// equivalent; least squares for more).  Throws std::invalid_argument on
  /// fewer than 2 rigs; std::runtime_error when all rays are parallel.
  Fix2D locate2D(std::span<const RigObservation> observations) const;

  /// 3D fix from >= 2 horizontal rigs: x, y from azimuths (Eqn. 9), |z|
  /// from the polar angles (Eqn. 13a/13b balanced by peak confidence),
  /// sign from config().zResolution.
  Fix3D locate3D(std::span<const RigObservation> observations) const;

  /// Graceful-degradation variants: assess every rig's health, drop rigs
  /// below `thresholds`, fall back to the best-scoring pair when fewer than
  /// two healthy rigs remain, and report failure causes via ErrorCode
  /// instead of throwing.  When every rig is healthy the fix is bit-identical
  /// to locate2D/3D on the same observations.
  Result<ResilientFix2D> tryLocate2D(
      std::span<const RigObservation> observations,
      const RigHealthThresholds& thresholds = {}) const;
  Result<ResilientFix3D> tryLocate3D(
      std::span<const RigObservation> observations,
      const RigHealthThresholds& thresholds = {}) const;

  /// Future-work extension: use a *vertically* spinning rig to resolve the
  /// +-z ambiguity -- evaluates the vertical rig's profile at the exact
  /// direction each candidate predicts and keeps the stronger one.
  geom::Vec3 disambiguateZ(const RigObservation& verticalRig,
                           const geom::Vec3& candidateA,
                           const geom::Vec3& candidateB) const;

 private:
  struct Instruments {
    obs::Counter* fix2dAttempts = nullptr;
    obs::Counter* fix2dOk = nullptr;
    obs::Counter* fix3dAttempts = nullptr;
    obs::Counter* fix3dOk = nullptr;
    obs::Counter* fallbackMinimal = nullptr;
    obs::Counter* degraded = nullptr;
    obs::Counter* confidenceDowngrades = nullptr;
    obs::Counter* rigsDropped = nullptr;
    obs::Counter* quarantinedSpins = nullptr;   // robust.quarantined_spins
    obs::Counter* suspectSpins = nullptr;       // robust.suspect_spins
    obs::Counter* behindOriginRays = nullptr;   // robust.behind_origin_rays
    obs::Counter* consensusFixes = nullptr;     // robust.consensus_fixes
    obs::Counter* bootstrapRuns = nullptr;      // robust.bootstrap_runs
    obs::Gauge* inlierFraction = nullptr;       // robust.inlier_fraction
    obs::Gauge* ellipseAreaCm2 = nullptr;       // robust.ellipse_area_cm2
    obs::Histogram* profileEval = nullptr;     // span.profile_eval
    obs::Histogram* spectrumSearch = nullptr;  // span.spectrum_search
    obs::Histogram* fix2d = nullptr;           // span.fix2d
    obs::Histogram* fix3d = nullptr;           // span.fix3d
    static Instruments resolve(obs::MetricsRegistry* registry);
  };

  /// A rig's bearing with its robust-estimation context: every candidate
  /// direction the spectrum supports (main first) plus the spin verdict.
  struct RigBearing {
    std::vector<robust::BearingCandidate> candidates;
    robust::SpinDiagnostics spin;
  };

  std::vector<Snapshot> calibrated(const RigObservation& obs,
                                   double azimuthEstimate) const;
  /// Profile build for one rig, timed under span.profile_eval.
  PowerProfile timedProfile(const std::vector<Snapshot>& snaps,
                            const RigSpec& rig,
                            const ProfileConfig& cfg) const;
  /// Profile build + azimuth (or spatial) search for one rig, timed under
  /// span.profile_eval / span.spectrum_search.
  AzimuthEstimate timedAzimuth(const std::vector<Snapshot>& snaps,
                               const RigSpec& rig,
                               const ProfileConfig& cfg) const;
  SpatialEstimate timedSpatial(const std::vector<Snapshot>& snaps,
                               const RigSpec& rig,
                               const ProfileConfig& cfg) const;
  /// Spin diagnosis + candidate extraction for an already-searched profile
  /// (no-op single-candidate bearing when diagnostics are disabled).
  RigBearing diagnoseBearing(const PowerProfile& profile, double azimuth,
                             double value, double gamma) const;
  /// Intersect the (possibly multi-candidate) bearings: consensus voting
  /// for >= 3 rays when enabled, exact two-ray / detailed least squares
  /// otherwise.  Updates `directions` to the chosen candidates and fills
  /// the per-ray fields of `estimation`.  Throws std::runtime_error on
  /// degenerate (all-parallel) geometry, like the legacy path.
  geom::Vec2 intersectBearings(std::span<const RigObservation> observations,
                               std::span<const RigBearing> bearings,
                               std::span<RigDirection> directions,
                               EstimationDiagnostics& estimation,
                               double* residualOut) const;
  /// Bootstrap confidence ellipse around a finished xy fix.
  std::optional<robust::ConfidenceEllipse> bootstrapEllipse2D(
      std::span<const RigObservation> observations,
      std::span<const RigDirection> directions,
      const geom::Vec2& position) const;
  void noteResilientOutcome(const ResilienceReport& report) const;
  void noteEstimationOutcome(const EstimationDiagnostics& estimation) const;

  LocatorConfig config_;
  Instruments obs_;
};

}  // namespace tagspin::core
