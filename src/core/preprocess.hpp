// Report-stream preprocessing: reports -> snapshots, plus the phase-sequence
// smoothing of paper section III-B used for inspection and Fig. 3/4.
#pragma once

#include <vector>

#include "core/errors.hpp"
#include "core/snapshot.hpp"
#include "rfid/epc.hpp"
#include "rfid/report.hpp"

namespace tagspin::core {

struct PreprocessConfig {
  /// Drop reads weaker than this (spurious reads through the back lobe).
  double minRssiDbm = -90.0;
  /// Keep at most this many snapshots (0 = unlimited); evenly subsampled to
  /// bound spectrum cost for very long interrogations.  4000 snapshots keep
  /// the subsampling penalty negligible at the default 30 s interrogation.
  size_t maxSnapshots = 4000;

  // --- robust-ingestion stages, used only by extractSnapshotsRobust ---
  /// Remove exact duplicate reads (reader retransmits): same timestamp,
  /// phase and channel after sorting.
  bool dedupe = true;
  /// Drop reads whose timestamp is isolated from the rest of the trace
  /// (clock glitches that survive sorting); a read is isolated when its
  /// nearest temporal neighbour is further than
  /// max(timestampGapFloorS, timestampGapFactor * median step) away.
  bool repairTimestamps = true;
  double timestampGapFactor = 50.0;
  double timestampGapFloorS = 0.5;
  /// Hampel/MAD filter on the wrapped phase sequence ahead of unwrapping:
  /// a read whose phase deviates from the windowed circular median by more
  /// than hampelThreshold MAD-sigmas is discarded as an interference
  /// outlier.
  bool hampelFilter = true;
  size_t hampelWindow = 11;      // total window size, odd
  double hampelThreshold = 6.0;  // in 1.4826*MAD units
  /// Deviation floor (radians) so a near-zero MAD (repeated quantised
  /// phases) cannot reject healthy reads.
  double hampelFloorRad = 0.05;
};

/// What the robust extraction repaired (diagnostics / chaos reporting).
struct RepairStats {
  size_t duplicatesRemoved = 0;
  size_t timestampOutliersDropped = 0;
  size_t phaseOutliersDropped = 0;
};

/// Extract the snapshots of one tag (by EPC) from a report stream, sorted by
/// time.  Throws std::invalid_argument if the stream contains no usable
/// report for the EPC.
std::vector<Snapshot> extractSnapshots(const rfid::ReportStream& reports,
                                       const rfid::Epc& epc,
                                       const PreprocessConfig& config = {});

/// Non-throwing, hardened variant of extractSnapshots: applies the robust
/// stages enabled in `config` (dedup -> timestamp repair -> Hampel phase
/// filter) after sorting and before subsampling.  On a clean stream with no
/// duplicates, glitches or phase outliers the result is bit-identical to
/// extractSnapshots.  Errors (no usable reports, everything filtered away)
/// come back as ErrorCode, never as an exception.
Result<std::vector<Snapshot>> extractSnapshotsRobust(
    const rfid::ReportStream& reports, const rfid::Epc& epc,
    const PreprocessConfig& config = {}, RepairStats* repairs = nullptr);

/// The Hampel/MAD stage alone, exposed for tests: returns the snapshots
/// whose wrapped phase survives the windowed circular-median test.
std::vector<Snapshot> hampelFilterPhases(const std::vector<Snapshot>& snaps,
                                         size_t window, double threshold,
                                         double floorRad,
                                         size_t* dropped = nullptr);

/// Unwrapped ("smoothed", section III-B) phase sequence of the snapshots.
std::vector<double> smoothedPhases(const std::vector<Snapshot>& snaps);

/// Sampling density (reads per second) estimated over sliding windows; used
/// to reproduce the segment-A/B/C density observation of Fig. 4(b).
std::vector<double> samplingDensity(const std::vector<Snapshot>& snaps,
                                    double windowS);

}  // namespace tagspin::core
