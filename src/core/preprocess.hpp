// Report-stream preprocessing: reports -> snapshots, plus the phase-sequence
// smoothing of paper section III-B used for inspection and Fig. 3/4.
#pragma once

#include <vector>

#include "core/snapshot.hpp"
#include "rfid/epc.hpp"
#include "rfid/report.hpp"

namespace tagspin::core {

struct PreprocessConfig {
  /// Drop reads weaker than this (spurious reads through the back lobe).
  double minRssiDbm = -90.0;
  /// Keep at most this many snapshots (0 = unlimited); evenly subsampled to
  /// bound spectrum cost for very long interrogations.  4000 snapshots keep
  /// the subsampling penalty negligible at the default 30 s interrogation.
  size_t maxSnapshots = 4000;
};

/// Extract the snapshots of one tag (by EPC) from a report stream, sorted by
/// time.  Throws std::invalid_argument if the stream contains no usable
/// report for the EPC.
std::vector<Snapshot> extractSnapshots(const rfid::ReportStream& reports,
                                       const rfid::Epc& epc,
                                       const PreprocessConfig& config = {});

/// Unwrapped ("smoothed", section III-B) phase sequence of the snapshots.
std::vector<double> smoothedPhases(const std::vector<Snapshot>& snaps);

/// Sampling density (reads per second) estimated over sliding windows; used
/// to reproduce the segment-A/B/C density observation of Fig. 4(b).
std::vector<double> samplingDensity(const std::vector<Snapshot>& snaps,
                                    double windowS);

}  // namespace tagspin::core
