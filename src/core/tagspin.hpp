// TagspinSystem -- the central localization server (paper section II).
//
// Owns the registry of deployed spinning tags (EPC -> rig geometry), the
// per-tag-model orientation models obtained from the calibration prelude,
// and turns raw LLRP report streams into reader-antenna fixes.
//
// Typical use:
//
//   TagspinSystem server;
//   server.registerRig(epc1, rig1);
//   server.registerRig(epc2, rig2);
//   server.setOrientationModel(model);            // optional but recommended
//   auto fix = server.locate2D(reports);          // reports: one antenna
//
#pragma once

#include <map>
#include <optional>

#include "core/locator.hpp"
#include "core/preprocess.hpp"
#include "rfid/report.hpp"

namespace tagspin::core {

class TagspinSystem {
 public:
  explicit TagspinSystem(LocatorConfig config = {});

  /// Register a horizontally spinning tag.  Re-registering an EPC replaces
  /// its rig spec.
  void registerRig(const rfid::Epc& epc, const RigSpec& rig);

  /// Register a vertically spinning tag (x-z rotation plane); used only for
  /// +-z disambiguation, never for the planar fix.
  void registerVerticalRig(const rfid::Epc& epc, const RigSpec& rig);

  /// Install the orientation model of a specific tag (from its calibration
  /// prelude).  Rigs without a model use the identity (no correction).
  void setOrientationModel(const rfid::Epc& epc, OrientationModel model);
  void setPreprocessConfig(const PreprocessConfig& config);

  size_t rigCount() const { return rigs_.size(); }
  const Locator& locator() const { return locator_; }

  /// Run the orientation-calibration prelude (section III-B Step 1) from a
  /// center-spin trace: the tag sits at the center of `rig` and the reader
  /// is at the surveyed position `knownReaderPos`.
  OrientationModel calibrateOrientation(const rfid::ReportStream& reports,
                                        const rfid::Epc& epc,
                                        const RigSpec& rig,
                                        const geom::Vec3& knownReaderPos,
                                        size_t order = 4) const;

  /// Locate the reader antenna that produced `reports` (reports must come
  /// from a single antenna port; pass through rfid::filterByAntenna first
  /// for multi-port streams).  Uses every registered horizontal rig that
  /// appears in the stream.  Throws std::runtime_error when fewer than two
  /// registered rigs were heard.
  Fix2D locate2D(const rfid::ReportStream& reports) const;
  Fix3D locate3D(const rfid::ReportStream& reports) const;

  /// Graceful-degradation entry points for dirty streams: snapshots are
  /// extracted through the robust preprocess stages (dedup, timestamp
  /// repair, Hampel phase filter), unhealthy rigs are dropped with a 2-rig
  /// fallback, and every failure cause is reported as an ErrorCode instead
  /// of an exception.  On a clean stream the fix is bit-identical to
  /// locate2D/3D.
  Result<ResilientFix2D> tryLocate2D(const rfid::ReportStream& reports) const;
  Result<ResilientFix3D> tryLocate3D(const rfid::ReportStream& reports) const;

  /// Health thresholds used by tryLocate2D/3D.
  void setHealthThresholds(const RigHealthThresholds& thresholds);
  const RigHealthThresholds& healthThresholds() const {
    return healthThresholds_;
  }

  /// Wire (or unwire, with null) telemetry: forwards to the locator and
  /// publishes the robust preprocess repairs (preprocess.* counters,
  /// span.preprocess) from collectObservationsRobust.
  void setMetrics(obs::MetricsRegistry* registry);

  /// Calibrate every antenna port present in a mixed multi-port stream
  /// (a Speedway-class reader cycles its ports): splits by port and locates
  /// each.  Ports whose slice cannot produce a fix (fewer than two rigs
  /// heard) are omitted from the result.
  std::map<int, Fix2D> locateAllAntennas2D(
      const rfid::ReportStream& reports) const;
  std::map<int, Fix3D> locateAllAntennas3D(
      const rfid::ReportStream& reports) const;

  /// Build the per-rig observations from a stream (exposed for diagnostics
  /// and the figure benches).
  std::vector<RigObservation> collectObservations(
      const rfid::ReportStream& reports) const;

  /// Robust-preprocess variant of collectObservations (never throws).
  std::vector<RigObservation> collectObservationsRobust(
      const rfid::ReportStream& reports) const;

 private:
  struct Instruments {
    obs::Counter* duplicatesRemoved = nullptr;
    obs::Counter* timestampRepairs = nullptr;
    obs::Counter* phaseOutliersDropped = nullptr;
    obs::Histogram* preprocessSpan = nullptr;  // span.preprocess
    static Instruments resolve(obs::MetricsRegistry* registry);
  };

  Locator locator_;
  PreprocessConfig preprocess_;
  RigHealthThresholds healthThresholds_;
  std::map<rfid::Epc, RigSpec> rigs_;
  std::map<rfid::Epc, RigSpec> verticalRigs_;
  std::map<rfid::Epc, OrientationModel> orientationModels_;
  Instruments obs_;
};

}  // namespace tagspin::core
