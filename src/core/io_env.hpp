// Injectable I/O environment: the seam between everything that must be
// durable (checkpoints, capture files, metric sidecars) and the storage it
// lands on.
//
// Every durability claim in this tree -- CheckpointStore's old-or-new
// atomicity, CaptureWriter's bounded crash loss, the exporters' torn-free
// sidecars -- reduces to an *ordering* of open/write/fsync/rename/dirsync
// calls.  Those orderings used to be hand-reasoned comments over raw
// syscalls; routing the calls through this interface makes them falsifiable:
// production code runs against the PosixIoEnv passthrough (zero behavior
// change), while tests and the crash-point explorer substitute
// sim::SimIoEnv, which models a page cache (buffered vs durable bytes, short
// writes, injected EIO/ENOSPC/EINTR, fsync that fails after partially
// persisting, renames that are atomic but not durable until the parent
// directory is fsynced) and can materialize the disk a power cut would
// leave at any syscall boundary.
//
// The durability ordering contract itself lives here too (writeFileDurable),
// in one place, so CheckpointStore, the fleet shard fan-out and the obs
// exporters cannot drift apart.  See DESIGN.md "Durability contract".
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace tagspin::core {

/// Outcome of one I/O call: `value` is the fd (open), byte count (write,
/// readFile) or size (seekEnd); `err` is 0 on success, else the errno.
/// Plain errno carriage -- not core::Result -- because the seam sits below
/// every library and callers need the raw code to decide EINTR-retry vs
/// ENOSPC-abort.
struct IoStatus {
  long value = 0;
  int err = 0;
  bool ok() const { return err == 0; }
};

enum class OpenMode {
  /// Write-only, create, truncate to empty (the tmp side of a durable
  /// replace).
  kTruncate,
  /// Write-only, create, preserve existing contents with the cursor at
  /// offset 0 (the crash-safe appender manages truncation/seek itself).
  kAppendable,
};

/// The storage syscalls the durability-critical writers are allowed to use.
/// Short writes and EINTR are part of the interface: retry loops belong
/// *above* this seam (writeAllRetry & friends) so a simulated environment
/// can prove they exist.
class IoEnv {
 public:
  virtual ~IoEnv() = default;

  virtual IoStatus open(const std::string& path, OpenMode mode) = 0;
  /// May write fewer than `size` bytes (value = bytes accepted).
  virtual IoStatus write(int fd, const void* data, size_t size) = 0;
  virtual IoStatus fsync(int fd) = 0;
  virtual IoStatus close(int fd) = 0;
  virtual IoStatus truncate(int fd, uint64_t size) = 0;
  /// Move the cursor to end-of-file; value = file size.
  virtual IoStatus seekEnd(int fd) = 0;
  /// Atomic replace of `to` by `from` (visibility, not durability: the
  /// rename survives a power cut only after syncDir on the parent).
  virtual IoStatus rename(const std::string& from, const std::string& to) = 0;
  virtual IoStatus remove(const std::string& path) = 0;
  /// fsync the directory itself, sealing pending entry creations, renames
  /// and removals under it against power loss.
  virtual IoStatus syncDir(const std::string& dir) = 0;
  /// Whole-file read (the load paths slurp; there is no streaming read).
  /// err = ENOENT when no file exists at `path`.
  virtual IoStatus readFile(const std::string& path, std::string& out) = 0;
  virtual bool exists(const std::string& path) = 0;
};

/// The process-global passthrough to the real filesystem.
IoEnv& posixIo();

/// Default-parameter helper: nullptr means the real filesystem.
inline IoEnv& resolveIo(IoEnv* io) { return io ? *io : posixIo(); }

/// Directory containing `path`: "a/b/c" -> "a/b", "x" -> ".", "/x" -> "/".
std::string parentDir(const std::string& path);

/// EINTR-absorbing wrappers.  A signal during a durable write must cost a
/// retry, not the checkpoint; these are the only sanctioned way for the
/// durability-critical writers to issue the underlying calls.
IoStatus openRetry(IoEnv& io, const std::string& path, OpenMode mode);
/// Retries both EINTR and short writes until all `size` bytes are accepted.
IoStatus writeAllRetry(IoEnv& io, int fd, const void* data, size_t size);
/// Retries EINTR only.  Any other fsync failure must NOT be retried: POSIX
/// allows the kernel to mark dirty pages clean on a failed fsync, so a
/// "successful" retry proves nothing (callers abort and rebuild instead).
IoStatus fsyncRetry(IoEnv& io, int fd);
IoStatus syncDirRetry(IoEnv& io, const std::string& dir);

/// Durably replace `path` with `contents`.  Ordering contract (each step
/// must complete before the next has any value):
///   1. write + fsync a sibling `path + ".tmp"` -- the *data* must be on
///      stable media before the rename, otherwise the rename can persist
///      first and a power cut leaves `path` pointing at garbage;
///   2. rename(tmp, path) -- atomic replace, readers see old-or-new;
///   3. fsync the parent directory -- the rename is a directory mutation;
///      without this a crash can roll it back, silently resurrecting the
///      previous file after the caller was told the save succeeded.
/// Throws std::runtime_error on failure at any step, removing the tmp and
/// leaving any previous file at `path` untouched (after step 2 the new file
/// is visible but the call still fails when step 3 does: the caller must
/// not treat the write as durable, though old-or-new atomicity holds
/// either way).
void writeFileDurable(IoEnv& io, const std::string& path,
                      const std::string& contents);

/// Same contract, false instead of throwing (telemetry export must never
/// take down ingestion).
bool writeFileDurableNoThrow(IoEnv& io, const std::string& path,
                             const std::string& contents);

}  // namespace tagspin::core
