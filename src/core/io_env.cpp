#include "core/io_env.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <vector>

namespace tagspin::core {

namespace {

/// EINTR retries are bounded only as a safety net against a pathological
/// environment; a real signal storm resolves in a handful of iterations.
constexpr int kMaxEintrRetries = 1024;

class PosixIoEnv final : public IoEnv {
 public:
  IoStatus open(const std::string& path, OpenMode mode) override {
    const int flags = mode == OpenMode::kTruncate
                          ? O_WRONLY | O_CREAT | O_TRUNC
                          : O_WRONLY | O_CREAT;
    const int fd = ::open(path.c_str(), flags, 0644);
    if (fd < 0) return {-1, errno};
    return {fd, 0};
  }

  IoStatus write(int fd, const void* data, size_t size) override {
    const ssize_t n = ::write(fd, data, size);
    if (n < 0) return {0, errno};
    return {n, 0};
  }

  IoStatus fsync(int fd) override {
    if (::fsync(fd) != 0) return {0, errno};
    return {0, 0};
  }

  IoStatus close(int fd) override {
    if (::close(fd) != 0) return {0, errno};
    return {0, 0};
  }

  IoStatus truncate(int fd, uint64_t size) override {
    if (::ftruncate(fd, static_cast<off_t>(size)) != 0) return {0, errno};
    return {0, 0};
  }

  IoStatus seekEnd(int fd) override {
    const off_t pos = ::lseek(fd, 0, SEEK_END);
    if (pos < 0) return {0, errno};
    return {static_cast<long>(pos), 0};
  }

  IoStatus rename(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) return {0, errno};
    return {0, 0};
  }

  IoStatus remove(const std::string& path) override {
    if (::unlink(path.c_str()) != 0) return {0, errno};
    return {0, 0};
  }

  IoStatus syncDir(const std::string& dir) override {
    const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0) {
      // A directory we cannot even open for reading (permissions, exotic
      // mount) cannot be fsynced by anyone; treat as unsupported rather
      // than failing the write that already happened.
      return {0, 0};
    }
    if (::fsync(fd) != 0) {
      const int err = errno;
      ::close(fd);
      // Filesystems that refuse directory fsync report EINVAL/ENOTSUP --
      // there is nothing better to do there (the SQLite/LevelDB stance).
      // A real media error (EIO) must propagate: the rename may not be
      // durable and the caller has to know.
      if (err == EINVAL || err == ENOTSUP || err == ENOSYS) return {0, 0};
      return {0, err};
    }
    ::close(fd);
    return {0, 0};
  }

  IoStatus readFile(const std::string& path, std::string& out) override {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) return {0, errno};
    out.clear();
    std::vector<char> buf(1 << 16);
    for (;;) {
      const ssize_t n = ::read(fd, buf.data(), buf.size());
      if (n < 0) {
        if (errno == EINTR) continue;
        const int err = errno;
        ::close(fd);
        return {0, err};
      }
      if (n == 0) break;
      out.append(buf.data(), static_cast<size_t>(n));
    }
    ::close(fd);
    return {static_cast<long>(out.size()), 0};
  }

  bool exists(const std::string& path) override {
    return ::access(path.c_str(), F_OK) == 0;
  }
};

}  // namespace

IoEnv& posixIo() {
  static PosixIoEnv env;
  return env;
}

std::string parentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

IoStatus openRetry(IoEnv& io, const std::string& path, OpenMode mode) {
  IoStatus st;
  for (int i = 0; i < kMaxEintrRetries; ++i) {
    st = io.open(path, mode);
    if (st.err != EINTR) return st;
  }
  return st;
}

IoStatus writeAllRetry(IoEnv& io, int fd, const void* data, size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  size_t written = 0;
  int spins = 0;
  while (written < size) {
    const IoStatus st = io.write(fd, bytes + written, size - written);
    if (!st.ok()) {
      if (st.err == EINTR && ++spins < kMaxEintrRetries) continue;
      return {static_cast<long>(written), st.err};
    }
    spins = 0;
    written += static_cast<size_t>(st.value);
  }
  return {static_cast<long>(written), 0};
}

IoStatus fsyncRetry(IoEnv& io, int fd) {
  IoStatus st;
  for (int i = 0; i < kMaxEintrRetries; ++i) {
    st = io.fsync(fd);
    if (st.err != EINTR) return st;
  }
  return st;
}

IoStatus syncDirRetry(IoEnv& io, const std::string& dir) {
  IoStatus st;
  for (int i = 0; i < kMaxEintrRetries; ++i) {
    st = io.syncDir(dir);
    if (st.err != EINTR) return st;
  }
  return st;
}

void writeFileDurable(IoEnv& io, const std::string& path,
                      const std::string& contents) {
  const std::string tmp = path + ".tmp";
  const IoStatus fd = openRetry(io, tmp, OpenMode::kTruncate);
  if (!fd.ok()) {
    throw std::runtime_error("durable write: cannot create " + tmp + ": " +
                             std::strerror(fd.err));
  }
  const int handle = static_cast<int>(fd.value);
  IoStatus st = writeAllRetry(io, handle, contents.data(), contents.size());
  if (!st.ok()) {
    io.close(handle);
    io.remove(tmp);
    throw std::runtime_error("durable write: write failed: " + tmp + ": " +
                             std::strerror(st.err));
  }
  st = fsyncRetry(io, handle);
  if (!st.ok()) {
    io.close(handle);
    io.remove(tmp);
    throw std::runtime_error("durable write: fsync failed: " + tmp + ": " +
                             std::strerror(st.err));
  }
  st = io.close(handle);
  if (!st.ok()) {
    io.remove(tmp);
    throw std::runtime_error("durable write: close failed: " + tmp + ": " +
                             std::strerror(st.err));
  }
  st = io.rename(tmp, path);
  if (!st.ok()) {
    io.remove(tmp);
    throw std::runtime_error("durable write: rename to " + path +
                             " failed: " + std::strerror(st.err));
  }
  st = syncDirRetry(io, parentDir(path));
  if (!st.ok()) {
    // The rename already happened, so old-or-new atomicity holds either
    // way; but the caller must not treat the save as durable, so this is
    // still a failure (no tmp cleanup needed -- it was renamed away).
    throw std::runtime_error("durable write: directory fsync failed for " +
                             path + ": " + std::strerror(st.err));
  }
}

bool writeFileDurableNoThrow(IoEnv& io, const std::string& path,
                             const std::string& contents) {
  try {
    writeFileDurable(io, path, contents);
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

}  // namespace tagspin::core
