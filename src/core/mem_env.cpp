#include "core/mem_env.hpp"

#include <algorithm>

namespace tagspin::core {

bool PosixMemEnv::tryReserve(uint64_t bytes) {
  uint64_t used = used_.load(std::memory_order_relaxed);
  for (;;) {
    const uint64_t next = used + bytes;
    if (budget_ > 0 && next > budget_) {
      denials_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    if (used_.compare_exchange_weak(used, next, std::memory_order_relaxed)) {
      reserves_.fetch_add(1, std::memory_order_relaxed);
      uint64_t peak = peak_.load(std::memory_order_relaxed);
      while (next > peak &&
             !peak_.compare_exchange_weak(peak, next,
                                          std::memory_order_relaxed)) {
      }
      return true;
    }
  }
}

void PosixMemEnv::release(uint64_t bytes) {
  // Clamp at zero instead of wrapping: an over-release is a caller bug the
  // simulated environment flags, but the passthrough must stay sane.
  uint64_t used = used_.load(std::memory_order_relaxed);
  for (;;) {
    const uint64_t next = bytes > used ? 0 : used - bytes;
    if (used_.compare_exchange_weak(used, next, std::memory_order_relaxed)) {
      return;
    }
  }
}

MemEnvStats PosixMemEnv::stats() const {
  MemEnvStats s;
  s.reserves = reserves_.load(std::memory_order_relaxed);
  s.denials = denials_.load(std::memory_order_relaxed);
  s.usedBytes = used_.load(std::memory_order_relaxed);
  s.peakBytes = peak_.load(std::memory_order_relaxed);
  s.budgetBytes = budget_;
  return s;
}

MemEnv& passthroughMem() {
  static PosixMemEnv env;
  return env;
}

MemArena& MemArena::operator=(MemArena&& other) noexcept {
  if (this != &other) {
    reset();
    env_ = other.env_;
    budget_ = other.budget_;
    domain_ = std::move(other.domain_);
    attached_ = other.attached_;
    used_ = other.used_;
    peak_ = other.peak_;
    denials_ = other.denials_;
    other.env_ = nullptr;
    other.attached_ = false;
    other.used_ = other.peak_ = other.denials_ = 0;
    other.budget_ = 0;
  }
  return *this;
}

bool MemArena::tryReserve(uint64_t bytes) {
  if (!attached_) return true;
  if (budget_ > 0 && used_ + bytes > budget_) {
    ++denials_;
    return false;
  }
  if (env_ && !env_->tryReserve(bytes)) {
    ++denials_;
    return false;
  }
  used_ += bytes;
  peak_ = std::max(peak_, used_);
  return true;
}

void MemArena::release(uint64_t bytes) {
  if (!attached_) return;
  // Forward the full amount so an over-releasing caller is visible to a
  // simulated environment's underflow oracle; clamp only the local ledger.
  if (env_) env_->release(bytes);
  used_ = bytes > used_ ? 0 : used_ - bytes;
}

void MemArena::reset() {
  if (attached_ && env_ && used_ > 0) env_->release(used_);
  used_ = 0;
}

}  // namespace tagspin::core
