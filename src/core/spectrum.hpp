// Angle-spectrum estimation: searching the power profile for its peak.
//
// 2D: the azimuth of the maximum of the profile over [0, 2*pi).
// 3D: the (azimuth, polar) pair maximising the profile; since cos(gamma) is
// even, the spectrum is exactly mirror-symmetric in gamma and the search
// reports the non-negative-polar peak (the caller resolves the sign with
// scene knowledge, paper section V-B).
#pragma once

#include "core/config.hpp"
#include "core/power_profile.hpp"

namespace tagspin::core {

struct AzimuthEstimate {
  double azimuth = 0.0;  // [0, 2*pi)
  double value = 0.0;    // profile value at the peak
};

struct SpatialEstimate {
  double azimuth = 0.0;
  double polar = 0.0;  // reported as |gamma| in [0, pi/2]
  double value = 0.0;
};

AzimuthEstimate estimateAzimuth(const PowerProfile& profile,
                                const SearchConfig& search);

/// Same search performed coarse-to-fine; identical result for well-formed
/// profiles at a fraction of the evaluations (ablated in perf_profiles).
AzimuthEstimate estimateAzimuthCoarseFine(const PowerProfile& profile,
                                          const SearchConfig& search);

SpatialEstimate estimateSpatial(const PowerProfile& profile,
                                const SearchConfig& search);

/// Locally refine an azimuth around `seedRad` within +-halfSpanRad (dense
/// local grid plus the same halving zoom estimateAzimuth finishes with).
/// Used to polish *secondary* candidate peaks -- a grid-resolution ghost
/// candidate that wins the consensus vote should enter the intersection
/// with the same precision as a full-search main peak.
AzimuthEstimate refineAzimuthNear(const PowerProfile& profile, double seedRad,
                                  double halfSpanRad, int refineRounds,
                                  double gamma = 0.0);

}  // namespace tagspin::core
