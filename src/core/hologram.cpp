#include "core/hologram.hpp"

#include <cmath>
#include <complex>
#include <map>
#include <stdexcept>

#include "geom/angles.hpp"

namespace tagspin::core {

Hologram::Hologram(std::span<const RigObservation> observations,
                   HologramConfig config)
    : config_(config) {
  if (config.xMax <= config.xMin || config.yMax <= config.yMin ||
      config.coarseStepM <= 0.0) {
    throw std::invalid_argument("Hologram: bad search grid");
  }
  int nextGroup = 0;
  for (size_t r = 0; r < observations.size(); ++r) {
    const RigObservation& obs = observations[r];
    struct Ref {
      int group;
      double phase;
      double k;
      geom::Vec3 tagPos;
    };
    std::map<int, Ref> refs;
    for (const Snapshot& s : obs.snapshots) {
      if (s.lambdaM <= 0.0) {
        throw std::invalid_argument("Hologram: snapshot missing wavelength");
      }
      const double a = obs.rig.kinematics.diskAngle(s.timeS);
      const geom::Vec3 tagPos =
          obs.rig.center +
          geom::Vec3{obs.rig.kinematics.radiusM * std::cos(a),
                     obs.rig.kinematics.radiusM * std::sin(a), 0.0};
      const double k = 4.0 * geom::kPi / s.lambdaM;
      auto [it, inserted] =
          refs.try_emplace(s.channel, Ref{nextGroup, s.phaseRad, k, tagPos});
      if (inserted) ++nextGroup;

      Entry e;
      e.tagPos = tagPos;
      e.k = k;
      e.relPhase = geom::wrapToPi(s.phaseRad - it->second.phase);
      e.refK = it->second.k;
      e.refTagPos = it->second.tagPos;
      e.group = it->second.group;
      entries_.push_back(e);
    }
  }
  groupCount_ = nextGroup;
  if (entries_.size() < 4) {
    throw std::invalid_argument("Hologram: too few snapshots");
  }
}

double Hologram::intensity(const geom::Vec2& candidate) const {
  const geom::Vec3 p{candidate.x, candidate.y,
                     entries_.front().refTagPos.z};
  std::vector<std::complex<double>> sums(
      static_cast<size_t>(groupCount_), std::complex<double>{0.0, 0.0});
  std::vector<int> counts(static_cast<size_t>(groupCount_), 0);
  for (const Entry& e : entries_) {
    // Exact round-trip relative phase the candidate predicts.
    const double predicted = e.k * geom::distance(e.tagPos, p) -
                             e.refK * geom::distance(e.refTagPos, p);
    sums[static_cast<size_t>(e.group)] +=
        std::polar(1.0, e.relPhase - predicted);
    counts[static_cast<size_t>(e.group)] += 1;
  }
  if (config_.multiplicative) {
    // Size-weighted geometric mean of per-group coherence.
    double logAcc = 0.0;
    int total = 0;
    for (size_t g = 0; g < sums.size(); ++g) {
      if (counts[g] == 0) continue;
      const double score =
          std::max(std::abs(sums[g]) / static_cast<double>(counts[g]), 1e-9);
      logAcc += static_cast<double>(counts[g]) * std::log(score);
      total += counts[g];
    }
    return total > 0 ? std::exp(logAcc / static_cast<double>(total)) : 0.0;
  }
  double acc = 0.0;
  int total = 0;
  for (size_t g = 0; g < sums.size(); ++g) {
    acc += std::abs(sums[g]);
    total += counts[g];
  }
  return total > 0 ? acc / static_cast<double>(total) : 0.0;
}

Fix2D Hologram::locate() const {
  geom::Vec2 best{config_.xMin, config_.yMin};
  double bestV = intensity(best);
  for (double x = config_.xMin; x <= config_.xMax; x += config_.coarseStepM) {
    for (double y = config_.yMin; y <= config_.yMax;
         y += config_.coarseStepM) {
      const double v = intensity({x, y});
      if (v > bestV) {
        bestV = v;
        best = {x, y};
      }
    }
  }
  double h = config_.coarseStepM / 2.0;
  for (int round = 0; round < config_.refineRounds; ++round) {
    for (int dx = -1; dx <= 1; ++dx) {
      for (int dy = -1; dy <= 1; ++dy) {
        if (dx == 0 && dy == 0) continue;
        const geom::Vec2 p{best.x + dx * h, best.y + dy * h};
        const double v = intensity(p);
        if (v > bestV) {
          bestV = v;
          best = p;
        }
      }
    }
    h /= 2.0;
  }
  Fix2D fix;
  fix.position = best;
  fix.residualM = 0.0;
  return fix;
}

std::vector<std::vector<double>> Hologram::sample(size_t nx,
                                                  size_t ny) const {
  std::vector<std::vector<double>> img(ny, std::vector<double>(nx, 0.0));
  for (size_t iy = 0; iy < ny; ++iy) {
    const double y = config_.yMin + (config_.yMax - config_.yMin) *
                                        static_cast<double>(iy) /
                                        static_cast<double>(ny - 1);
    for (size_t ix = 0; ix < nx; ++ix) {
      const double x = config_.xMin + (config_.xMax - config_.xMin) *
                                          static_cast<double>(ix) /
                                          static_cast<double>(nx - 1);
      img[iy][ix] = intensity({x, y});
    }
  }
  return img;
}

}  // namespace tagspin::core
