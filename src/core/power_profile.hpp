// Angle power profiles (paper section IV and V-B).
//
// Given the snapshots of one spinning tag, the profile maps a candidate
// direction (azimuth phi, optionally polar gamma) to the relative power
// received from that direction, using circular-antenna-array SAR equations:
//
//   P(phi) = (1/n) |sum_i exp(J[theta_i      + k_i r cos(a_i - phi)])|
//   Q(phi) = (1/n) |sum_i exp(J[theta_i-th_0 + k_i r cos(a_i - phi)])|
//   R(phi) = (1/n) |sum_i w_i(phi) exp(J[theta_i-th_0 + k_i r cos(a_i-phi)])|
//
// with k_i = 4*pi/lambda_i, a_i the disk angle at snapshot i, and
// w_i(phi) the Gaussian likelihood of the *wrapped* residual between the
// measured relative phase and the steering prediction
// c_i(phi) = k r (cos(a_0-phi) - cos(a_i-phi)) under N(0, 2 sigma^2).
// In 3D every r cos(a - phi) term is multiplied by cos(gamma).
//
// Deviations from the paper's notation, documented here:
//  * Weights use exp(-x^2 / (2 sigma_pair^2)) rather than the full Gaussian
//    PDF -- same argmax, but profiles stay in [0, 1].
//  * The residual is wrapped to (-pi, pi] before weighting; |c_i| exceeds
//    2*pi whenever r > lambda/4, so the unwrapped residual of the paper's
//    formula would mis-weight perfectly consistent snapshots.
//  * With channel hopping, relative phases are only meaningful within one
//    channel (the unknown 4*pi*D/lambda term differs across channels), so
//    Q/R form one coherent sum per channel and combine the magnitudes.
//    P ignores grouping -- it is the classical method reproduced as-is.
#pragma once

#include <span>
#include <vector>

#include "core/config.hpp"
#include "core/snapshot.hpp"

namespace tagspin::core {

class PowerProfile {
 public:
  /// Builds the profile over the given snapshots (at least 2 required;
  /// throws std::invalid_argument otherwise).
  PowerProfile(std::span<const Snapshot> snapshots,
               const RigKinematics& kinematics, const ProfileConfig& config);

  /// Profile value for azimuth phi (2D, gamma = 0).
  double evaluate(double phi) const { return evaluate(phi, 0.0); }

  /// Profile value for direction (phi, gamma) -- paper Eqn. 11/12.
  double evaluate(double phi, double gamma) const;

  /// Generalised steering: the aperture term is scale * cos(a_i - angle),
  /// where `angle` is measured in the rig's rotation plane and `scale` is
  /// the length of the unit direction's projection onto that plane.  The
  /// horizontal 3D case is evaluateDirection(phi, cos(gamma)); a vertically
  /// spinning rig (future-work extension) uses its own plane projection.
  double evaluateDirection(double angle, double scale) const;

  /// Dense sampling over phi in [0, 2*pi) for plotting (Fig. 1, 6, 8).
  std::vector<double> sampleAzimuth(size_t points, double gamma = 0.0) const;

  /// How broadly the snapshots support direction (phi, gamma) under the
  /// enhanced profile's likelihood weights.  `effectiveFraction` is the
  /// effective sample size of the weights, (sum w)^2 / (n sum w^2), as a
  /// fraction of n: ~1 when every snapshot backs the direction, ~f when
  /// only a coherent fraction f does -- the signature of a multipath ghost
  /// peak, whose lobe is built from the subset of reads that bounced off
  /// the reflector.  Non-enhanced formulas carry no weights and report
  /// {1, 1}.
  struct WeightStats {
    double meanWeight = 1.0;
    double effectiveFraction = 1.0;
  };
  WeightStats weightStats(double phi, double gamma = 0.0) const;

  size_t snapshotCount() const { return entries_.size(); }
  const ProfileConfig& config() const { return config_; }

 private:
  struct Entry {
    // cos/sin of the disk angle a_i and of the group's reference disk angle
    // a_0, precomputed so the per-candidate evaluation needs no trig on the
    // geometry: cos(a - phi) = cosA*cos(phi) + sinA*sin(phi).
    double cosA = 0.0;
    double sinA = 0.0;
    double cosRef = 0.0;
    double sinRef = 0.0;
    double k = 0.0;           // 4*pi/lambda_i
    double relPhase = 0.0;    // theta_i - theta_0 of its channel group
    int group = 0;            // channel-group index
  };

  ProfileConfig config_;
  double radius_ = 0.0;
  double sigmaPair_ = 0.0;
  int groupCount_ = 0;
  std::vector<Entry> entries_;
};

}  // namespace tagspin::core
