#include "core/tagspin.hpp"

#include <algorithm>
#include <stdexcept>

#include "geom/angles.hpp"
#include "obs/span.hpp"

namespace tagspin::core {

TagspinSystem::TagspinSystem(LocatorConfig config)
    : locator_(config) {}

TagspinSystem::Instruments TagspinSystem::Instruments::resolve(
    obs::MetricsRegistry* registry) {
  Instruments in;
  if (!registry) return in;
  in.duplicatesRemoved = registry->counter("preprocess.duplicates_removed");
  in.timestampRepairs = registry->counter("preprocess.timestamp_repairs");
  in.phaseOutliersDropped =
      registry->counter("preprocess.phase_outliers_dropped");
  in.preprocessSpan = registry->histogram("span.preprocess");
  return in;
}

void TagspinSystem::setMetrics(obs::MetricsRegistry* registry) {
  obs_ = Instruments::resolve(registry);
  locator_.setMetrics(registry);
}

void TagspinSystem::registerRig(const rfid::Epc& epc, const RigSpec& rig) {
  rigs_[epc] = rig;
}

void TagspinSystem::registerVerticalRig(const rfid::Epc& epc,
                                        const RigSpec& rig) {
  verticalRigs_[epc] = rig;
}

void TagspinSystem::setOrientationModel(const rfid::Epc& epc,
                                        OrientationModel model) {
  orientationModels_[epc] = std::move(model);
}

void TagspinSystem::setPreprocessConfig(const PreprocessConfig& config) {
  preprocess_ = config;
}

OrientationModel TagspinSystem::calibrateOrientation(
    const rfid::ReportStream& reports, const rfid::Epc& epc,
    const RigSpec& rig, const geom::Vec3& knownReaderPos,
    size_t order) const {
  const std::vector<Snapshot> snaps =
      extractSnapshots(reports, epc, preprocess_);
  const double azimuth = geom::azimuthOf(rig.center, knownReaderPos);
  return OrientationModel::fit(snaps, rig.kinematics, azimuth, order);
}

std::vector<RigObservation> TagspinSystem::collectObservations(
    const rfid::ReportStream& reports) const {
  std::vector<RigObservation> obs;
  for (const auto& [epc, rig] : rigs_) {
    RigObservation o;
    o.rig = rig;
    try {
      o.snapshots = extractSnapshots(reports, epc, preprocess_);
    } catch (const std::invalid_argument&) {
      continue;  // this rig was not heard by this antenna
    }
    if (const auto it = orientationModels_.find(epc);
        it != orientationModels_.end()) {
      o.orientation = it->second;
    }
    if (o.snapshots.size() >= 2) obs.push_back(std::move(o));
  }
  return obs;
}

std::vector<RigObservation> TagspinSystem::collectObservationsRobust(
    const rfid::ReportStream& reports) const {
  std::vector<RigObservation> obs;
  for (const auto& [epc, rig] : rigs_) {
    RepairStats repairs;
    Result<std::vector<Snapshot>> snaps = [&] {
      TAGSPIN_SPAN(obs_.preprocessSpan);
      return extractSnapshotsRobust(reports, epc, preprocess_, &repairs);
    }();
    obs::add(obs_.duplicatesRemoved, repairs.duplicatesRemoved);
    obs::add(obs_.timestampRepairs, repairs.timestampOutliersDropped);
    obs::add(obs_.phaseOutliersDropped, repairs.phaseOutliersDropped);
    if (!snaps) continue;  // this rig was not heard (or fully rejected)
    RigObservation o;
    o.rig = rig;
    o.snapshots = std::move(*snaps);
    if (const auto it = orientationModels_.find(epc);
        it != orientationModels_.end()) {
      o.orientation = it->second;
    }
    if (o.snapshots.size() >= 2) obs.push_back(std::move(o));
  }
  return obs;
}

void TagspinSystem::setHealthThresholds(const RigHealthThresholds& thresholds) {
  healthThresholds_ = thresholds;
}

Result<ResilientFix2D> TagspinSystem::tryLocate2D(
    const rfid::ReportStream& reports) const {
  const std::vector<RigObservation> obs = collectObservationsRobust(reports);
  if (obs.size() < 2) {
    return Error{ErrorCode::kTooFewRigs,
                 "tryLocate2D: " + std::to_string(obs.size()) + " of " +
                     std::to_string(rigs_.size()) +
                     " registered rigs heard in a stream of " +
                     std::to_string(reports.size()) + " reports"};
  }
  return locator_.tryLocate2D(obs, healthThresholds_);
}

Result<ResilientFix3D> TagspinSystem::tryLocate3D(
    const rfid::ReportStream& reports) const {
  const std::vector<RigObservation> obs = collectObservationsRobust(reports);
  if (obs.size() < 2) {
    return Error{ErrorCode::kTooFewRigs,
                 "tryLocate3D: " + std::to_string(obs.size()) + " of " +
                     std::to_string(rigs_.size()) +
                     " registered rigs heard in a stream of " +
                     std::to_string(reports.size()) + " reports"};
  }
  return locator_.tryLocate3D(obs, healthThresholds_);
}

Fix2D TagspinSystem::locate2D(const rfid::ReportStream& reports) const {
  const std::vector<RigObservation> obs = collectObservations(reports);
  if (obs.size() < 2) {
    throw std::runtime_error(
        "TagspinSystem::locate2D: fewer than two registered rigs heard");
  }
  return locator_.locate2D(obs);
}

namespace {

std::vector<int> portsIn(const rfid::ReportStream& reports) {
  std::vector<int> ports;
  for (const rfid::TagReport& r : reports) {
    if (std::find(ports.begin(), ports.end(), r.antennaPort) == ports.end()) {
      ports.push_back(r.antennaPort);
    }
  }
  std::sort(ports.begin(), ports.end());
  return ports;
}

}  // namespace

std::map<int, Fix2D> TagspinSystem::locateAllAntennas2D(
    const rfid::ReportStream& reports) const {
  std::map<int, Fix2D> fixes;
  for (int port : portsIn(reports)) {
    try {
      fixes.emplace(port, locate2D(rfid::filterByAntenna(reports, port)));
    } catch (const std::runtime_error&) {
      // This port's slice cannot produce a fix; skip it.
    }
  }
  return fixes;
}

std::map<int, Fix3D> TagspinSystem::locateAllAntennas3D(
    const rfid::ReportStream& reports) const {
  std::map<int, Fix3D> fixes;
  for (int port : portsIn(reports)) {
    try {
      fixes.emplace(port, locate3D(rfid::filterByAntenna(reports, port)));
    } catch (const std::runtime_error&) {
    }
  }
  return fixes;
}

Fix3D TagspinSystem::locate3D(const rfid::ReportStream& reports) const {
  const std::vector<RigObservation> obs = collectObservations(reports);
  if (obs.size() < 2) {
    throw std::runtime_error(
        "TagspinSystem::locate3D: fewer than two registered rigs heard");
  }
  Fix3D fix = locator_.locate3D(obs);

  // If a vertical rig was heard and both z candidates are in play, use it
  // to disambiguate (future-work extension).
  if (fix.mirrorCandidate) {
    for (const auto& [epc, rig] : verticalRigs_) {
      RigObservation vobs;
      vobs.rig = rig;
      try {
        vobs.snapshots = extractSnapshots(reports, epc, preprocess_);
      } catch (const std::invalid_argument&) {
        continue;
      }
      if (vobs.snapshots.size() < 2) continue;
      fix.position = locator_.disambiguateZ(vobs, fix.position,
                                            *fix.mirrorCandidate);
      fix.mirrorCandidate.reset();
      break;
    }
  }
  return fix;
}

}  // namespace tagspin::core
