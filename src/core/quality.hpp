// Fix-quality diagnostics.
//
// A production deployment needs to know *whether to trust* a fix, not just
// its value.  These metrics are computed from the angle spectrum and the
// ray geometry:
//  * peak sharpness (half-power width) -- narrow peaks mean a clean SAR
//    inversion;
//  * peak-to-second-peak ratio -- a strong secondary lobe signals
//    multipath or an interference-dominated trace;
//  * geometric dilution of precision (GDOP) -- how the rig/reader geometry
//    amplifies per-rig angle errors into position error (readers near the
//    rig baseline's extension are poorly conditioned, as the paper's
//    center-distance sweep shows).
#pragma once

#include <cstddef>
#include <span>

#include "core/power_profile.hpp"
#include "core/snapshot.hpp"
#include "geom/ray.hpp"
#include "robust/spectrum_diag.hpp"

namespace tagspin::core {

struct SpectrumQuality {
  double peakValue = 0.0;        // profile value at the main peak, [0, 1]
  double halfPowerWidthDeg = 0.0;
  /// mainPeak / secondPeak; large is good.  Infinity when no second local
  /// maximum exists.
  double peakRatio = 0.0;
};

/// Quality of a single rig's azimuth spectrum.
SpectrumQuality assessSpectrum(const PowerProfile& profile,
                               size_t gridPoints = 720);

/// Same, over an already-sampled spectrum (samples[i] at angle 2*pi*i/n);
/// lets callers that also run spin diagnostics sample the profile once.
SpectrumQuality assessSpectrumSamples(std::span<const double> samples);

/// Full spin self-diagnosis of a profile: spectrum-shape diagnostics plus
/// the ghost-peak score from the profile's likelihood weights at the main
/// peak (robust/spectrum_diag.hpp describes the verdict ladder).
robust::SpinDiagnostics diagnoseSpin(
    const PowerProfile& profile, size_t gridPoints = 720, double gamma = 0.0,
    const robust::SpinDiagnosticsConfig& config = {});

/// Horizontal GDOP of a set of bearing rays at a candidate fix: the
/// RMS position error per radian of (independent, unit-variance) bearing
/// error.  Computed from the least-squares sensitivity of the intersection.
/// Returns +infinity for degenerate (parallel-ray) geometry.
double bearingGdop(std::span<const geom::Ray2> rays,
                   const geom::Vec2& fix);

/// Composite confidence in [0, 1]: high when all spectra are sharp and
/// unimodal and the geometry is well conditioned.  Heuristic, monotone in
/// each ingredient; intended for thresholding ("re-run the calibration"),
/// not as a calibrated probability.
double fixConfidence(std::span<const SpectrumQuality> spectra, double gdop);

/// Per-rig ingestion health for one localization attempt: how much of the
/// spin the surviving snapshots actually cover, and how clean the resulting
/// spectrum is.  Used by the graceful-degradation locator to decide which
/// rigs are trustworthy enough to contribute to a fix.
struct RigHealth {
  size_t snapshotCount = 0;
  double durationS = 0.0;
  /// Fraction of the disk-angle circle [0, 2*pi) covered by snapshots
  /// (occupied fraction of a 24-bin histogram of the kinematics' disk
  /// angle).  A rig silent for 30% of the spin scores ~0.7.
  double arcCoverage = 0.0;
  /// Quality of the azimuth spectrum; defaulted when snapshotCount < 2
  /// (no profile can be built).
  SpectrumQuality spectrum;
  /// Spin self-diagnosis (verdict, candidate peaks, ghost score); verdict
  /// stays kAccept when diagnostics were not requested or no profile could
  /// be built from fewer than 2 snapshots.
  robust::SpinDiagnostics spin;
};

struct RigHealthThresholds {
  size_t minSnapshots = 16;
  double minArcCoverage = 0.30;
  /// A spectrum flatter than this peak value carries no direction
  /// information (profiles are normalised to [0, 1]).
  double minPeakValue = 0.05;
  /// Treat a kQuarantine spin verdict as unhealthy (the graceful-
  /// degradation locator then drops the rig or requests a re-spin).
  bool rejectQuarantined = true;
};

/// Assess a rig's snapshots.  Never throws; degenerate inputs simply score
/// zero everywhere.  `diagnostics` controls whether the spin self-diagnosis
/// runs (null: skip, verdict stays kAccept).
RigHealth assessRigHealth(std::span<const Snapshot> snapshots,
                          const RigKinematics& kinematics,
                          const ProfileConfig& profile = {},
                          const robust::SpinDiagnosticsConfig* diagnostics =
                              nullptr);

bool isHealthy(const RigHealth& health, const RigHealthThresholds& thresholds);

}  // namespace tagspin::core
