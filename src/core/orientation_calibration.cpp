#include "core/orientation_calibration.hpp"

#include <cmath>
#include <map>
#include <stdexcept>

#include "dsp/linalg.hpp"
#include "geom/angles.hpp"

namespace tagspin::core {

double orientationAt(const RigKinematics& kinematics, double timeS,
                     double readerAzimuth) {
  const double planeAngle =
      kinematics.diskAngle(timeS) + kinematics.tagPlaneOffset;
  return geom::wrapTwoPi(planeAngle - readerAzimuth);
}

OrientationModel OrientationModel::fit(std::span<const Snapshot> centerSpin,
                                       const RigKinematics& kinematics,
                                       double readerAzimuthFromTag,
                                       size_t order) {
  if (order == 0) {
    throw std::invalid_argument("OrientationModel::fit: order must be >= 1");
  }
  // Work with wrapped deviations around each channel's circular mean rather
  // than an unwrapped sequence: a single interference outlier would inject a
  // false 2*pi step into an unwrap and poison the whole fit, whereas here it
  // stays one bounded residual (rejected below).  The orientation effect is
  // well under pi peak-to-peak, so the deviations never straddle the wrap.
  std::map<int, size_t> channelColumn;
  for (const Snapshot& s : centerSpin) {
    channelColumn.try_emplace(s.channel, channelColumn.size());
  }
  const size_t nChannels = channelColumn.size();
  const size_t nParams = nChannels + 2 * order;
  if (centerSpin.size() < nParams + 2) {
    throw std::invalid_argument(
        "OrientationModel::fit: too few snapshots for requested order");
  }

  std::vector<std::vector<double>> perChannelPhases(nChannels);
  for (const Snapshot& s : centerSpin) {
    perChannelPhases[channelColumn.at(s.channel)].push_back(s.phaseRad);
  }
  std::vector<double> channelMean(nChannels);
  for (size_t c = 0; c < nChannels; ++c) {
    channelMean[c] = geom::circularMean(perChannelPhases[c]);
  }

  std::vector<double> rho(centerSpin.size());
  std::vector<double> dev(centerSpin.size());
  for (size_t i = 0; i < centerSpin.size(); ++i) {
    const Snapshot& s = centerSpin[i];
    rho[i] = orientationAt(kinematics, s.timeS, readerAzimuthFromTag);
    dev[i] = geom::wrapToPi(s.phaseRad -
                            channelMean[channelColumn.at(s.channel)]);
  }

  // Two-pass robust least squares: fit, reject > 3x residual RMS, refit.
  std::vector<bool> keep(centerSpin.size(), true);
  std::vector<double> solution;
  double residualRms = 0.0;
  for (int pass = 0; pass < 2; ++pass) {
    size_t kept = 0;
    for (bool k : keep) kept += k ? 1 : 0;
    if (kept < nParams + 2) break;  // keep previous solution
    dsp::Matrix design(kept, nParams);
    std::vector<double> rhs(kept);
    size_t row = 0;
    for (size_t i = 0; i < centerSpin.size(); ++i) {
      if (!keep[i]) continue;
      design(row, channelColumn.at(centerSpin[i].channel)) = 1.0;
      for (size_t k = 1; k <= order; ++k) {
        const double kr = static_cast<double>(k) * rho[i];
        design(row, nChannels + 2 * (k - 1)) = std::cos(kr);
        design(row, nChannels + 2 * (k - 1) + 1) = std::sin(kr);
      }
      rhs[row] = dev[i];
      ++row;
    }
    const auto sol = dsp::solveLeastSquares(design, rhs);
    if (!sol) {
      throw std::runtime_error(
          "OrientationModel::fit: rank-deficient design (did the disk spin "
          "through a full revolution?)");
    }
    solution = *sol;

    auto predict = [&](size_t i) {
      double p = solution[channelColumn.at(centerSpin[i].channel)];
      for (size_t k = 1; k <= order; ++k) {
        const double kr = static_cast<double>(k) * rho[i];
        p += solution[nChannels + 2 * (k - 1)] * std::cos(kr);
        p += solution[nChannels + 2 * (k - 1) + 1] * std::sin(kr);
      }
      return p;
    };
    double ss = 0.0;
    for (size_t i = 0; i < centerSpin.size(); ++i) {
      const double r = dev[i] - predict(i);
      ss += r * r;
    }
    residualRms = std::sqrt(ss / static_cast<double>(centerSpin.size()));
    const double cutoff = 3.0 * residualRms;
    for (size_t i = 0; i < centerSpin.size(); ++i) {
      keep[i] = std::abs(dev[i] - predict(i)) <= cutoff;
    }
  }

  OrientationModel model;
  model.series_.a0 = 0.0;
  model.series_.a.resize(order);
  model.series_.b.resize(order);
  for (size_t k = 1; k <= order; ++k) {
    model.series_.a[k - 1] = solution[nChannels + 2 * (k - 1)];
    model.series_.b[k - 1] = solution[nChannels + 2 * (k - 1) + 1];
  }
  model.series_ = model.series_.referencedAt(geom::kPi / 2.0);
  model.fitResidual_ = residualRms;
  return model;
}

OrientationModel OrientationModel::fromSeries(dsp::FourierSeries series,
                                              double fitResidual) {
  OrientationModel model;
  model.series_ = std::move(series);
  model.fitResidual_ = fitResidual;
  return model;
}

double OrientationModel::offsetAt(double rho) const {
  return series_.evaluate(rho);
}

double orientationAtPosition(const RigSpec& rig, double timeS,
                             const geom::Vec3& readerPos) {
  const double a = rig.kinematics.diskAngle(timeS);
  const geom::Vec3 tagPos =
      rig.center + geom::Vec3{rig.kinematics.radiusM * std::cos(a),
                              rig.kinematics.radiusM * std::sin(a), 0.0};
  const double planeAngle = a + rig.kinematics.tagPlaneOffset;
  return geom::wrapTwoPi(planeAngle - geom::azimuthOf(tagPos, readerPos));
}

std::vector<Snapshot> calibrateOrientationAtPosition(
    std::span<const Snapshot> snaps, const RigSpec& rig,
    const OrientationModel& model, const geom::Vec3& estimatedReaderPos) {
  std::vector<Snapshot> out(snaps.begin(), snaps.end());
  if (model.isIdentity()) return out;
  for (Snapshot& s : out) {
    const double rho = orientationAtPosition(rig, s.timeS, estimatedReaderPos);
    s.phaseRad = geom::wrapTwoPi(s.phaseRad - model.offsetAt(rho));
  }
  return out;
}

std::vector<Snapshot> calibrateOrientation(std::span<const Snapshot> snaps,
                                           const RigKinematics& kinematics,
                                           const OrientationModel& model,
                                           double estimatedReaderAzimuth) {
  std::vector<Snapshot> out(snaps.begin(), snaps.end());
  if (model.isIdentity()) return out;
  for (Snapshot& s : out) {
    const double rho =
        orientationAt(kinematics, s.timeS, estimatedReaderAzimuth);
    s.phaseRad = geom::wrapTwoPi(s.phaseRad - model.offsetAt(rho));
  }
  return out;
}

}  // namespace tagspin::core
