#include "core/locator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/power_profile.hpp"
#include "geom/angles.hpp"

namespace tagspin::core {

Locator::Locator(LocatorConfig config) : config_(config) {}

std::vector<Snapshot> Locator::calibrated(const RigObservation& obs,
                                          double azimuthEstimate) const {
  return calibrateOrientation(obs.snapshots, obs.rig.kinematics,
                              obs.orientation, azimuthEstimate);
}

namespace {

/// The orientation-calibration loop needs a starting azimuth before any
/// correction is available.  The enhanced profile's Gaussian weights assume
/// orientation-free residuals, so the *initial* estimate uses the relative
/// profile Q, which is robust to the (still uncorrected) orientation offset;
/// later iterations switch to the configured formula.
ProfileConfig bootstrapConfig(ProfileConfig base) {
  if (base.formula == ProfileFormula::kEnhancedR) {
    base.formula = ProfileFormula::kRelativeQ;
  }
  return base;
}

}  // namespace

RigDirection Locator::estimateDirection2D(const RigObservation& obs) const {
  const bool calibrate =
      !obs.orientation.isIdentity() && config_.orientationIterations > 0;
  const ProfileConfig firstConfig =
      calibrate ? bootstrapConfig(config_.profile) : config_.profile;
  PowerProfile profile(obs.snapshots, obs.rig.kinematics, firstConfig);
  AzimuthEstimate est = estimateAzimuth(profile, config_.search);
  if (calibrate) {
    for (int it = 0; it < config_.orientationIterations; ++it) {
      const std::vector<Snapshot> snaps = calibrated(obs, est.azimuth);
      PowerProfile refined(snaps, obs.rig.kinematics, config_.profile);
      est = estimateAzimuth(refined, config_.search);
    }
  }
  return {est.azimuth, 0.0, est.value};
}

RigDirection Locator::estimateDirection3D(const RigObservation& obs) const {
  const bool calibrate =
      !obs.orientation.isIdentity() && config_.orientationIterations > 0;
  const ProfileConfig firstConfig =
      calibrate ? bootstrapConfig(config_.profile) : config_.profile;
  PowerProfile profile(obs.snapshots, obs.rig.kinematics, firstConfig);
  SpatialEstimate est = estimateSpatial(profile, config_.search);
  if (calibrate) {
    for (int it = 0; it < config_.orientationIterations; ++it) {
      const std::vector<Snapshot> snaps = calibrated(obs, est.azimuth);
      PowerProfile refined(snaps, obs.rig.kinematics, config_.profile);
      est = estimateSpatial(refined, config_.search);
    }
  }
  return {est.azimuth, est.polar, est.value};
}

namespace {

geom::Vec2 intersectFromDirections(
    std::span<const RigObservation> observations,
    std::span<const RigDirection> directions, double* residualOut) {
  std::vector<geom::Ray2> rays;
  rays.reserve(observations.size());
  for (size_t i = 0; i < observations.size(); ++i) {
    rays.push_back(
        {observations[i].rig.center.xy(), directions[i].azimuth});
  }
  std::optional<geom::Vec2> fix;
  if (rays.size() == 2) {
    // Two rigs: the exact intersection (the robust form of Eqn. 9).
    const auto hit = geom::intersectRays(rays[0], rays[1]);
    if (hit) fix = hit->point;
  }
  if (!fix) fix = geom::leastSquaresIntersection(rays);
  if (!fix) {
    throw std::runtime_error(
        "locate: rig rays are parallel; reader direction is degenerate");
  }
  if (residualOut) *residualOut = geom::rmsResidual(rays, *fix);
  return *fix;
}

}  // namespace

Fix2D Locator::locate2D(std::span<const RigObservation> observations) const {
  if (observations.size() < 2) {
    throw std::invalid_argument("locate2D: need at least two rigs");
  }
  const bool anyModel =
      config_.orientationIterations > 0 &&
      std::any_of(observations.begin(), observations.end(),
                  [](const RigObservation& o) {
                    return !o.orientation.isIdentity();
                  });

  // Pass 0: bootstrap directions without calibration (Q formula when the
  // enhanced profile is configured -- see bootstrapConfig).
  const ProfileConfig cfg0 =
      anyModel ? bootstrapConfig(config_.profile) : config_.profile;
  Fix2D fix;
  fix.directions.reserve(observations.size());
  for (const RigObservation& obs : observations) {
    PowerProfile profile(obs.snapshots, obs.rig.kinematics, cfg0);
    const AzimuthEstimate est = estimateAzimuth(profile, config_.search);
    fix.directions.push_back({est.azimuth, 0.0, est.value});
  }
  fix.position =
      intersectFromDirections(observations, fix.directions, &fix.residualM);

  if (anyModel) {
    // Orientation-calibration loop: correct each rig's phases against the
    // current *position* estimate (exact tag-edge geometry), re-estimate.
    for (int it = 0; it < config_.orientationIterations; ++it) {
      const geom::Vec3 est3{fix.position.x, fix.position.y,
                            observations[0].rig.center.z};
      for (size_t i = 0; i < observations.size(); ++i) {
        const RigObservation& obs = observations[i];
        const std::vector<Snapshot> snaps = calibrateOrientationAtPosition(
            obs.snapshots, obs.rig, obs.orientation, est3);
        PowerProfile profile(snaps, obs.rig.kinematics, config_.profile);
        const AzimuthEstimate est = estimateAzimuth(profile, config_.search);
        fix.directions[i] = {est.azimuth, 0.0, est.value};
      }
      fix.position = intersectFromDirections(observations, fix.directions,
                                             &fix.residualM);
    }
  }
  return fix;
}

Fix3D Locator::locate3D(std::span<const RigObservation> observations) const {
  if (observations.size() < 2) {
    throw std::invalid_argument("locate3D: need at least two rigs");
  }
  const bool anyModel =
      config_.orientationIterations > 0 &&
      std::any_of(observations.begin(), observations.end(),
                  [](const RigObservation& o) {
                    return !o.orientation.isIdentity();
                  });

  const ProfileConfig cfg0 =
      anyModel ? bootstrapConfig(config_.profile) : config_.profile;
  Fix3D fix;
  fix.directions.reserve(observations.size());
  for (const RigObservation& obs : observations) {
    PowerProfile profile(obs.snapshots, obs.rig.kinematics, cfg0);
    const SpatialEstimate est = estimateSpatial(profile, config_.search);
    fix.directions.push_back({est.azimuth, est.polar, est.value});
  }
  geom::Vec2 xy =
      intersectFromDirections(observations, fix.directions, &fix.residualM);

  if (anyModel) {
    for (int it = 0; it < config_.orientationIterations; ++it) {
      // rho lives in the rigs' horizontal plane, so only the xy estimate
      // matters for the correction.
      const geom::Vec3 est3{xy.x, xy.y, observations[0].rig.center.z};
      for (size_t i = 0; i < observations.size(); ++i) {
        const RigObservation& obs = observations[i];
        const std::vector<Snapshot> snaps = calibrateOrientationAtPosition(
            obs.snapshots, obs.rig, obs.orientation, est3);
        PowerProfile profile(snaps, obs.rig.kinematics, config_.profile);
        const SpatialEstimate est = estimateSpatial(profile, config_.search);
        fix.directions[i] = {est.azimuth, est.polar, est.value};
      }
      xy = intersectFromDirections(observations, fix.directions,
                                   &fix.residualM);
    }
  }

  // Eqn. 13: each rig predicts |z| = horizontal_distance * tan(|gamma|);
  // balance the estimates weighted by spectrum confidence.
  double zAcc = 0.0;
  double wAcc = 0.0;
  for (size_t i = 0; i < observations.size(); ++i) {
    const geom::Vec3& c = observations[i].rig.center;
    const double horiz = (xy - c.xy()).norm();
    const double zk = horiz * std::tan(fix.directions[i].polar);
    const double w = std::max(fix.directions[i].peakValue, 1e-9);
    zAcc += w * zk;
    wAcc += w;
  }
  const double zMag = wAcc > 0.0 ? zAcc / wAcc : 0.0;
  // z is measured relative to the rig plane.
  const double zPlane = observations[0].rig.center.z;

  switch (config_.zResolution) {
    case ZResolution::kNonNegative:
      fix.position = {xy.x, xy.y, zPlane + zMag};
      break;
    case ZResolution::kNonPositive:
      fix.position = {xy.x, xy.y, zPlane - zMag};
      break;
    case ZResolution::kBoth:
      fix.position = {xy.x, xy.y, zPlane + zMag};
      fix.mirrorCandidate = geom::Vec3{xy.x, xy.y, zPlane - zMag};
      break;
  }
  return fix;
}

geom::Vec3 Locator::disambiguateZ(const RigObservation& verticalRig,
                                  const geom::Vec3& candidateA,
                                  const geom::Vec3& candidateB) const {
  PowerProfile profile(verticalRig.snapshots, verticalRig.rig.kinematics,
                       config_.profile);
  auto valueFor = [&](const geom::Vec3& candidate) {
    const geom::Vec3 u = (candidate - verticalRig.rig.center).normalized();
    // Projection of the direction onto the rig's x-z rotation plane.
    const double scale = std::hypot(u.x, u.z);
    const double angle = std::atan2(u.z, u.x);
    return profile.evaluateDirection(angle, scale);
  };
  return valueFor(candidateA) >= valueFor(candidateB) ? candidateA
                                                      : candidateB;
}

}  // namespace tagspin::core
