#include "core/locator.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <optional>
#include <random>
#include <stdexcept>

#include "core/power_profile.hpp"
#include "geom/angles.hpp"
#include "obs/span.hpp"

namespace tagspin::core {

Locator::Locator(LocatorConfig config) : config_(config) {}

Locator::Instruments Locator::Instruments::resolve(
    obs::MetricsRegistry* registry) {
  Instruments in;
  if (!registry) return in;
  in.fix2dAttempts = registry->counter("locator.fix2d_attempts");
  in.fix2dOk = registry->counter("locator.fix2d_ok");
  in.fix3dAttempts = registry->counter("locator.fix3d_attempts");
  in.fix3dOk = registry->counter("locator.fix3d_ok");
  in.fallbackMinimal = registry->counter("locator.fallback_minimal");
  in.degraded = registry->counter("locator.degraded");
  in.confidenceDowngrades = registry->counter("locator.confidence_downgrades");
  in.rigsDropped = registry->counter("locator.rigs_dropped");
  in.quarantinedSpins = registry->counter("robust.quarantined_spins");
  in.suspectSpins = registry->counter("robust.suspect_spins");
  in.behindOriginRays = registry->counter("robust.behind_origin_rays");
  in.consensusFixes = registry->counter("robust.consensus_fixes");
  in.bootstrapRuns = registry->counter("robust.bootstrap_runs");
  in.inlierFraction = registry->gauge("robust.inlier_fraction");
  in.ellipseAreaCm2 = registry->gauge("robust.ellipse_area_cm2");
  in.profileEval = registry->histogram("span.profile_eval");
  in.spectrumSearch = registry->histogram("span.spectrum_search");
  in.fix2d = registry->histogram("span.fix2d");
  in.fix3d = registry->histogram("span.fix3d");
  return in;
}

void Locator::setMetrics(obs::MetricsRegistry* registry) {
  obs_ = Instruments::resolve(registry);
}

PowerProfile Locator::timedProfile(const std::vector<Snapshot>& snaps,
                                   const RigSpec& rig,
                                   const ProfileConfig& cfg) const {
  TAGSPIN_SPAN(obs_.profileEval);
  return PowerProfile(snaps, rig.kinematics, cfg);
}

AzimuthEstimate Locator::timedAzimuth(const std::vector<Snapshot>& snaps,
                                      const RigSpec& rig,
                                      const ProfileConfig& cfg) const {
  const PowerProfile profile = timedProfile(snaps, rig, cfg);
  TAGSPIN_SPAN(obs_.spectrumSearch);
  return estimateAzimuth(profile, config_.search);
}

SpatialEstimate Locator::timedSpatial(const std::vector<Snapshot>& snaps,
                                      const RigSpec& rig,
                                      const ProfileConfig& cfg) const {
  std::optional<PowerProfile> profile;
  {
    TAGSPIN_SPAN(obs_.profileEval);
    profile.emplace(snaps, rig.kinematics, cfg);
  }
  TAGSPIN_SPAN(obs_.spectrumSearch);
  return estimateSpatial(*profile, config_.search);
}

/// Fold one resilient fix's degradation report into the locator.* counters.
void Locator::noteResilientOutcome(const ResilienceReport& report) const {
  if (report.grade == FixGrade::kMinimal) obs::add(obs_.fallbackMinimal);
  if (report.grade == FixGrade::kDegraded) obs::add(obs_.degraded);
  if (report.grade != FixGrade::kFull) obs::add(obs_.confidenceDowngrades);
  obs::add(obs_.rigsDropped, report.droppedRigs.size());
  // Quarantined rigs that selectRigs dropped never reach locate2D/3D, so
  // their verdicts are counted here (used rigs are counted per-fix in
  // noteEstimationOutcome).
  for (size_t i : report.droppedRigs) {
    const auto verdict = report.rigHealth[i].spin.verdict;
    if (verdict == robust::SpinVerdict::kQuarantine) {
      obs::add(obs_.quarantinedSpins);
    }
  }
}

void Locator::noteEstimationOutcome(
    const EstimationDiagnostics& estimation) const {
  for (const auto& spin : estimation.spins) {
    if (spin.verdict == robust::SpinVerdict::kSuspect) {
      obs::add(obs_.suspectSpins);
    } else if (spin.verdict == robust::SpinVerdict::kQuarantine) {
      obs::add(obs_.quarantinedSpins);
    }
  }
  obs::add(obs_.behindOriginRays, estimation.behindOriginRays);
  if (estimation.consensusUsed) obs::add(obs_.consensusFixes);
  obs::set(obs_.inlierFraction, estimation.inlierFraction);
}

std::vector<Snapshot> Locator::calibrated(const RigObservation& obs,
                                          double azimuthEstimate) const {
  return calibrateOrientation(obs.snapshots, obs.rig.kinematics,
                              obs.orientation, azimuthEstimate);
}

namespace {

/// The orientation-calibration loop needs a starting azimuth before any
/// correction is available.  The enhanced profile's Gaussian weights assume
/// orientation-free residuals, so the *initial* estimate uses the relative
/// profile Q, which is robust to the (still uncorrected) orientation offset;
/// later iterations switch to the configured formula.
ProfileConfig bootstrapConfig(ProfileConfig base) {
  if (base.formula == ProfileFormula::kEnhancedR) {
    base.formula = ProfileFormula::kRelativeQ;
  }
  return base;
}

}  // namespace

RigDirection Locator::estimateDirection2D(const RigObservation& obs) const {
  const bool calibrate =
      !obs.orientation.isIdentity() && config_.orientationIterations > 0;
  const ProfileConfig firstConfig =
      calibrate ? bootstrapConfig(config_.profile) : config_.profile;
  AzimuthEstimate est = timedAzimuth(obs.snapshots, obs.rig, firstConfig);
  if (calibrate) {
    for (int it = 0; it < config_.orientationIterations; ++it) {
      const std::vector<Snapshot> snaps = calibrated(obs, est.azimuth);
      est = timedAzimuth(snaps, obs.rig, config_.profile);
    }
  }
  return {est.azimuth, 0.0, est.value};
}

RigDirection Locator::estimateDirection3D(const RigObservation& obs) const {
  const bool calibrate =
      !obs.orientation.isIdentity() && config_.orientationIterations > 0;
  const ProfileConfig firstConfig =
      calibrate ? bootstrapConfig(config_.profile) : config_.profile;
  SpatialEstimate est = timedSpatial(obs.snapshots, obs.rig, firstConfig);
  if (calibrate) {
    for (int it = 0; it < config_.orientationIterations; ++it) {
      const std::vector<Snapshot> snaps = calibrated(obs, est.azimuth);
      est = timedSpatial(snaps, obs.rig, config_.profile);
    }
  }
  return {est.azimuth, est.polar, est.value};
}

Locator::RigBearing Locator::diagnoseBearing(const PowerProfile& profile,
                                             double azimuth, double value,
                                             double gamma) const {
  RigBearing bearing;
  bearing.candidates.push_back({geom::wrapTwoPi(azimuth), value});
  if (!config_.robust.diagnostics) return bearing;
  const std::vector<double> samples =
      profile.sampleAzimuth(config_.search.azimuthGridPoints, gamma);
  const double ghost =
      1.0 - profile.weightStats(azimuth, gamma).effectiveFraction;
  bearing.spin = robust::diagnoseSpectrum(samples, ghost,
                                          config_.robust.diagnosticsConfig);
  // Secondary candidates, each polished from grid resolution to search
  // precision; skip anything that duplicates the refined main peak.
  const double gridStep =
      geom::kTwoPi / static_cast<double>(config_.search.azimuthGridPoints);
  const double minSep =
      gridStep * static_cast<double>(std::max<size_t>(
                     config_.search.azimuthGridPoints /
                         config_.robust.diagnosticsConfig
                             .minPeakSeparationDivisor,
                     1));
  for (size_t c = 1; c < bearing.spin.candidates.size(); ++c) {
    const auto& raw = bearing.spin.candidates[c];
    if (geom::circularDistance(raw.angleRad, azimuth) < minSep) continue;
    const AzimuthEstimate refined = refineAzimuthNear(
        profile, raw.angleRad, gridStep, config_.search.refineRounds, gamma);
    bearing.candidates.push_back({refined.azimuth, refined.value});
  }
  return bearing;
}

geom::Vec2 Locator::intersectBearings(
    std::span<const RigObservation> observations,
    std::span<const RigBearing> bearings, std::span<RigDirection> directions,
    EstimationDiagnostics& estimation, double* residualOut) const {
  const size_t n = observations.size();
  // The orientation-calibration loop re-enters here; reset per-ray state.
  estimation.consensusUsed = false;
  estimation.inlierFraction = 1.0;
  estimation.inliers.clear();
  estimation.rayT.clear();
  estimation.behindOriginRays = 0;

  if (config_.robust.consensus && n >= 3) {
    std::vector<robust::BearingObservation> candidates(n);
    for (size_t i = 0; i < n; ++i) {
      candidates[i].origin = observations[i].rig.center.xy();
      candidates[i].candidates = bearings[i].candidates;
    }
    const auto consensus = robust::consensusIntersection(
        candidates, config_.robust.consensusConfig);
    if (consensus) {
      for (size_t i = 0; i < n; ++i) {
        const int c = consensus->chosen[i];
        if (c >= 0) {
          const auto& cand = bearings[i].candidates[static_cast<size_t>(c)];
          directions[i].azimuth = cand.angleRad;
          directions[i].peakValue = cand.value;
        }
      }
      estimation.consensusUsed = true;
      estimation.inlierFraction = consensus->inlierFraction;
      estimation.inliers = consensus->inlier;
      estimation.rayT = consensus->rayT;
      estimation.behindOriginRays = consensus->behindOrigin;
      if (residualOut) *residualOut = consensus->residualM;
      return consensus->position;
    }
    // No two candidate rays support each other (e.g. a near-parallel
    // bundle); fall back to the classic main-peak intersection below.
  }

  std::vector<geom::Ray2> rays;
  rays.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    rays.push_back({observations[i].rig.center.xy(), directions[i].azimuth});
  }
  if (rays.size() == 2) {
    // Two rigs: the exact intersection (the robust form of Eqn. 9; the
    // literal tan()-based intersectEqn9 is *never* on this path -- it goes
    // blind near the tan poles, see the regression test).
    const auto hit = geom::intersectRays(rays[0], rays[1]);
    if (hit) {
      estimation.rayT = {hit->t1, hit->t2};
      estimation.behindOriginRays =
          static_cast<size_t>(hit->t1 < 0.0) +
          static_cast<size_t>(hit->t2 < 0.0);
      if (residualOut) *residualOut = geom::rmsResidual(rays, hit->point);
      return hit->point;
    }
  }
  const auto solved = geom::leastSquaresIntersectionDetailed(rays);
  if (!solved) {
    throw std::runtime_error(
        "locate: rig rays are parallel; reader direction is degenerate");
  }
  estimation.rayT = solved->rayT;
  estimation.behindOriginRays = solved->behindOrigin;
  if (residualOut) *residualOut = geom::rmsResidual(rays, solved->point);
  return solved->point;
}

Fix2D Locator::locate2D(std::span<const RigObservation> observations) const {
  if (observations.size() < 2) {
    throw std::invalid_argument("locate2D: need at least two rigs");
  }
  const bool anyModel =
      config_.orientationIterations > 0 &&
      std::any_of(observations.begin(), observations.end(),
                  [](const RigObservation& o) {
                    return !o.orientation.isIdentity();
                  });

  // Pass 0: bootstrap directions without calibration (Q formula when the
  // enhanced profile is configured -- see bootstrapConfig).
  const ProfileConfig cfg0 =
      anyModel ? bootstrapConfig(config_.profile) : config_.profile;
  Fix2D fix;
  fix.directions.reserve(observations.size());
  std::vector<RigBearing> bearings;
  bearings.reserve(observations.size());
  for (const RigObservation& obs : observations) {
    const PowerProfile profile =
        timedProfile(obs.snapshots, obs.rig, cfg0);
    AzimuthEstimate est;
    {
      TAGSPIN_SPAN(obs_.spectrumSearch);
      est = estimateAzimuth(profile, config_.search);
    }
    fix.directions.push_back({est.azimuth, 0.0, est.value});
    bearings.push_back(diagnoseBearing(profile, est.azimuth, est.value, 0.0));
  }
  fix.position = intersectBearings(observations, bearings, fix.directions,
                                   fix.estimation, &fix.residualM);

  if (anyModel) {
    // Orientation-calibration loop: correct each rig's phases against the
    // current *position* estimate (exact tag-edge geometry), re-estimate.
    for (int it = 0; it < config_.orientationIterations; ++it) {
      const geom::Vec3 est3{fix.position.x, fix.position.y,
                            observations[0].rig.center.z};
      for (size_t i = 0; i < observations.size(); ++i) {
        const RigObservation& obs = observations[i];
        const std::vector<Snapshot> snaps = calibrateOrientationAtPosition(
            obs.snapshots, obs.rig, obs.orientation, est3);
        const PowerProfile profile =
            timedProfile(snaps, obs.rig, config_.profile);
        AzimuthEstimate est;
        {
          TAGSPIN_SPAN(obs_.spectrumSearch);
          est = estimateAzimuth(profile, config_.search);
        }
        fix.directions[i] = {est.azimuth, 0.0, est.value};
        bearings[i] =
            diagnoseBearing(profile, est.azimuth, est.value, 0.0);
      }
      fix.position = intersectBearings(observations, bearings,
                                       fix.directions, fix.estimation,
                                       &fix.residualM);
    }
  }
  for (RigBearing& b : bearings) {
    fix.estimation.spins.push_back(std::move(b.spin));
  }
  if (config_.robust.bootstrap) {
    fix.estimation.ellipse =
        bootstrapEllipse2D(observations, fix.directions, fix.position);
  }
  noteEstimationOutcome(fix.estimation);
  return fix;
}

Fix3D Locator::locate3D(std::span<const RigObservation> observations) const {
  if (observations.size() < 2) {
    throw std::invalid_argument("locate3D: need at least two rigs");
  }
  const bool anyModel =
      config_.orientationIterations > 0 &&
      std::any_of(observations.begin(), observations.end(),
                  [](const RigObservation& o) {
                    return !o.orientation.isIdentity();
                  });

  const ProfileConfig cfg0 =
      anyModel ? bootstrapConfig(config_.profile) : config_.profile;
  Fix3D fix;
  fix.directions.reserve(observations.size());
  std::vector<RigBearing> bearings;
  bearings.reserve(observations.size());
  for (const RigObservation& obs : observations) {
    const PowerProfile profile =
        timedProfile(obs.snapshots, obs.rig, cfg0);
    SpatialEstimate est;
    {
      TAGSPIN_SPAN(obs_.spectrumSearch);
      est = estimateSpatial(profile, config_.search);
    }
    fix.directions.push_back({est.azimuth, est.polar, est.value});
    bearings.push_back(
        diagnoseBearing(profile, est.azimuth, est.value, est.polar));
  }
  geom::Vec2 xy = intersectBearings(observations, bearings, fix.directions,
                                    fix.estimation, &fix.residualM);

  if (anyModel) {
    for (int it = 0; it < config_.orientationIterations; ++it) {
      // rho lives in the rigs' horizontal plane, so only the xy estimate
      // matters for the correction.
      const geom::Vec3 est3{xy.x, xy.y, observations[0].rig.center.z};
      for (size_t i = 0; i < observations.size(); ++i) {
        const RigObservation& obs = observations[i];
        const std::vector<Snapshot> snaps = calibrateOrientationAtPosition(
            obs.snapshots, obs.rig, obs.orientation, est3);
        const PowerProfile profile =
            timedProfile(snaps, obs.rig, config_.profile);
        SpatialEstimate est;
        {
          TAGSPIN_SPAN(obs_.spectrumSearch);
          est = estimateSpatial(profile, config_.search);
        }
        fix.directions[i] = {est.azimuth, est.polar, est.value};
        bearings[i] =
            diagnoseBearing(profile, est.azimuth, est.value, est.polar);
      }
      xy = intersectBearings(observations, bearings, fix.directions,
                             fix.estimation, &fix.residualM);
    }
  }
  for (RigBearing& b : bearings) {
    fix.estimation.spins.push_back(std::move(b.spin));
  }
  if (config_.robust.bootstrap) {
    fix.estimation.ellipse =
        bootstrapEllipse2D(observations, fix.directions, xy);
  }
  noteEstimationOutcome(fix.estimation);

  // Eqn. 13: each rig predicts |z| = horizontal_distance * tan(|gamma|);
  // balance the estimates weighted by spectrum confidence.
  double zAcc = 0.0;
  double wAcc = 0.0;
  for (size_t i = 0; i < observations.size(); ++i) {
    const geom::Vec3& c = observations[i].rig.center;
    const double horiz = (xy - c.xy()).norm();
    const double zk = horiz * std::tan(fix.directions[i].polar);
    const double w = std::max(fix.directions[i].peakValue, 1e-9);
    zAcc += w * zk;
    wAcc += w;
  }
  const double zMag = wAcc > 0.0 ? zAcc / wAcc : 0.0;
  // z is measured relative to the rig plane.
  const double zPlane = observations[0].rig.center.z;

  switch (config_.zResolution) {
    case ZResolution::kNonNegative:
      fix.position = {xy.x, xy.y, zPlane + zMag};
      break;
    case ZResolution::kNonPositive:
      fix.position = {xy.x, xy.y, zPlane - zMag};
      break;
    case ZResolution::kBoth:
      fix.position = {xy.x, xy.y, zPlane + zMag};
      fix.mirrorCandidate = geom::Vec3{xy.x, xy.y, zPlane - zMag};
      break;
  }
  return fix;
}

std::optional<robust::ConfidenceEllipse> Locator::bootstrapEllipse2D(
    std::span<const RigObservation> observations,
    std::span<const RigDirection> directions,
    const geom::Vec2& position) const {
  obs::add(obs_.bootstrapRuns);
  const geom::Vec3 est3{position.x, position.y,
                        observations[0].rig.center.z};
  std::vector<robust::BearingSamples> rays(observations.size());
  for (size_t i = 0; i < observations.size(); ++i) {
    const RigObservation& obs = observations[i];
    rays[i].origin = obs.rig.center.xy();
    rays[i].bearingRad = directions[i].azimuth;
    // Subsample the same (orientation-corrected) snapshots the final
    // bearing came from, so deviations measure estimator noise and not the
    // uncorrected orientation offset.
    const bool calibrate =
        !obs.orientation.isIdentity() && config_.orientationIterations > 0;
    std::vector<Snapshot> corrected;
    if (calibrate) {
      corrected = calibrateOrientationAtPosition(obs.snapshots, obs.rig,
                                                 obs.orientation, est3);
    }
    const std::vector<Snapshot>& snaps =
        calibrate ? corrected : obs.snapshots;
    if (snaps.size() < 16) continue;  // half-samples would be meaningless
    std::mt19937_64 rng(config_.robust.bootstrapSeed ^
                        (0x9E3779B97F4A7C15ULL * (i + 1)));
    std::vector<size_t> idx(snaps.size());
    std::iota(idx.begin(), idx.end(), size_t{0});
    const size_t half = snaps.size() / 2;
    std::vector<Snapshot> subset;
    subset.reserve(half);
    for (int k = 0; k < config_.robust.bearingSubsamples; ++k) {
      std::shuffle(idx.begin(), idx.end(), rng);
      std::sort(idx.begin(), idx.begin() + static_cast<long>(half));
      subset.clear();
      for (size_t j = 0; j < half; ++j) subset.push_back(snaps[idx[j]]);
      const PowerProfile profile(subset, obs.rig.kinematics,
                                 config_.profile);
      const AzimuthEstimate est =
          estimateAzimuthCoarseFine(profile, config_.search);
      rays[i].deviationsRad.push_back(
          geom::wrapToPi(est.azimuth - rays[i].bearingRad));
    }
  }
  robust::BootstrapConfig bc;
  bc.replicates = config_.robust.bootstrapReplicates;
  bc.confidenceLevel = config_.robust.confidenceLevel;
  bc.seed = config_.robust.bootstrapSeed;
  bc.resampleRays = config_.robust.pairsBootstrap;
  const auto ellipse = robust::bootstrapEllipse(rays, position, bc);
  if (ellipse) obs::set(obs_.ellipseAreaCm2, ellipse->areaM2() * 1e4);
  return ellipse;
}

const char* fixGradeName(FixGrade grade) {
  switch (grade) {
    case FixGrade::kFull: return "full";
    case FixGrade::kDegraded: return "degraded";
    case FixGrade::kMinimal: return "minimal";
  }
  return "unknown";
}

namespace {

/// Rank a marginal rig for the 2-rig fallback: coverage and spectrum
/// strength dominate, snapshot count saturates quickly.
double fallbackScore(const RigHealth& h) {
  const double count =
      std::min(static_cast<double>(h.snapshotCount), 64.0) / 64.0;
  return h.arcCoverage * std::max(h.spectrum.peakValue, 1e-6) * count;
}

std::string unhealthyReason(const RigHealth& h,
                            const RigHealthThresholds& t) {
  std::string why;
  if (h.snapshotCount < t.minSnapshots) {
    why += "snapshots " + std::to_string(h.snapshotCount) + " < " +
           std::to_string(t.minSnapshots);
  }
  if (h.arcCoverage < t.minArcCoverage) {
    if (!why.empty()) why += "; ";
    why += "arc coverage " + std::to_string(h.arcCoverage) + " < " +
           std::to_string(t.minArcCoverage);
  }
  if (h.spectrum.peakValue < t.minPeakValue) {
    if (!why.empty()) why += "; ";
    why += "spectrum peak " + std::to_string(h.spectrum.peakValue) + " < " +
           std::to_string(t.minPeakValue);
  }
  if (t.rejectQuarantined &&
      h.spin.verdict == robust::SpinVerdict::kQuarantine) {
    if (!why.empty()) why += "; ";
    why += "spin quarantined (sidelobe ratio " +
           std::to_string(h.spin.peakToSidelobeRatio) + ", ghost score " +
           std::to_string(h.spin.ghostScore) + ")";
  }
  return why.empty() ? "healthy" : why;
}

/// Shared front half of tryLocate2D/3D: health assessment and rig
/// selection.  On success `report` has grade/health/used/dropped filled in
/// (confidence is completed by the caller once directions exist).
Result<ResilienceReport> selectRigs(std::span<const RigObservation> obs,
                                    const RigHealthThresholds& thresholds,
                                    const ProfileConfig& profile,
                                    const RobustEstimationConfig& robustCfg) {
  if (obs.size() < 2) {
    return Error{ErrorCode::kTooFewRigs,
                 "tryLocate: need at least two rigs, got " +
                     std::to_string(obs.size())};
  }
  const robust::SpinDiagnosticsConfig* diag =
      robustCfg.diagnostics ? &robustCfg.diagnosticsConfig : nullptr;
  ResilienceReport report;
  report.rigHealth.reserve(obs.size());
  for (const RigObservation& o : obs) {
    report.rigHealth.push_back(
        assessRigHealth(o.snapshots, o.rig.kinematics, profile, diag));
  }

  std::vector<size_t> healthy;
  for (size_t i = 0; i < obs.size(); ++i) {
    if (isHealthy(report.rigHealth[i], thresholds)) healthy.push_back(i);
  }

  if (healthy.size() >= 2) {
    report.usedRigs = healthy;
    report.grade =
        healthy.size() == obs.size() ? FixGrade::kFull : FixGrade::kDegraded;
  } else {
    // Fallback: the PowerProfile needs >= 2 snapshots and the spectrum must
    // not be flat; among those minimally usable rigs take the best two.
    std::vector<size_t> usable;
    for (size_t i = 0; i < obs.size(); ++i) {
      const RigHealth& h = report.rigHealth[i];
      if (h.snapshotCount >= 2 && h.arcCoverage > 0.0 &&
          h.spectrum.peakValue > 0.0) {
        usable.push_back(i);
      }
    }
    if (usable.size() < 2) {
      return Error{
          ErrorCode::kTooFewHealthyRigs,
          "tryLocate: only " + std::to_string(usable.size()) + " of " +
              std::to_string(obs.size()) +
              " rigs are usable; need two for a fix"};
    }
    std::sort(usable.begin(), usable.end(), [&](size_t a, size_t b) {
      return fallbackScore(report.rigHealth[a]) >
             fallbackScore(report.rigHealth[b]);
    });
    usable.resize(2);
    std::sort(usable.begin(), usable.end());
    report.usedRigs = usable;
    report.grade = FixGrade::kMinimal;
  }

  for (size_t i = 0; i < obs.size(); ++i) {
    if (std::find(report.usedRigs.begin(), report.usedRigs.end(), i) ==
        report.usedRigs.end()) {
      report.droppedRigs.push_back(i);
      report.droppedReasons.push_back(
          unhealthyReason(report.rigHealth[i], thresholds));
    }
  }
  return report;
}

double gradeMultiplier(FixGrade grade) {
  switch (grade) {
    case FixGrade::kFull: return 1.0;
    case FixGrade::kDegraded: return 0.7;
    case FixGrade::kMinimal: return 0.4;
  }
  return 0.0;
}

/// Confidence of a produced fix: spectral quality of the used rigs combined
/// with the bearing GDOP at the fix, scaled by the degradation grade, then
/// penalised for robust-estimation warnings (suspect/quarantined spins
/// among the used rigs, behind-origin rays, consensus outliers).  Clean
/// fixes -- every spin accepted, every ray in front of its rig, full
/// inlier set -- incur no penalty.
double resilientConfidence(const ResilienceReport& report,
                           std::span<const RigObservation> obs,
                           std::span<const RigDirection> directions,
                           const geom::Vec2& position,
                           const EstimationDiagnostics& estimation) {
  std::vector<SpectrumQuality> spectra;
  std::vector<geom::Ray2> rays;
  spectra.reserve(report.usedRigs.size());
  rays.reserve(report.usedRigs.size());
  for (size_t k = 0; k < report.usedRigs.size(); ++k) {
    const size_t i = report.usedRigs[k];
    spectra.push_back(report.rigHealth[i].spectrum);
    rays.push_back({obs[i].rig.center.xy(), directions[k].azimuth});
  }
  const double gdop = bearingGdop(rays, position);
  double penalty = 1.0;
  for (const auto& spin : estimation.spins) {
    if (spin.verdict == robust::SpinVerdict::kSuspect) penalty *= 0.85;
    if (spin.verdict == robust::SpinVerdict::kQuarantine) penalty *= 0.6;
  }
  // A fix behind a rig means at least one bearing is physically impossible
  // (mirror/ghost lobe won the spectrum) -- the satellite fix for the old
  // silent behaviour of leastSquaresIntersection.
  if (estimation.behindOriginRays > 0) penalty *= 0.6;
  if (estimation.consensusUsed) {
    penalty *= 0.5 + 0.5 * estimation.inlierFraction;
  }
  return gradeMultiplier(report.grade) * fixConfidence(spectra, gdop) *
         penalty;
}

std::vector<RigObservation> subsetObservations(
    std::span<const RigObservation> obs, std::span<const size_t> indices) {
  std::vector<RigObservation> out;
  out.reserve(indices.size());
  for (size_t i : indices) out.push_back(obs[i]);
  return out;
}

}  // namespace

Result<ResilientFix2D> Locator::tryLocate2D(
    std::span<const RigObservation> observations,
    const RigHealthThresholds& thresholds) const {
  obs::add(obs_.fix2dAttempts);
  TAGSPIN_SPAN(obs_.fix2d);
  Result<ResilienceReport> selected =
      selectRigs(observations, thresholds, config_.profile, config_.robust);
  if (!selected) return selected.error();
  ResilientFix2D out;
  out.report = std::move(*selected);
  const std::vector<RigObservation> used =
      subsetObservations(observations, out.report.usedRigs);
  try {
    out.fix = locate2D(used);
  } catch (const std::exception& e) {
    return Error{ErrorCode::kDegenerateGeometry, e.what()};
  }
  out.report.confidence =
      resilientConfidence(out.report, observations, out.fix.directions,
                          out.fix.position, out.fix.estimation);
  obs::add(obs_.fix2dOk);
  noteResilientOutcome(out.report);
  return out;
}

Result<ResilientFix3D> Locator::tryLocate3D(
    std::span<const RigObservation> observations,
    const RigHealthThresholds& thresholds) const {
  obs::add(obs_.fix3dAttempts);
  TAGSPIN_SPAN(obs_.fix3d);
  Result<ResilienceReport> selected =
      selectRigs(observations, thresholds, config_.profile, config_.robust);
  if (!selected) return selected.error();
  ResilientFix3D out;
  out.report = std::move(*selected);
  const std::vector<RigObservation> used =
      subsetObservations(observations, out.report.usedRigs);
  try {
    out.fix = locate3D(used);
  } catch (const std::exception& e) {
    return Error{ErrorCode::kDegenerateGeometry, e.what()};
  }
  out.report.confidence =
      resilientConfidence(out.report, observations, out.fix.directions,
                          out.fix.position.xy(), out.fix.estimation);
  obs::add(obs_.fix3dOk);
  noteResilientOutcome(out.report);
  return out;
}

geom::Vec3 Locator::disambiguateZ(const RigObservation& verticalRig,
                                  const geom::Vec3& candidateA,
                                  const geom::Vec3& candidateB) const {
  PowerProfile profile(verticalRig.snapshots, verticalRig.rig.kinematics,
                       config_.profile);
  auto valueFor = [&](const geom::Vec3& candidate) {
    const geom::Vec3 u = (candidate - verticalRig.rig.center).normalized();
    // Projection of the direction onto the rig's x-z rotation plane.
    const double scale = std::hypot(u.x, u.z);
    const double angle = std::atan2(u.z, u.x);
    return profile.evaluateDirection(angle, scale);
  };
  return valueFor(candidateA) >= valueFor(candidateB) ? candidateA
                                                      : candidateB;
}

}  // namespace tagspin::core
