// Persistence for deployment state: rig registrations and fitted
// orientation models survive server restarts as human-readable text.
//
// Format: one "key = value" pair per line, '#' comments, sections started
// by "[type name]" headers.  Deliberately dependency-free and diff-able --
// deployment files live in version control.
#pragma once

#include <iosfwd>
#include <map>
#include <string>

#include "core/orientation_calibration.hpp"
#include "core/snapshot.hpp"
#include "rfid/epc.hpp"

namespace tagspin::core {

/// Everything the localization server needs to come back up: rigs keyed by
/// EPC, plus any fitted orientation models.
struct DeploymentFile {
  std::map<rfid::Epc, RigSpec> rigs;
  std::map<rfid::Epc, RigSpec> verticalRigs;
  std::map<rfid::Epc, OrientationModel> orientationModels;
};

/// Serialize / parse the deployment.  Parsing throws std::invalid_argument
/// with a line number on malformed input.
void writeDeployment(std::ostream& out, const DeploymentFile& deployment);
DeploymentFile readDeployment(std::istream& in);

/// Convenience: (de)serialize through strings.
std::string deploymentToString(const DeploymentFile& deployment);
DeploymentFile deploymentFromString(const std::string& text);

/// Orientation models alone (the prelude's output artifact).
void writeOrientationModel(std::ostream& out, const OrientationModel& model);
OrientationModel readOrientationModel(std::istream& in);

}  // namespace tagspin::core
