// Persistence for deployment state: rig registrations and fitted
// orientation models survive server restarts as human-readable text.
//
// Format: one "key = value" pair per line, '#' comments, sections started
// by "[type name]" headers.  Deliberately dependency-free and diff-able --
// deployment files live in version control.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "core/orientation_calibration.hpp"
#include "core/snapshot.hpp"
#include "rfid/epc.hpp"

namespace tagspin::core {

/// Everything the localization server needs to come back up: rigs keyed by
/// EPC, plus any fitted orientation models.
struct DeploymentFile {
  std::map<rfid::Epc, RigSpec> rigs;
  std::map<rfid::Epc, RigSpec> verticalRigs;
  std::map<rfid::Epc, OrientationModel> orientationModels;
};

/// Serialize / parse the deployment.  Parsing throws std::invalid_argument
/// with a line number on malformed input.
void writeDeployment(std::ostream& out, const DeploymentFile& deployment);
DeploymentFile readDeployment(std::istream& in);

/// Convenience: (de)serialize through strings.
std::string deploymentToString(const DeploymentFile& deployment);
DeploymentFile deploymentFromString(const std::string& text);

/// Orientation models alone (the prelude's output artifact).
void writeOrientationModel(std::ostream& out, const OrientationModel& model);
OrientationModel readOrientationModel(std::istream& in);

/// Per-tag calibration progress as checkpointed by the session runtime:
/// the snapshots accumulated so far (a spin interrupted mid-revolution
/// resumes from exactly these), the fitted Fourier orientation model when
/// one exists, and an optional partial angle spectrum (dense azimuth
/// samples of the rig's power profile at checkpoint time -- a warm-start
/// and post-mortem artifact).
struct TagCalibrationProgress {
  std::vector<Snapshot> snapshots;
  bool hasOrientationModel = false;
  OrientationModel orientationModel;
  std::vector<double> angleSpectrum;
};

/// The most recent successful fix, persisted so an operator (or the
/// restarted runtime) can see where the reader was last placed -- position,
/// confidence, and the robust-estimation summary including the bootstrap
/// confidence ellipse when one was computed.
struct FixRecord {
  bool valid = false;
  double x = 0.0;
  double y = 0.0;
  double confidence = 0.0;
  double inlierFraction = 1.0;
  uint64_t quarantinedSpins = 0;
  bool hasEllipse = false;
  double ellipseSemiMajorM = 0.0;
  double ellipseSemiMinorM = 0.0;
  double ellipseOrientationRad = 0.0;
  double ellipseConfidence = 0.0;
  /// Tracking continuation (written when a tracker was live at checkpoint
  /// time).  Old checkpoints simply omit these keys and load with the
  /// defaults -- the restarted tracker re-initializes from the next fix.
  bool hasVelocity = false;
  double velocityX = 0.0;  // m/s
  double velocityY = 0.0;
  bool hasTrack = false;
  double trackTimeS = 0.0;   // estimate timestamp (reader clock)
  uint32_t trackState = 0;   // numeric track::TrackState
  uint32_t trackModel = 0;   // numeric track::MotionModelId
};

/// Everything the supervised runtime persists between crashes.  The
/// sequence number increases with every save, so a stale file is
/// recognizable; lastReportTimestampS is the reader-clock high watermark
/// of the ingested stream.
struct CalibrationCheckpoint {
  uint64_t sequence = 0;
  double wallTimeS = 0.0;
  double lastReportTimestampS = 0.0;
  FixRecord lastFix;
  std::map<rfid::Epc, TagCalibrationProgress> tags;
};

/// Serialize / parse a checkpoint in the same text dialect as deployment
/// files.  Parsing throws std::invalid_argument with a line number on
/// malformed input (including a snapshot count that does not match its
/// declared snapshot_count -- a text-level truncation tell).  File-level
/// integrity (CRC, atomic replace) is layered on top by
/// runtime::CheckpointStore.
void writeCheckpoint(std::ostream& out, const CalibrationCheckpoint& ckpt);
CalibrationCheckpoint readCheckpoint(std::istream& in);
std::string checkpointToString(const CalibrationCheckpoint& ckpt);
CalibrationCheckpoint checkpointFromString(const std::string& text);

}  // namespace tagspin::core
