// Direct holographic localization -- the SAR alternative the paper's
// related-work section discusses (Miesen et al., "Holographic localization
// of passive UHF RFID transponders"; Tagoram's differential hologram).
//
// Instead of reducing each rig to a *direction* and intersecting rays,
// the hologram scores every candidate reader position directly: for a
// candidate p, each snapshot predicts a relative phase from the exact
// tag-edge-to-p distance, and the coherent sum over snapshots (per channel,
// per rig) measures how well p explains the data.  Because exact distances
// are used, the hologram exploits wavefront curvature: it can range a
// reader with a single rig at close distances where the far-field
// angle-only model cannot.
//
// Tagspin's angle-spectrum method remains the paper's contribution; the
// hologram is provided as the natural upper-baseline for the ablation in
// bench/fig_ablation2 and as a practical option for close-range use.
#pragma once

#include <span>
#include <vector>

#include "core/config.hpp"
#include "core/locator.hpp"
#include "core/snapshot.hpp"
#include "geom/vec.hpp"

namespace tagspin::core {

struct HologramConfig {
  /// Candidate grid bounds (metres) and resolution of the coarse pass.
  double xMin = -2.0;
  double xMax = 2.0;
  double yMin = 0.3;
  double yMax = 3.5;
  double coarseStepM = 0.05;
  int refineRounds = 8;
  /// Combine per-rig holograms multiplicatively (geometric mean) rather
  /// than additively; multiplicative fusion suppresses positions that any
  /// single rig contradicts.
  bool multiplicative = true;
};

class Hologram {
 public:
  /// Builds the hologram over the given rig observations (>= 1 rig; exact
  /// tag positions are derived from each rig's kinematics).  Throws
  /// std::invalid_argument when no usable observation is provided.
  Hologram(std::span<const RigObservation> observations,
           HologramConfig config = {});

  /// Hologram intensity at a candidate point (z = rig plane), in [0, 1].
  double intensity(const geom::Vec2& candidate) const;

  /// Argmax over the configured grid with local refinement.
  Fix2D locate() const;

  /// Dense sampling for visualisation: row-major [ny][nx] intensities.
  std::vector<std::vector<double>> sample(size_t nx, size_t ny) const;

  const HologramConfig& config() const { return config_; }

 private:
  struct Entry {
    geom::Vec3 tagPos;   // exact tag position at the snapshot time
    double k = 0.0;      // 4*pi/lambda
    double relPhase = 0.0;
    double refK = 0.0;
    geom::Vec3 refTagPos;
    int group = 0;       // (rig, channel) coherence group
  };

  HologramConfig config_;
  int groupCount_ = 0;
  std::vector<Entry> entries_;
};

}  // namespace tagspin::core
