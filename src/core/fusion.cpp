#include "core/fusion.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace tagspin::core {

namespace {

template <typename Vec>
Vec weiszfeld(std::span<const Vec> points, const FusionConfig& config) {
  if (points.empty()) {
    throw std::invalid_argument("geometricMedian: empty input");
  }
  if (points.size() == 1) return points[0];
  // Start from the centroid.
  Vec estimate{};
  for (const Vec& p : points) estimate += p;
  estimate = estimate / static_cast<double>(points.size());

  for (int it = 0; it < config.maxIterations; ++it) {
    Vec acc{};
    double wAcc = 0.0;
    bool onDataPoint = false;
    for (const Vec& p : points) {
      const double d = geom::distance(estimate, p);
      if (d < config.toleranceM) {
        // Weiszfeld guard: the estimate sits on a data point; it is the
        // median iff the sum of unit vectors to the others has norm <= 1.
        onDataPoint = true;
        continue;
      }
      const double w = 1.0 / d;
      acc += p * w;
      wAcc += w;
    }
    if (wAcc == 0.0) return estimate;  // all points coincide here
    Vec next = acc / wAcc;
    if (onDataPoint) {
      // Pull slightly toward the data point it sits on (standard fix).
      next = (next + estimate) / 2.0;
    }
    if (geom::distance(next, estimate) < config.toleranceM) return next;
    estimate = next;
  }
  return estimate;
}

double medianOf(std::vector<double> xs) {
  const size_t mid = xs.size() / 2;
  std::nth_element(xs.begin(), xs.begin() + static_cast<long>(mid), xs.end());
  const double hi = xs[mid];
  if (xs.size() % 2 == 1) return hi;
  std::nth_element(xs.begin(), xs.begin() + static_cast<long>(mid) - 1,
                   xs.end());
  return (hi + xs[mid - 1]) / 2.0;
}

}  // namespace

geom::Vec2 geometricMedian(std::span<const geom::Vec2> points,
                           const FusionConfig& config) {
  return weiszfeld(points, config);
}

geom::Vec3 geometricMedian(std::span<const geom::Vec3> points,
                           const FusionConfig& config) {
  return weiszfeld(points, config);
}

geom::Vec2 componentMedian(std::span<const geom::Vec2> points) {
  if (points.empty()) {
    throw std::invalid_argument("componentMedian: empty input");
  }
  std::vector<double> xs, ys;
  for (const geom::Vec2& p : points) {
    xs.push_back(p.x);
    ys.push_back(p.y);
  }
  return {medianOf(std::move(xs)), medianOf(std::move(ys))};
}

geom::Vec3 componentMedian(std::span<const geom::Vec3> points) {
  if (points.empty()) {
    throw std::invalid_argument("componentMedian: empty input");
  }
  std::vector<double> xs, ys, zs;
  for (const geom::Vec3& p : points) {
    xs.push_back(p.x);
    ys.push_back(p.y);
    zs.push_back(p.z);
  }
  return {medianOf(std::move(xs)), medianOf(std::move(ys)),
          medianOf(std::move(zs))};
}

}  // namespace tagspin::core
