#include "core/spectrum.hpp"

#include <algorithm>
#include <cmath>

#include "dsp/grid.hpp"
#include "geom/angles.hpp"

namespace tagspin::core {

AzimuthEstimate estimateAzimuth(const PowerProfile& profile,
                                const SearchConfig& search) {
  const auto best = dsp::maximizeCircular(
      [&](double phi) { return profile.evaluate(phi); },
      search.azimuthGridPoints, search.refineRounds);
  return {best.x, best.value};
}

AzimuthEstimate estimateAzimuthCoarseFine(const PowerProfile& profile,
                                          const SearchConfig& search) {
  const auto best = dsp::maximizeCircularCoarseFine(
      [&](double phi) { return profile.evaluate(phi); },
      search.azimuthGridPoints / 8, 64, search.refineRounds);
  return {best.x, best.value};
}

AzimuthEstimate refineAzimuthNear(const PowerProfile& profile, double seedRad,
                                  double halfSpanRad, int refineRounds,
                                  double gamma) {
  double bestX = seedRad;
  double bestV = profile.evaluate(seedRad, gamma);
  constexpr int kGridHalf = 8;
  for (int i = -kGridHalf; i <= kGridHalf; ++i) {
    if (i == 0) continue;
    const double x =
        seedRad + halfSpanRad * static_cast<double>(i) / kGridHalf;
    const double v = profile.evaluate(x, gamma);
    if (v > bestV) {
      bestX = x;
      bestV = v;
    }
  }
  double halfSpan = halfSpanRad / kGridHalf;
  for (int round = 0; round < refineRounds; ++round) {
    const double candidates[4] = {bestX - halfSpan, bestX - halfSpan / 2.0,
                                  bestX + halfSpan / 2.0, bestX + halfSpan};
    for (double c : candidates) {
      const double v = profile.evaluate(c, gamma);
      if (v > bestV) {
        bestX = c;
        bestV = v;
      }
    }
    halfSpan /= 2.0;
  }
  return {geom::wrapTwoPi(bestX), bestV};
}

SpatialEstimate estimateSpatial(const PowerProfile& profile,
                                const SearchConfig& search) {
  // The profile depends on gamma only through cos(gamma), so it is exactly
  // mirror-symmetric about the horizontal plane (the paper's two symmetric
  // peaks); searching the non-negative half suffices.
  const double lo = std::max(search.polarMin, 0.0);
  const double hi = std::max(search.polarMax, lo);
  const auto best = dsp::maximizeRect(
      [&](double phi, double gamma) { return profile.evaluate(phi, gamma); },
      lo, hi, search.azimuthGridPoints / 2,
      std::max<size_t>(search.polarGridPoints / 2, 2), search.refineRounds);
  return {best.x, std::abs(best.y), best.value};
}

}  // namespace tagspin::core
