// Injectable memory environment -- the allocation twin of io_env.hpp.
//
// Every layer that buffers unboundedly (fleet pending-fix queues, capture
// replay streams, tracker histories) assumed allocation always succeeds;
// one memory-pressure event would take down the whole process instead of
// one session.  The fix mirrors the I/O seam: production code accounts its
// growth against a `MemEnv` it was handed, a passthrough `PosixMemEnv`
// grants everything (nullptr => zero behavior change, bit-identical to the
// pre-seam baseline), and sim::SimMemEnv denies reservations on a seeded
// schedule so eval/oom.* can explore every allocation-failure point the
// way eval/crash.* explores every crash point.
//
// The contract is *accounting*, not interposition: components reserve an
// estimate of the bytes a growth step will cost BEFORE growing, and release
// when the memory is returned.  A denied reservation is not an error
// condition to throw through -- it is a signal to shed (trim history, spill
// a buffer, refuse one report, quarantine one session) and keep serving.
// `tryReserve` never throws; `release` never fails.
//
// `MemArena` is the per-domain ledger (one per fleet shard, replay session,
// capture writer): it enforces its own byte budget first, then charges the
// shared environment, so "this shard stays under 16 MiB" and "the process
// stays under its cgroup" compose.  `BudgetAllocator<T>` adapts an arena to
// the STL for containers that should fail via the arena instead of the
// global heap; `MemReservation` is the RAII form for one-shot reservations
// (a replay stream's wire image) so teardown can never leak accounting.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>
#include <string>
#include <utility>

namespace tagspin::core {

struct MemEnvStats {
  uint64_t reserves = 0;       // tryReserve calls that were granted
  uint64_t denials = 0;        // tryReserve calls that were refused
  uint64_t usedBytes = 0;      // currently reserved
  uint64_t peakBytes = 0;      // high-watermark of usedBytes
  uint64_t budgetBytes = 0;    // 0 = unlimited
};

/// Abstract memory environment.  Implementations must make `tryReserve`
/// and `release` safe to call from multiple threads (fleet shards account
/// concurrently); neither may throw.
class MemEnv {
 public:
  virtual ~MemEnv() = default;

  /// Try to reserve `bytes` against the environment.  Returns false when
  /// the reservation is denied; the caller must shed instead of growing.
  virtual bool tryReserve(uint64_t bytes) = 0;

  /// Return `bytes` previously reserved.  Never fails; implementations
  /// may flag over-release (returning bytes never reserved) as a bug.
  virtual void release(uint64_t bytes) = 0;

  virtual MemEnvStats stats() const = 0;
};

/// Passthrough environment: grants every reservation (unless constructed
/// with a budget) and keeps atomic accounting so operators can read real
/// usage through the same gauges the simulated runs use.
class PosixMemEnv final : public MemEnv {
 public:
  /// budgetBytes == 0 means unlimited -- the pure passthrough used when a
  /// component is handed a null MemEnv*.
  explicit PosixMemEnv(uint64_t budgetBytes = 0) : budget_(budgetBytes) {}

  bool tryReserve(uint64_t bytes) override;
  void release(uint64_t bytes) override;
  MemEnvStats stats() const override;

 private:
  const uint64_t budget_;
  std::atomic<uint64_t> used_{0};
  std::atomic<uint64_t> peak_{0};
  std::atomic<uint64_t> reserves_{0};
  std::atomic<uint64_t> denials_{0};
};

/// The process-wide unlimited passthrough environment.
MemEnv& passthroughMem();

/// Resolve an optional environment: components take a `MemEnv*` that
/// defaults to nullptr and call `resolveMem` at the accounting site, so
/// "no environment configured" and "passthrough environment" behave
/// bit-identically.
inline MemEnv& resolveMem(MemEnv* mem) {
  return mem ? *mem : passthroughMem();
}

/// Per-domain byte ledger.  A default-constructed arena is *detached*:
/// every reservation is granted and nothing is accounted -- the zero-cost
/// state for callers that keep an arena member unconditionally.  An
/// attached arena enforces its own budget (0 = unlimited) and then charges
/// the environment; a denial from either leaves the arena unchanged.
/// Outstanding bytes are returned to the environment on destruction so a
/// dropped arena can never strand accounting.
///
/// Not thread-safe: an arena belongs to one domain (one shard, one
/// session) and is only touched from that domain's thread, matching how
/// FleetManager hands each shard to exactly one worker per tick.
class MemArena {
 public:
  MemArena() = default;
  MemArena(MemEnv* env, uint64_t budgetBytes, std::string domain = {})
      : env_(env), budget_(budgetBytes), domain_(std::move(domain)),
        attached_(env != nullptr || budgetBytes > 0) {}
  ~MemArena() { reset(); }

  MemArena(const MemArena&) = delete;
  MemArena& operator=(const MemArena&) = delete;
  MemArena(MemArena&& other) noexcept { *this = std::move(other); }
  MemArena& operator=(MemArena&& other) noexcept;

  bool tryReserve(uint64_t bytes);
  void release(uint64_t bytes);

  /// Drop all outstanding accounting (returned to the environment).
  void reset();

  bool attached() const { return attached_; }
  uint64_t usedBytes() const { return used_; }
  uint64_t peakBytes() const { return peak_; }
  uint64_t budgetBytes() const { return budget_; }
  uint64_t denials() const { return denials_; }
  const std::string& domain() const { return domain_; }

  /// used/budget in [0,inf); 0 when the arena has no budget.  This is the
  /// signal the fleet's memory shed ladder switches on.
  double pressure() const {
    return budget_ > 0 ? double(used_) / double(budget_) : 0.0;
  }

 private:
  MemEnv* env_ = nullptr;
  uint64_t budget_ = 0;
  std::string domain_;
  bool attached_ = false;
  uint64_t used_ = 0;
  uint64_t peak_ = 0;
  uint64_t denials_ = 0;
};

/// RAII handle for a one-shot reservation already granted by `arena`
/// (e.g. a replay stream's wire image): releases on destruction, so the
/// accounting follows the object's lifetime exactly.
class MemReservation {
 public:
  MemReservation() = default;
  MemReservation(MemArena* arena, uint64_t bytes)
      : arena_(arena), bytes_(bytes) {}
  ~MemReservation() { release(); }

  MemReservation(const MemReservation&) = delete;
  MemReservation& operator=(const MemReservation&) = delete;
  MemReservation(MemReservation&& other) noexcept { *this = std::move(other); }
  MemReservation& operator=(MemReservation&& other) noexcept {
    if (this != &other) {
      release();
      arena_ = other.arena_;
      bytes_ = other.bytes_;
      other.arena_ = nullptr;
      other.bytes_ = 0;
    }
    return *this;
  }

  uint64_t bytes() const { return bytes_; }

  void release() {
    if (arena_ && bytes_ > 0) arena_->release(bytes_);
    arena_ = nullptr;
    bytes_ = 0;
  }

 private:
  MemArena* arena_ = nullptr;
  uint64_t bytes_ = 0;
};

/// STL-compatible allocator charging an arena.  Containers built on it
/// fail allocation by the arena's rules (budget or injected denial) with a
/// regular bad_alloc, which the fleet worker boundary converts to a
/// quarantine instead of a process death.  A null arena degrades to the
/// global allocator.
template <typename T>
class BudgetAllocator {
 public:
  using value_type = T;

  BudgetAllocator() = default;
  explicit BudgetAllocator(MemArena* arena) : arena_(arena) {}
  template <typename U>
  BudgetAllocator(const BudgetAllocator<U>& other) : arena_(other.arena()) {}

  T* allocate(std::size_t n) {
    const uint64_t bytes = uint64_t(n) * sizeof(T);
    if (arena_ && !arena_->tryReserve(bytes)) throw std::bad_alloc();
    return static_cast<T*>(::operator new(n * sizeof(T)));
  }

  void deallocate(T* p, std::size_t n) noexcept {
    ::operator delete(p);
    if (arena_) arena_->release(uint64_t(n) * sizeof(T));
  }

  MemArena* arena() const { return arena_; }

 private:
  MemArena* arena_ = nullptr;
};

template <typename T, typename U>
bool operator==(const BudgetAllocator<T>& a, const BudgetAllocator<U>& b) {
  return a.arena() == b.arena();
}
template <typename T, typename U>
bool operator!=(const BudgetAllocator<T>& a, const BudgetAllocator<U>& b) {
  return !(a == b);
}

}  // namespace tagspin::core
