// Typed error taxonomy for the ingestion/localization pipeline.
//
// The strict APIs (extractSnapshots, Locator::locate2D/3D, llrp::decodeStream)
// throw untyped std::runtime_error/std::invalid_argument, which is fine for
// tests but useless to a production caller that must decide *what to do* --
// retry the interrogation, page an operator about a dead rig, or accept a
// degraded fix.  The resilient entry points (tryLocate2D/3D,
// extractSnapshotsRobust) return Result<T> carrying an ErrorCode instead, so
// failure causes are machine-readable and never escape as exceptions.
#pragma once

#include <string>
#include <utility>
#include <variant>

namespace tagspin::core {

enum class ErrorCode {
  kNone = 0,
  /// The report stream holds no usable report for a requested EPC.
  kNoReports,
  /// Fewer than two registered rigs were heard at all.
  kTooFewRigs,
  /// Rigs were heard but fewer than two pass the health thresholds (and the
  /// minimal 2-rig fallback is impossible too).
  kTooFewHealthyRigs,
  /// Rig bearing rays are (anti)parallel; the intersection is unbounded.
  kDegenerateGeometry,
  /// A binary trace could not be decoded at all (no valid frame).
  kMalformedFrame,
  /// Snapshot timestamps could not be repaired into a monotone sequence.
  kNonMonotonicTime,
  /// Arc/duration coverage too low for a meaningful spectrum.
  kInsufficientCoverage,
  /// No checkpoint file exists (fresh start, not an error in itself).
  kCheckpointMissing,
  /// A checkpoint file exists but fails its integrity checks (bad CRC,
  /// truncation, malformed payload) -- resume must fall back to empty.
  kCheckpointCorrupt,
  /// A memory reservation was denied (budget exhausted or injected
  /// failure); the caller should shed, spill, or refuse -- not crash.
  kOutOfMemory,
  /// Anything that indicates a bug rather than bad input.
  kInternal,
};

/// Stable machine-readable name ("too_few_rigs", ...) for logs and JSON.
const char* errorCodeName(ErrorCode code);

struct Error {
  ErrorCode code = ErrorCode::kInternal;
  std::string message;
};

/// Minimal expected-like carrier: either a T or an Error.  Deliberately tiny
/// -- no monadic surface, just construction and checked access.
template <typename T>
class Result {
 public:
  Result(T value) : v_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Error error) : v_(std::move(error)) {}  // NOLINT(google-explicit-constructor)

  static Result ok(T value) { return Result(std::move(value)); }
  static Result fail(ErrorCode code, std::string message) {
    return Result(Error{code, std::move(message)});
  }

  bool hasValue() const { return std::holds_alternative<T>(v_); }
  explicit operator bool() const { return hasValue(); }

  /// Checked access; call only after hasValue() (asserts via std::get).
  T& value() { return std::get<T>(v_); }
  const T& value() const { return std::get<T>(v_); }
  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  const Error& error() const { return std::get<Error>(v_); }
  ErrorCode code() const {
    return hasValue() ? ErrorCode::kNone : error().code;
  }

 private:
  std::variant<T, Error> v_;
};

inline const char* errorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kNone: return "none";
    case ErrorCode::kNoReports: return "no_reports";
    case ErrorCode::kTooFewRigs: return "too_few_rigs";
    case ErrorCode::kTooFewHealthyRigs: return "too_few_healthy_rigs";
    case ErrorCode::kDegenerateGeometry: return "degenerate_geometry";
    case ErrorCode::kMalformedFrame: return "malformed_frame";
    case ErrorCode::kNonMonotonicTime: return "non_monotonic_time";
    case ErrorCode::kInsufficientCoverage: return "insufficient_coverage";
    case ErrorCode::kCheckpointMissing: return "checkpoint_missing";
    case ErrorCode::kCheckpointCorrupt: return "checkpoint_corrupt";
    case ErrorCode::kOutOfMemory: return "out_of_memory";
    case ErrorCode::kInternal: return "internal";
  }
  return "unknown";
}

}  // namespace tagspin::core
