// Multi-round fix fusion.
//
// The paper repeats each localization "over 10 times" per setting; a
// deployment does the same, interrogating in rounds and fusing the fixes.
// The right aggregate for fixes with occasional gross errors (sidelobe
// picks, interference bursts) is the geometric median -- it has a 50%
// breakdown point, unlike the mean which a single bad round can drag
// arbitrarily far.
#pragma once

#include <span>

#include "geom/vec.hpp"

namespace tagspin::core {

struct FusionConfig {
  int maxIterations = 100;
  double toleranceM = 1e-6;
};

/// Geometric median (Weiszfeld's algorithm with the standard fixed-point
/// guard).  One point returns itself; throws std::invalid_argument on an
/// empty span.
geom::Vec2 geometricMedian(std::span<const geom::Vec2> points,
                           const FusionConfig& config = {});
geom::Vec3 geometricMedian(std::span<const geom::Vec3> points,
                           const FusionConfig& config = {});

/// Componentwise median; cheaper, nearly as robust for small batches.
geom::Vec2 componentMedian(std::span<const geom::Vec2> points);
geom::Vec3 componentMedian(std::span<const geom::Vec3> points);

}  // namespace tagspin::core
