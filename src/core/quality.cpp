#include "core/quality.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "dsp/peaks.hpp"
#include "geom/angles.hpp"

namespace tagspin::core {

SpectrumQuality assessSpectrum(const PowerProfile& profile,
                               size_t gridPoints) {
  const std::vector<double> samples = profile.sampleAzimuth(gridPoints);
  return assessSpectrumSamples(samples);
}

SpectrumQuality assessSpectrumSamples(std::span<const double> samples) {
  const size_t gridPoints = samples.size();
  const auto peaks = dsp::findPeaks(samples, /*circular=*/true,
                                    /*minSeparation=*/gridPoints / 36);
  SpectrumQuality q;
  if (peaks.empty()) {
    // Pathologically flat profile.
    q.peakValue = samples.empty() ? 0.0 : samples[dsp::argmax(samples)];
    q.halfPowerWidthDeg = 360.0;
    q.peakRatio = 1.0;
    return q;
  }
  q.peakValue = peaks[0].value;
  q.halfPowerWidthDeg =
      dsp::halfPowerWidth(samples, peaks[0].index, /*circular=*/true) *
      360.0 / static_cast<double>(gridPoints);
  q.peakRatio = peaks.size() > 1
                    ? peaks[0].value / std::max(peaks[1].value, 1e-12)
                    : std::numeric_limits<double>::infinity();
  return q;
}

robust::SpinDiagnostics diagnoseSpin(
    const PowerProfile& profile, size_t gridPoints, double gamma,
    const robust::SpinDiagnosticsConfig& config) {
  const std::vector<double> samples =
      profile.sampleAzimuth(gridPoints, gamma);
  double ghost = 0.0;
  if (!samples.empty()) {
    const double peakPhi = geom::kTwoPi *
                           static_cast<double>(dsp::argmax(samples)) /
                           static_cast<double>(samples.size());
    ghost = 1.0 - profile.weightStats(peakPhi, gamma).effectiveFraction;
  }
  return robust::diagnoseSpectrum(samples, ghost, config);
}

double bearingGdop(std::span<const geom::Ray2> rays, const geom::Vec2& fix) {
  // Normal equations A p = b with per-ray normals n_i; a bearing error
  // dphi_i displaces ray i's line by D_i * dphi_i at the fix, so
  // Cov(p) = A^{-1} (sum D_i^2 n n^T) A^{-1} for unit-variance errors.
  double a00 = 0.0, a01 = 0.0, a11 = 0.0;
  double b00 = 0.0, b01 = 0.0, b11 = 0.0;
  for (const geom::Ray2& r : rays) {
    const geom::Vec2 d = r.direction();
    const geom::Vec2 n{-d.y, d.x};
    const double dist2 = (fix - r.origin).norm2();
    a00 += n.x * n.x;
    a01 += n.x * n.y;
    a11 += n.y * n.y;
    b00 += dist2 * n.x * n.x;
    b01 += dist2 * n.x * n.y;
    b11 += dist2 * n.y * n.y;
  }
  const double det = a00 * a11 - a01 * a01;
  if (std::abs(det) < 1e-12) {
    return std::numeric_limits<double>::infinity();
  }
  // Ainv = [a11 -a01; -a01 a00] / det;  Cov = Ainv * B * Ainv.
  const double i00 = a11 / det, i01 = -a01 / det, i11 = a00 / det;
  // M = Ainv * B
  const double m00 = i00 * b00 + i01 * b01;
  const double m01 = i00 * b01 + i01 * b11;
  const double m10 = i01 * b00 + i11 * b01;
  const double m11 = i01 * b01 + i11 * b11;
  // Cov = M * Ainv; trace only.
  const double c00 = m00 * i00 + m01 * i01;
  const double c11 = m10 * i01 + m11 * i11;
  const double trace = c00 + c11;
  return trace > 0.0 ? std::sqrt(trace)
                     : std::numeric_limits<double>::infinity();
}

RigHealth assessRigHealth(std::span<const Snapshot> snapshots,
                          const RigKinematics& kinematics,
                          const ProfileConfig& profile,
                          const robust::SpinDiagnosticsConfig* diagnostics) {
  RigHealth h;
  h.snapshotCount = snapshots.size();
  if (snapshots.empty()) return h;
  double tMin = snapshots.front().timeS;
  double tMax = snapshots.front().timeS;
  constexpr int kBins = 24;
  bool occupied[kBins] = {};
  for (const Snapshot& s : snapshots) {
    tMin = std::min(tMin, s.timeS);
    tMax = std::max(tMax, s.timeS);
    const double a = geom::wrapTwoPi(kinematics.diskAngle(s.timeS));
    int bin = static_cast<int>(a / geom::kTwoPi * kBins);
    bin = std::clamp(bin, 0, kBins - 1);
    occupied[bin] = true;
  }
  h.durationS = tMax - tMin;
  int filled = 0;
  for (bool b : occupied) filled += b ? 1 : 0;
  h.arcCoverage = static_cast<double>(filled) / kBins;
  if (snapshots.size() >= 2) {
    const PowerProfile p(snapshots, kinematics, profile);
    constexpr size_t kGridPoints = 720;
    const std::vector<double> samples = p.sampleAzimuth(kGridPoints);
    h.spectrum = assessSpectrumSamples(samples);
    if (diagnostics != nullptr) {
      double ghost = 0.0;
      const double peakPhi = geom::kTwoPi *
                             static_cast<double>(dsp::argmax(samples)) /
                             static_cast<double>(samples.size());
      ghost = 1.0 - p.weightStats(peakPhi).effectiveFraction;
      h.spin = robust::diagnoseSpectrum(samples, ghost, *diagnostics);
    }
  }
  return h;
}

bool isHealthy(const RigHealth& health,
               const RigHealthThresholds& thresholds) {
  return health.snapshotCount >= thresholds.minSnapshots &&
         health.arcCoverage >= thresholds.minArcCoverage &&
         health.spectrum.peakValue >= thresholds.minPeakValue &&
         !(thresholds.rejectQuarantined &&
           health.spin.verdict == robust::SpinVerdict::kQuarantine);
}

double fixConfidence(std::span<const SpectrumQuality> spectra, double gdop) {
  if (spectra.empty() || !std::isfinite(gdop)) return 0.0;
  double logAcc = 0.0;
  for (const SpectrumQuality& q : spectra) {
    const double sharp =
        std::clamp(1.0 - q.halfPowerWidthDeg / 90.0, 0.0, 1.0);
    const double unimodal = std::isfinite(q.peakRatio)
                                ? std::clamp((q.peakRatio - 1.0) / 1.5, 0.0,
                                             1.0)
                                : 1.0;
    const double strength = std::clamp(q.peakValue, 0.0, 1.0);
    logAcc += std::log(std::max(sharp * unimodal * strength, 1e-9));
  }
  const double spectral =
      std::exp(logAcc / static_cast<double>(spectra.size()));
  const double geometry = 1.0 / (1.0 + gdop / 10.0);
  return spectral * geometry;
}

}  // namespace tagspin::core
