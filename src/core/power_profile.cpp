#include "core/power_profile.hpp"

#include <cmath>
#include <complex>
#include <map>
#include <numbers>
#include <stdexcept>

#include "geom/angles.hpp"

namespace tagspin::core {

PowerProfile::PowerProfile(std::span<const Snapshot> snapshots,
                           const RigKinematics& kinematics,
                           const ProfileConfig& config)
    : config_(config),
      radius_(kinematics.radiusM),
      sigmaPair_(config.phaseNoiseStd * std::numbers::sqrt2 *
                 config.weightSigmaScale) {
  if (snapshots.size() < 2) {
    throw std::invalid_argument("PowerProfile: need at least 2 snapshots");
  }
  if (radius_ <= 0.0) {
    throw std::invalid_argument("PowerProfile: rig radius must be > 0");
  }
  if (config.phaseNoiseStd <= 0.0) {
    throw std::invalid_argument("PowerProfile: phaseNoiseStd must be > 0");
  }

  const bool classical = config.formula == ProfileFormula::kClassicalP;
  const bool grouped = config.channelCoherent && !classical;

  // First snapshot of each channel group serves as the group's phase
  // reference (the paper's theta_0).
  struct GroupRef {
    int index;
    double phase;
    double diskAngle;
  };
  std::map<int, GroupRef> refs;
  int nextGroup = 0;

  entries_.reserve(snapshots.size());
  for (const Snapshot& s : snapshots) {
    if (s.lambdaM <= 0.0) {
      throw std::invalid_argument("PowerProfile: snapshot missing wavelength");
    }
    const int key = grouped ? s.channel : 0;
    const double a = kinematics.diskAngle(s.timeS);
    auto [it, inserted] =
        refs.try_emplace(key, GroupRef{nextGroup, s.phaseRad, a});
    if (inserted) ++nextGroup;

    Entry e;
    e.cosA = std::cos(a);
    e.sinA = std::sin(a);
    e.cosRef = std::cos(it->second.diskAngle);
    e.sinRef = std::sin(it->second.diskAngle);
    e.k = 4.0 * std::numbers::pi / s.lambdaM;
    e.group = it->second.index;
    e.relPhase =
        classical ? s.phaseRad : geom::wrapToPi(s.phaseRad - it->second.phase);
    entries_.push_back(e);
  }
  groupCount_ = nextGroup;
}

double PowerProfile::evaluate(double phi, double gamma) const {
  return evaluateDirection(phi, std::cos(gamma));
}

double PowerProfile::evaluateDirection(double phi, double cg) const {
  const bool enhanced = config_.formula == ProfileFormula::kEnhancedR;
  const double cosPhi = std::cos(phi);
  const double sinPhi = std::sin(phi);
  std::vector<std::complex<double>> sums(
      static_cast<size_t>(groupCount_), std::complex<double>{0.0, 0.0});

  if (!enhanced) {
    for (const Entry& e : entries_) {
      // cos(a_i - phi) from the precomputed components.
      const double cosAmP = e.cosA * cosPhi + e.sinA * sinPhi;
      const double steer = e.k * radius_ * cosAmP * cg;
      sums[static_cast<size_t>(e.group)] += std::polar(1.0, e.relPhase + steer);
    }
  } else {
    // Enhanced profile R.  Each snapshot's residual against the steering
    // prediction c_i(phi, gamma) (Defn. 4.1 / 5.1) is Gaussian-weighted.
    // Two refinements over the literal formula, both documented in
    // DESIGN.md:
    //  * residuals are wrapped to (-pi, pi] (|c_i| exceeds 2*pi for
    //    r > lambda/4);
    //  * residuals are centred on their per-group circular mean before
    //    weighting.  The paper weights around zero, implicitly trusting the
    //    reference snapshot theta_0; one corrupted reference read would
    //    shift every residual by a constant and bias the weights toward a
    //    false direction that absorbs the shift.  Centring restores the
    //    reference-independence that Q enjoys through |.|.
    const double inv2Sigma2 = 1.0 / (2.0 * sigmaPair_ * sigmaPair_);
    std::vector<double> residuals(entries_.size());
    std::vector<std::complex<double>> centroids(
        static_cast<size_t>(groupCount_), std::complex<double>{0.0, 0.0});
    for (size_t i = 0; i < entries_.size(); ++i) {
      const Entry& e = entries_[i];
      const double cosAmP = e.cosA * cosPhi + e.sinA * sinPhi;
      const double cosRefmP = e.cosRef * cosPhi + e.sinRef * sinPhi;
      const double predicted = e.k * radius_ * cg * (cosRefmP - cosAmP);
      residuals[i] = geom::wrapToPi(e.relPhase - predicted);
      centroids[static_cast<size_t>(e.group)] +=
          std::polar(1.0, residuals[i]);
    }
    std::vector<double> center(static_cast<size_t>(groupCount_), 0.0);
    for (size_t g = 0; g < center.size(); ++g) {
      if (std::abs(centroids[g]) > 0.0) center[g] = std::arg(centroids[g]);
    }
    for (size_t i = 0; i < entries_.size(); ++i) {
      const Entry& e = entries_[i];
      const double centred =
          geom::wrapToPi(residuals[i] - center[static_cast<size_t>(e.group)]);
      const double w = std::exp(-centred * centred * inv2Sigma2);
      // e^{J(relPhase + steer)} = e^{J(residual)} * e^{J k r cg cos(a_0-phi)}
      // and the group-constant factor drops under |.|, so sum residual
      // phasors directly.
      sums[static_cast<size_t>(e.group)] += w * std::polar(1.0, residuals[i]);
    }
  }

  double total = 0.0;
  for (const std::complex<double>& s : sums) total += std::abs(s);
  return total / static_cast<double>(entries_.size());
}

PowerProfile::WeightStats PowerProfile::weightStats(double phi,
                                                    double gamma) const {
  WeightStats stats;
  if (config_.formula != ProfileFormula::kEnhancedR || entries_.empty()) {
    return stats;
  }
  // Same residual/centring pipeline as the enhanced branch of
  // evaluateDirection, but reduced to weight statistics.
  const double cg = std::cos(gamma);
  const double cosPhi = std::cos(phi);
  const double sinPhi = std::sin(phi);
  const double inv2Sigma2 = 1.0 / (2.0 * sigmaPair_ * sigmaPair_);
  std::vector<double> residuals(entries_.size());
  std::vector<std::complex<double>> centroids(
      static_cast<size_t>(groupCount_), std::complex<double>{0.0, 0.0});
  for (size_t i = 0; i < entries_.size(); ++i) {
    const Entry& e = entries_[i];
    const double cosAmP = e.cosA * cosPhi + e.sinA * sinPhi;
    const double cosRefmP = e.cosRef * cosPhi + e.sinRef * sinPhi;
    const double predicted = e.k * radius_ * cg * (cosRefmP - cosAmP);
    residuals[i] = geom::wrapToPi(e.relPhase - predicted);
    centroids[static_cast<size_t>(e.group)] += std::polar(1.0, residuals[i]);
  }
  std::vector<double> center(static_cast<size_t>(groupCount_), 0.0);
  for (size_t g = 0; g < center.size(); ++g) {
    if (std::abs(centroids[g]) > 0.0) center[g] = std::arg(centroids[g]);
  }
  double sum = 0.0, sumSq = 0.0;
  for (size_t i = 0; i < entries_.size(); ++i) {
    const double centred = geom::wrapToPi(
        residuals[i] - center[static_cast<size_t>(entries_[i].group)]);
    const double w = std::exp(-centred * centred * inv2Sigma2);
    sum += w;
    sumSq += w * w;
  }
  const double n = static_cast<double>(entries_.size());
  stats.meanWeight = sum / n;
  stats.effectiveFraction = sumSq > 0.0 ? (sum * sum) / (n * sumSq) : 0.0;
  return stats;
}

std::vector<double> PowerProfile::sampleAzimuth(size_t points,
                                                double gamma) const {
  std::vector<double> out(points);
  for (size_t i = 0; i < points; ++i) {
    out[i] = evaluate(geom::kTwoPi * static_cast<double>(i) /
                          static_cast<double>(points),
                      gamma);
  }
  return out;
}

}  // namespace tagspin::core
