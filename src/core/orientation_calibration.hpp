// Phase-orientation calibration (paper section III-B).
//
// Step 1 (prelude, once per tag/model): the tag is mounted at the *center*
// of the disk, so its distance to the reader never changes; any phase
// variation over a revolution is the orientation effect g(rho).  We fit a
// Fourier series to the unwrapped phases against the known orientation
// sequence, solving jointly for one constant offset per channel (the
// 4*pi*D/lambda + theta_div term differs across hop channels).
//
// Step 2 (during localization): edge-spin phases are corrected by
// g(rho_i) - g(pi/2), where rho_i follows from the disk angle and the
// *estimated* reader direction; the locator iterates estimate -> calibrate.
#pragma once

#include <span>
#include <vector>

#include "core/snapshot.hpp"
#include "dsp/fourier.hpp"

namespace tagspin::core {

class OrientationModel {
 public:
  OrientationModel() = default;  // identity model (no correction)

  /// Fit from a center-spin trace.  `readerAzimuthFromTag` is the known
  /// direction from the rig center to the reader during the prelude (this
  /// is a bench calibration step; the reader sits at a surveyed spot).
  /// `order` is the Fourier order (paper: "fitted through Fourier series").
  /// Throws std::invalid_argument when there are too few snapshots for the
  /// requested order.
  static OrientationModel fit(std::span<const Snapshot> centerSpin,
                              const RigKinematics& kinematics,
                              double readerAzimuthFromTag, size_t order = 4);

  /// Reconstruct a model from its serialized series (core/serialization).
  static OrientationModel fromSeries(dsp::FourierSeries series,
                                     double fitResidual);

  /// Phase offset at orientation rho, referenced so offsetAt(pi/2) == 0
  /// (the paper uses rho = pi/2 -- tag plane perpendicular to the incident
  /// signal -- as the reference orientation).
  double offsetAt(double rho) const;

  bool isIdentity() const { return series_.order() == 0; }
  const dsp::FourierSeries& series() const { return series_; }

  /// RMS residual of the fit on its training data (quality diagnostics).
  double fitResidual() const { return fitResidual_; }

 private:
  dsp::FourierSeries series_;  // a0 forced to reference at rho = pi/2
  double fitResidual_ = 0.0;
};

/// Apply Step 2: subtract the orientation offset from every snapshot, given
/// the current estimate of the reader azimuth (from the rig center).
///
/// Note: rho computed from the rig-center azimuth carries a +-r/D wobble
/// that is first-harmonic in the disk angle -- i.e. correlated with the SAR
/// steering term -- so prefer the position-based overload once a position
/// estimate exists.
std::vector<Snapshot> calibrateOrientation(std::span<const Snapshot> snaps,
                                           const RigKinematics& kinematics,
                                           const OrientationModel& model,
                                           double estimatedReaderAzimuth);

/// Exact Step 2: rho is computed from the tag's *instantaneous edge
/// position* toward the estimated reader position.
std::vector<Snapshot> calibrateOrientationAtPosition(
    std::span<const Snapshot> snaps, const RigSpec& rig,
    const OrientationModel& model, const geom::Vec3& estimatedReaderPos);

/// Orientation of the tag at snapshot time given the reader azimuth.
double orientationAt(const RigKinematics& kinematics, double timeS,
                     double readerAzimuth);

/// Orientation of the tag at snapshot time given the reader position,
/// accounting for the tag's displacement from the rig center (horizontal
/// rigs).
double orientationAtPosition(const RigSpec& rig, double timeS,
                             const geom::Vec3& readerPos);

}  // namespace tagspin::core
