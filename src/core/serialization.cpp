#include "core/serialization.hpp"

#include <cctype>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace tagspin::core {

namespace {

void writeRig(std::ostream& out, const std::string& section,
              const rfid::Epc& epc, const RigSpec& rig) {
  out << "[" << section << " " << epc.toHex() << "]\n";
  out << std::setprecision(17);
  out << "center = " << rig.center.x << " " << rig.center.y << " "
      << rig.center.z << "\n";
  out << "radius_m = " << rig.kinematics.radiusM << "\n";
  out << "omega_rad_per_s = " << rig.kinematics.omegaRadPerS << "\n";
  out << "initial_angle = " << rig.kinematics.initialAngle << "\n";
  out << "tag_plane_offset = " << rig.kinematics.tagPlaneOffset << "\n";
}

void writeModelBody(std::ostream& out, const OrientationModel& model) {
  const dsp::FourierSeries& s = model.series();
  out << std::setprecision(17);
  out << "order = " << s.order() << "\n";
  out << "a0 = " << s.a0 << "\n";
  for (size_t k = 0; k < s.order(); ++k) {
    out << "a" << (k + 1) << " = " << s.a[k] << "\n";
    out << "b" << (k + 1) << " = " << s.b[k] << "\n";
  }
  out << "fit_residual = " << model.fitResidual() << "\n";
}

struct Parser {
  std::istream& in;
  int lineNo = 0;

  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument("deployment file line " +
                                std::to_string(lineNo) + ": " + what);
  }

  /// Next meaningful line (skips blanks and comments); false on EOF.
  bool next(std::string& line) {
    while (std::getline(in, line)) {
      ++lineNo;
      size_t begin = line.find_first_not_of(" \t\r");
      if (begin == std::string::npos) continue;
      size_t end = line.find_last_not_of(" \t\r");
      line = line.substr(begin, end - begin + 1);
      if (line.empty() || line[0] == '#') continue;
      return true;
    }
    return false;
  }
};

std::pair<std::string, std::string> splitKeyValue(Parser& p,
                                                  const std::string& line) {
  const size_t eq = line.find('=');
  if (eq == std::string::npos) p.fail("expected 'key = value': " + line);
  auto trim = [](std::string s) {
    const size_t b = s.find_first_not_of(" \t");
    if (b == std::string::npos) return std::string{};
    const size_t e = s.find_last_not_of(" \t");
    return s.substr(b, e - b + 1);
  };
  return {trim(line.substr(0, eq)), trim(line.substr(eq + 1))};
}

double parseDouble(Parser& p, const std::string& value) {
  try {
    size_t used = 0;
    const double v = std::stod(value, &used);
    while (used < value.size() &&
           std::isspace(static_cast<unsigned char>(value[used]))) {
      ++used;
    }
    if (used != value.size()) p.fail("trailing junk in number: " + value);
    return v;
  } catch (const std::invalid_argument&) {
    p.fail("not a number: " + value);
  } catch (const std::out_of_range&) {
    p.fail("number out of range: " + value);
  }
}

std::vector<double> parseDoubles(Parser& p, const std::string& value,
                                 size_t expected) {
  std::istringstream ss(value);
  std::vector<double> out;
  double v;
  while (ss >> v) out.push_back(v);
  if (out.size() != expected) {
    p.fail("expected " + std::to_string(expected) + " numbers: " + value);
  }
  return out;
}

OrientationModel parseModelBody(Parser& p, std::string& line,
                                bool& haveLine) {
  size_t order = 0;
  dsp::FourierSeries s;
  double residual = 0.0;
  bool sawOrder = false;
  while ((haveLine = p.next(line))) {
    if (line[0] == '[') break;  // next section
    const auto [key, value] = splitKeyValue(p, line);
    if (key == "order") {
      order = static_cast<size_t>(parseDouble(p, value));
      s.a.assign(order, 0.0);
      s.b.assign(order, 0.0);
      sawOrder = true;
    } else if (key == "a0") {
      s.a0 = parseDouble(p, value);
    } else if (key == "fit_residual") {
      residual = parseDouble(p, value);
    } else if (key.size() >= 2 && (key[0] == 'a' || key[0] == 'b')) {
      if (!sawOrder) p.fail("coefficient before 'order'");
      const size_t k = static_cast<size_t>(std::stoul(key.substr(1)));
      if (k < 1 || k > order) p.fail("coefficient index out of range: " + key);
      (key[0] == 'a' ? s.a : s.b)[k - 1] = parseDouble(p, value);
    } else {
      p.fail("unknown key: " + key);
    }
  }
  if (!sawOrder) p.fail("orientation model missing 'order'");
  return OrientationModel::fromSeries(std::move(s), residual);
}

RigSpec parseRigBody(Parser& p, std::string& line, bool& haveLine) {
  RigSpec rig;
  while ((haveLine = p.next(line))) {
    if (line[0] == '[') break;
    const auto [key, value] = splitKeyValue(p, line);
    if (key == "center") {
      const auto v = parseDoubles(p, value, 3);
      rig.center = {v[0], v[1], v[2]};
    } else if (key == "radius_m") {
      rig.kinematics.radiusM = parseDouble(p, value);
    } else if (key == "omega_rad_per_s") {
      rig.kinematics.omegaRadPerS = parseDouble(p, value);
    } else if (key == "initial_angle") {
      rig.kinematics.initialAngle = parseDouble(p, value);
    } else if (key == "tag_plane_offset") {
      rig.kinematics.tagPlaneOffset = parseDouble(p, value);
    } else {
      p.fail("unknown key: " + key);
    }
  }
  return rig;
}

}  // namespace

void writeDeployment(std::ostream& out, const DeploymentFile& deployment) {
  out << "# Tagspin deployment file\n";
  for (const auto& [epc, rig] : deployment.rigs) {
    writeRig(out, "rig", epc, rig);
  }
  for (const auto& [epc, rig] : deployment.verticalRigs) {
    writeRig(out, "vertical_rig", epc, rig);
  }
  for (const auto& [epc, model] : deployment.orientationModels) {
    out << "[orientation_model " << epc.toHex() << "]\n";
    writeModelBody(out, model);
  }
}

DeploymentFile readDeployment(std::istream& in) {
  DeploymentFile deployment;
  Parser p{in};
  std::string line;
  bool haveLine = p.next(line);
  while (haveLine) {
    if (line.front() != '[' || line.back() != ']') {
      p.fail("expected a [section] header: " + line);
    }
    const std::string header = line.substr(1, line.size() - 2);
    const size_t space = header.find(' ');
    if (space == std::string::npos) p.fail("section needs an EPC: " + line);
    const std::string type = header.substr(0, space);
    const rfid::Epc epc = rfid::Epc::fromHex(header.substr(space + 1));
    if (type == "rig") {
      deployment.rigs[epc] = parseRigBody(p, line, haveLine);
    } else if (type == "vertical_rig") {
      deployment.verticalRigs[epc] = parseRigBody(p, line, haveLine);
    } else if (type == "orientation_model") {
      deployment.orientationModels[epc] = parseModelBody(p, line, haveLine);
    } else {
      p.fail("unknown section type: " + type);
    }
  }
  return deployment;
}

void writeCheckpoint(std::ostream& out, const CalibrationCheckpoint& ckpt) {
  out << "# Tagspin calibration checkpoint\n";
  out << "[checkpoint]\n";
  out << std::setprecision(17);
  out << "sequence = " << ckpt.sequence << "\n";
  out << "wall_time_s = " << ckpt.wallTimeS << "\n";
  out << "last_report_timestamp_s = " << ckpt.lastReportTimestampS << "\n";
  if (ckpt.lastFix.valid) {
    const FixRecord& fix = ckpt.lastFix;
    out << "[last_fix]\n";
    out << "position = " << fix.x << " " << fix.y << "\n";
    out << "confidence = " << fix.confidence << "\n";
    out << "inlier_fraction = " << fix.inlierFraction << "\n";
    out << "quarantined_spins = " << fix.quarantinedSpins << "\n";
    if (fix.hasEllipse) {
      out << "ellipse = " << fix.ellipseSemiMajorM << " "
          << fix.ellipseSemiMinorM << " " << fix.ellipseOrientationRad << " "
          << fix.ellipseConfidence << "\n";
    }
    if (fix.hasVelocity) {
      out << "velocity = " << fix.velocityX << " " << fix.velocityY << "\n";
    }
    if (fix.hasTrack) {
      out << "track = " << fix.trackTimeS << " " << fix.trackState << " "
          << fix.trackModel << "\n";
    }
  }
  for (const auto& [epc, tag] : ckpt.tags) {
    out << "[tag_progress " << epc.toHex() << "]\n";
    out << "snapshot_count = " << tag.snapshots.size() << "\n";
    for (const Snapshot& s : tag.snapshots) {
      out << "snapshot = " << s.timeS << " " << s.phaseRad << " " << s.lambdaM
          << " " << s.channel << " " << s.rssiDbm << "\n";
    }
    if (!tag.angleSpectrum.empty()) {
      out << "spectrum =";
      for (double v : tag.angleSpectrum) out << " " << v;
      out << "\n";
    }
    if (tag.hasOrientationModel) {
      out << "[tag_model " << epc.toHex() << "]\n";
      writeModelBody(out, tag.orientationModel);
    }
  }
}

namespace {

TagCalibrationProgress parseTagProgressBody(Parser& p, std::string& line,
                                            bool& haveLine) {
  TagCalibrationProgress tag;
  size_t declaredCount = 0;
  bool sawCount = false;
  while ((haveLine = p.next(line))) {
    if (line[0] == '[') break;
    const auto [key, value] = splitKeyValue(p, line);
    if (key == "snapshot_count") {
      declaredCount = static_cast<size_t>(parseDouble(p, value));
      sawCount = true;
    } else if (key == "snapshot") {
      const auto v = parseDoubles(p, value, 5);
      Snapshot s;
      s.timeS = v[0];
      s.phaseRad = v[1];
      s.lambdaM = v[2];
      s.channel = static_cast<int>(v[3]);
      s.rssiDbm = v[4];
      tag.snapshots.push_back(s);
    } else if (key == "spectrum") {
      std::istringstream ss(value);
      double v;
      while (ss >> v) tag.angleSpectrum.push_back(v);
    } else {
      p.fail("unknown key: " + key);
    }
  }
  if (!sawCount) p.fail("tag_progress missing 'snapshot_count'");
  if (tag.snapshots.size() != declaredCount) {
    p.fail("tag_progress declares " + std::to_string(declaredCount) +
           " snapshots but holds " + std::to_string(tag.snapshots.size()) +
           " (truncated checkpoint?)");
  }
  return tag;
}

}  // namespace

CalibrationCheckpoint readCheckpoint(std::istream& in) {
  CalibrationCheckpoint ckpt;
  Parser p{in};
  std::string line;
  bool haveLine = p.next(line);
  bool sawHeader = false;
  while (haveLine) {
    if (line.front() != '[' || line.back() != ']') {
      p.fail("expected a [section] header: " + line);
    }
    const std::string header = line.substr(1, line.size() - 2);
    const size_t space = header.find(' ');
    const std::string type =
        space == std::string::npos ? header : header.substr(0, space);
    if (type == "checkpoint") {
      sawHeader = true;
      while ((haveLine = p.next(line))) {
        if (line[0] == '[') break;
        const auto [key, value] = splitKeyValue(p, line);
        if (key == "sequence") {
          ckpt.sequence = static_cast<uint64_t>(parseDouble(p, value));
        } else if (key == "wall_time_s") {
          ckpt.wallTimeS = parseDouble(p, value);
        } else if (key == "last_report_timestamp_s") {
          ckpt.lastReportTimestampS = parseDouble(p, value);
        } else {
          p.fail("unknown key: " + key);
        }
      }
    } else if (type == "last_fix") {
      ckpt.lastFix.valid = true;
      while ((haveLine = p.next(line))) {
        if (line[0] == '[') break;
        const auto [key, value] = splitKeyValue(p, line);
        if (key == "position") {
          const auto v = parseDoubles(p, value, 2);
          ckpt.lastFix.x = v[0];
          ckpt.lastFix.y = v[1];
        } else if (key == "confidence") {
          ckpt.lastFix.confidence = parseDouble(p, value);
        } else if (key == "inlier_fraction") {
          ckpt.lastFix.inlierFraction = parseDouble(p, value);
        } else if (key == "quarantined_spins") {
          ckpt.lastFix.quarantinedSpins =
              static_cast<uint64_t>(parseDouble(p, value));
        } else if (key == "ellipse") {
          const auto v = parseDoubles(p, value, 4);
          ckpt.lastFix.hasEllipse = true;
          ckpt.lastFix.ellipseSemiMajorM = v[0];
          ckpt.lastFix.ellipseSemiMinorM = v[1];
          ckpt.lastFix.ellipseOrientationRad = v[2];
          ckpt.lastFix.ellipseConfidence = v[3];
        } else if (key == "velocity") {
          const auto v = parseDoubles(p, value, 2);
          ckpt.lastFix.hasVelocity = true;
          ckpt.lastFix.velocityX = v[0];
          ckpt.lastFix.velocityY = v[1];
        } else if (key == "track") {
          const auto v = parseDoubles(p, value, 3);
          ckpt.lastFix.hasTrack = true;
          ckpt.lastFix.trackTimeS = v[0];
          ckpt.lastFix.trackState = static_cast<uint32_t>(v[1]);
          ckpt.lastFix.trackModel = static_cast<uint32_t>(v[2]);
        } else {
          p.fail("unknown key: " + key);
        }
      }
    } else if (type == "tag_progress") {
      if (space == std::string::npos) p.fail("section needs an EPC: " + line);
      const rfid::Epc epc = rfid::Epc::fromHex(header.substr(space + 1));
      ckpt.tags[epc] = parseTagProgressBody(p, line, haveLine);
    } else if (type == "tag_model") {
      if (space == std::string::npos) p.fail("section needs an EPC: " + line);
      const rfid::Epc epc = rfid::Epc::fromHex(header.substr(space + 1));
      TagCalibrationProgress& tag = ckpt.tags[epc];
      tag.orientationModel = parseModelBody(p, line, haveLine);
      tag.hasOrientationModel = true;
    } else {
      p.fail("unknown section type: " + type);
    }
  }
  if (!sawHeader) {
    throw std::invalid_argument(
        "checkpoint: missing [checkpoint] header section");
  }
  return ckpt;
}

std::string checkpointToString(const CalibrationCheckpoint& ckpt) {
  std::ostringstream out;
  writeCheckpoint(out, ckpt);
  return out.str();
}

CalibrationCheckpoint checkpointFromString(const std::string& text) {
  std::istringstream in(text);
  return readCheckpoint(in);
}

std::string deploymentToString(const DeploymentFile& deployment) {
  std::ostringstream out;
  writeDeployment(out, deployment);
  return out.str();
}

DeploymentFile deploymentFromString(const std::string& text) {
  std::istringstream in(text);
  return readDeployment(in);
}

void writeOrientationModel(std::ostream& out, const OrientationModel& model) {
  out << "# Tagspin orientation model\n";
  writeModelBody(out, model);
}

OrientationModel readOrientationModel(std::istream& in) {
  Parser p{in};
  std::string line;
  bool haveLine = false;
  // parseModelBody pre-reads lines itself; emulate the section-body flow.
  OrientationModel model = parseModelBody(p, line, haveLine);
  if (haveLine) p.fail("unexpected trailing section: " + line);
  return model;
}

}  // namespace tagspin::core
