// Tuning knobs of the Tagspin algorithms.
#pragma once

#include <cstddef>
#include <cstdint>

#include "geom/angles.hpp"
#include "robust/consensus.hpp"
#include "robust/spectrum_diag.hpp"

namespace tagspin::core {

enum class ProfileFormula {
  kClassicalP,  // absolute-phase AoA profile, Eqn. 6
  kRelativeQ,   // diversity-free relative profile, Eqn. 7
  kEnhancedR,   // Gaussian-weighted enhanced profile, Defn. 4.1 / 5.1
};

struct ProfileConfig {
  ProfileFormula formula = ProfileFormula::kEnhancedR;
  /// Std-dev of a *single* phase measurement (paper: 0.1 rad).  The pairwise
  /// residual theta_i - theta_0 then has std sqrt(2) * this.
  double phaseNoiseStd = 0.1;
  /// Bandwidth multiplier applied to the Gaussian weight of R(phi):
  /// sigma_w = weightSigmaScale * sqrt(2) * phaseNoiseStd.  The paper's
  /// literal value (scale 1) makes the weight a hard selector; residual
  /// contributions it does not model (orientation, multipath) then bias the
  /// argmax through correlated snapshot selection.  A moderate widening
  /// keeps the weight's job -- suppressing grossly inconsistent snapshots --
  /// while leaving the Gaussian bulk effectively unweighted.  See DESIGN.md.
  double weightSigmaScale = 2.0;
  /// Group snapshots by channel and combine groups non-coherently.  Within a
  /// channel the unknown D/lambda term cancels in relative phases; across
  /// channels it does not, so with hopping enabled this must stay true.
  bool channelCoherent = true;
};

struct SearchConfig {
  size_t azimuthGridPoints = 720;  // 0.5 degree raw grid
  int refineRounds = 6;
  size_t polarGridPoints = 61;     // 3D search over gamma
  double polarMin = -geom::kPi / 2.0;
  double polarMax = geom::kPi / 2.0;
};

/// Which half-space the reader is known to occupy; resolves the +-z
/// ambiguity of the 3D solution (paper: "dead space" elimination).
enum class ZResolution {
  kNonNegative,
  kNonPositive,
  kBoth,  // report both candidates
};

/// Adversarial-environment estimation knobs (src/robust/).
struct RobustEstimationConfig {
  /// Diagnose every spin's spectrum (verdicts, candidate peaks, ghost
  /// score).  Off: spins are trusted as before and verdicts stay kAccept.
  bool diagnostics = true;
  /// With >= 3 rays, replace the unweighted least-squares intersection by
  /// consensus voting over candidate peaks plus IRLS refinement.  Clean
  /// spectra reduce to the unweighted solution.
  bool consensus = true;
  /// Bootstrap a confidence ellipse for each fix (extra profile builds per
  /// rig; off by default, enabled by the serve runtime and benches).
  bool bootstrap = false;
  /// Half-sample bearing re-estimates per rig feeding the bootstrap.
  int bearingSubsamples = 8;
  /// Resample the ray set as well as the bearings (pairs bootstrap).  The
  /// bearing-only scheme is calibrated to estimator noise, but in the
  /// field each rig also carries its own multipath bias, which half-sample
  /// deviations cannot see (both halves share the same reflectors); pairs
  /// resampling folds that between-rig disagreement into the region, at
  /// the cost of conservatism (over-coverage) when the rays are clean.
  bool pairsBootstrap = true;
  int bootstrapReplicates = 160;
  double confidenceLevel = 0.90;
  uint64_t bootstrapSeed = 0xB0075;
  robust::SpinDiagnosticsConfig diagnosticsConfig;
  robust::ConsensusConfig consensusConfig;
};

struct LocatorConfig {
  ProfileConfig profile;
  SearchConfig search;
  ZResolution zResolution = ZResolution::kNonNegative;
  /// Iterations of the orientation-calibration loop (estimate direction ->
  /// de-rotate orientation offsets -> re-estimate).  0 disables calibration
  /// even when a model is available.
  int orientationIterations = 2;
  RobustEstimationConfig robust;
};

}  // namespace tagspin::core
