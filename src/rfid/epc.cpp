#include "rfid/epc.hpp"

#include <cctype>
#include <stdexcept>

namespace tagspin::rfid {

namespace {
int hexValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

Epc Epc::fromHex(const std::string& hex) {
  std::string digits;
  digits.reserve(24);
  for (char c : hex) {
    if (std::isspace(static_cast<unsigned char>(c)) || c == '-') continue;
    if (hexValue(c) < 0) {
      throw std::invalid_argument("Epc::fromHex: non-hex character");
    }
    digits.push_back(c);
  }
  if (digits.size() != 24) {
    throw std::invalid_argument("Epc::fromHex: need exactly 24 hex digits");
  }
  uint64_t hi = 0;
  for (int i = 0; i < 16; ++i) hi = hi << 4 | static_cast<uint64_t>(hexValue(digits[i]));
  uint32_t lo = 0;
  for (int i = 16; i < 24; ++i) lo = lo << 4 | static_cast<uint32_t>(hexValue(digits[i]));
  return Epc{hi, lo};
}

Epc Epc::forSimulatedTag(uint32_t index) {
  // Header 0x35 (SGTIN-96-like) + a fixed simulated-company prefix.
  return Epc{0x35A6'0032'0000'0000ULL | index, 0x5157'0000u | index};
}

std::string Epc::toHex() const {
  static const char* kHex = "0123456789ABCDEF";
  std::string out(24, '0');
  for (int i = 0; i < 16; ++i) {
    out[static_cast<size_t>(i)] = kHex[(hi_ >> (60 - 4 * i)) & 0xF];
  }
  for (int i = 0; i < 8; ++i) {
    out[static_cast<size_t>(16 + i)] = kHex[(lo_ >> (28 - 4 * i)) & 0xF];
  }
  return out;
}

}  // namespace tagspin::rfid
