// The tag catalogue of the paper's Table I: five Alien Technology tag models
// (Squig(gle), Square, Squiglette, 2x2 and Short), all Higgs-series chips.
//
// Each model carries the RF-relevant parameters the simulator needs:
//  * an orientation-response amplitude: how strongly the tag's reported
//    phase depends on its orientation (the paper's ~0.7 rad p-p effect,
//    caused by antenna asymmetry; varies per model, shape stable),
//  * a gain-pattern exponent for the orientation-dependent read rate,
//  * a relative sensitivity offset (larger antennas harvest more energy).
#pragma once

#include <span>
#include <string>

namespace tagspin::rfid {

enum class TagModelId {
  kSquig,       // AZ-9640 "Squiggle"
  kSquare,      // AZ-9629
  kSquiglette,  // AZ-9613
  kTwoByTwo,    // AZ-9634 "2x2"
  kShort,       // AZ-9662 "Short"
};

struct TagModel {
  TagModelId id;
  std::string name;
  std::string company;
  std::string chip;
  double widthMm;
  double heightMm;
  int tableQuantity;  // QTY column of Table I

  /// Peak-to-peak amplitude (radians) of the phase-vs-orientation response.
  double orientationAmplitude;
  /// Exponent of the |sin(rho)|^p orientation gain.
  double gainExponent;
  /// Sensitivity offset (dB) relative to the Squiggle; bigger antenna, more
  /// harvested power.
  double sensitivityOffsetDb;
};

/// All five models, in Table I order.
std::span<const TagModel> allTagModels();

const TagModel& tagModel(TagModelId id);

}  // namespace tagspin::rfid
