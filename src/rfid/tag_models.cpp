#include "rfid/tag_models.hpp"

#include <array>
#include <stdexcept>

namespace tagspin::rfid {

namespace {
// Sizes follow Alien's published inlay dimensions; the transcription of the
// paper's Table I lost its digits, so these stand in for the same five
// models.  Orientation amplitudes are chosen so the fleet average matches
// the ~0.7 rad peak-to-peak effect of Fig. 5 / Fig. 11(a).
const std::array<TagModel, 5> kModels{{
    {TagModelId::kSquig, "Squig (AZ-9640)", "Alien", "Higgs-3", 94.8, 8.1, 10,
     0.70, 2.0, 0.0},
    {TagModelId::kSquare, "Square (AZ-9629)", "Alien", "Higgs-3", 22.5, 22.5,
     10, 0.62, 1.6, -2.0},
    {TagModelId::kSquiglette, "Squiglette (AZ-9613)", "Alien", "Higgs-3", 70.0,
     19.0, 10, 0.74, 2.2, -1.0},
    {TagModelId::kTwoByTwo, "2x2 (AZ-9634)", "Alien", "Higgs-3", 44.8, 44.8,
     10, 0.66, 1.8, 0.5},
    {TagModelId::kShort, "Short (AZ-9662)", "Alien", "Higgs-4", 70.0, 17.0, 10,
     0.72, 2.0, -0.5},
}};
}  // namespace

std::span<const TagModel> allTagModels() { return kModels; }

const TagModel& tagModel(TagModelId id) {
  for (const TagModel& m : kModels) {
    if (m.id == id) return m;
  }
  throw std::invalid_argument("tagModel: unknown id");
}

}  // namespace tagspin::rfid
