// Reader device description (an Impinj Speedway-class fixed reader).
//
// The device is a passive description: up to four antenna ports, a frequency
// plan with regulatory channel hopping, and the Gen2 MAC configuration.  The
// simulation layer places it in a World and drives interrogation; the core
// library only ever sees the resulting ReportStream.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "rf/antenna.hpp"
#include "rf/frequency_plan.hpp"
#include "rfid/gen2.hpp"

namespace tagspin::rfid {

struct ReaderDevice {
  static constexpr int kMaxAntennas = 4;  // Speedway R420 limit

  std::vector<rf::ReaderAntenna> antennas;
  rf::FrequencyPlan plan = rf::FrequencyPlan::china920();
  double hopDwellS = 2.0;  // Chinese regulation: ~2 s per channel
  Gen2Config gen2;

  /// Validated accessor.
  const rf::ReaderAntenna& antenna(int port) const {
    if (port < 0 || port >= static_cast<int>(antennas.size())) {
      throw std::out_of_range("ReaderDevice: bad antenna port");
    }
    return antennas[static_cast<size_t>(port)];
  }

  int antennaCount() const { return static_cast<int>(antennas.size()); }

  /// A single-antenna reader with default settings.
  static ReaderDevice makeDefault();
  /// A reader with `n` identical antennas (n <= 4), distinct port phases.
  static ReaderDevice makeWithAntennas(int n);
};

}  // namespace tagspin::rfid
