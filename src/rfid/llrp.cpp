#include "rfid/llrp.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "geom/angles.hpp"

namespace tagspin::rfid::llrp {

namespace {

// Message layout (big-endian, 40 bytes total):
//   0  u16  message type (61 = RO_ACCESS_REPORT)
//   2  u16  version/flags (0x0100)
//   4  u32  message length (== kMessageSize)
//   8  u64  EPC high bits
//  16  u32  EPC low bits
//  20  u64  timestamp, microseconds
//  28  u16  Impinj PhaseAngle, 1/4096ths of a turn
//  30  i16  peak RSSI, centi-dBm
//  32  u16  channel index
//  34  u32  carrier frequency, kHz
//  38  u16  antenna id (1-based on the wire, as in LLRP)
constexpr uint16_t kMessageType = 61;
constexpr uint16_t kVersion = 0x0100;

void putU16(std::vector<uint8_t>& out, uint16_t v) {
  out.push_back(static_cast<uint8_t>(v >> 8));
  out.push_back(static_cast<uint8_t>(v));
}
void putU32(std::vector<uint8_t>& out, uint32_t v) {
  putU16(out, static_cast<uint16_t>(v >> 16));
  putU16(out, static_cast<uint16_t>(v));
}
void putU64(std::vector<uint8_t>& out, uint64_t v) {
  putU32(out, static_cast<uint32_t>(v >> 32));
  putU32(out, static_cast<uint32_t>(v));
}

uint16_t getU16(std::span<const uint8_t> d, size_t at) {
  return static_cast<uint16_t>(static_cast<uint16_t>(d[at]) << 8 |
                               static_cast<uint16_t>(d[at + 1]));
}
uint32_t getU32(std::span<const uint8_t> d, size_t at) {
  return static_cast<uint32_t>(getU16(d, at)) << 16 | getU16(d, at + 2);
}
uint64_t getU64(std::span<const uint8_t> d, size_t at) {
  return static_cast<uint64_t>(getU32(d, at)) << 32 | getU32(d, at + 4);
}

}  // namespace

double phaseResolutionRad() { return 2.0 * std::numbers::pi / 4096.0; }

std::vector<uint8_t> encodeReport(const TagReport& report) {
  std::vector<uint8_t> out;
  out.reserve(kMessageSize);
  putU16(out, kMessageType);
  putU16(out, kVersion);
  putU32(out, static_cast<uint32_t>(kMessageSize));
  putU64(out, report.epc.hi());
  putU32(out, report.epc.lo());
  putU64(out, static_cast<uint64_t>(
                  std::llround(report.timestampS * 1e6)));
  const double turns = geom::wrapTwoPi(report.phaseRad) /
                       (2.0 * std::numbers::pi);
  putU16(out, static_cast<uint16_t>(std::lround(turns * 4096.0)) & 0x0FFF);
  putU16(out, static_cast<uint16_t>(
                  static_cast<int16_t>(std::lround(report.rssiDbm * 100.0))));
  putU16(out, static_cast<uint16_t>(report.channelIndex));
  putU32(out, static_cast<uint32_t>(std::llround(report.frequencyHz / 1e3)));
  putU16(out, static_cast<uint16_t>(report.antennaPort + 1));
  return out;
}

namespace {

/// Header check shared by the strict and tolerant decoders; a frame whose
/// first ten bytes pass this check always decodes (the payload fields have
/// no invalid encodings).
bool headerValid(std::span<const uint8_t> data, size_t at) {
  return getU16(data, at) == kMessageType &&
         getU16(data, at + 2) == kVersion &&
         getU32(data, at + 4) == kMessageSize;
}

}  // namespace

TagReport decodeReport(std::span<const uint8_t> data) {
  if (data.size() < kMessageSize) {
    throw std::invalid_argument(
        "llrp: truncated message: need " + std::to_string(kMessageSize) +
        " bytes, got " + std::to_string(data.size()));
  }
  if (getU16(data, 0) != kMessageType) {
    throw std::invalid_argument(
        "llrp: unexpected message type " + std::to_string(getU16(data, 0)) +
        " at byte offset 0 (want " + std::to_string(kMessageType) + ")");
  }
  if (getU16(data, 2) != kVersion) {
    throw std::invalid_argument(
        "llrp: unsupported version " + std::to_string(getU16(data, 2)) +
        " at byte offset 2");
  }
  if (getU32(data, 4) != kMessageSize) {
    throw std::invalid_argument(
        "llrp: bad message length " + std::to_string(getU32(data, 4)) +
        " at byte offset 4 (want " + std::to_string(kMessageSize) + ")");
  }
  TagReport r;
  r.epc = Epc{getU64(data, 8), getU32(data, 16)};
  r.timestampS = static_cast<double>(getU64(data, 20)) / 1e6;
  r.phaseRad = static_cast<double>(getU16(data, 28) & 0x0FFF) / 4096.0 *
               2.0 * std::numbers::pi;
  r.rssiDbm = static_cast<double>(static_cast<int16_t>(getU16(data, 30))) /
              100.0;
  r.channelIndex = getU16(data, 32);
  r.frequencyHz = static_cast<double>(getU32(data, 34)) * 1e3;
  r.antennaPort = static_cast<int>(getU16(data, 38)) - 1;
  return r;
}

std::vector<uint8_t> encodeStream(const ReportStream& reports) {
  std::vector<uint8_t> out;
  out.reserve(reports.size() * kMessageSize);
  for (const TagReport& r : reports) {
    const std::vector<uint8_t> msg = encodeReport(r);
    out.insert(out.end(), msg.begin(), msg.end());
  }
  return out;
}

ReportStream decodeStream(std::span<const uint8_t> data) {
  if (data.size() % kMessageSize != 0) {
    throw std::invalid_argument(
        "llrp: stream length " + std::to_string(data.size()) +
        " is not a whole number of " + std::to_string(kMessageSize) +
        "-byte messages");
  }
  ReportStream out;
  out.reserve(data.size() / kMessageSize);
  for (size_t at = 0; at < data.size(); at += kMessageSize) {
    try {
      out.push_back(decodeReport(data.subspan(at, kMessageSize)));
    } catch (const std::invalid_argument& e) {
      throw std::invalid_argument(std::string(e.what()) +
                                  " (stream offset " + std::to_string(at) +
                                  ")");
    }
  }
  return out;
}

namespace {

/// Sanity bounds on a decoded payload.  Intact frames produced by any
/// plausible reader pass comfortably; chimera frames assembled from two torn
/// halves almost always land outside (the spliced header magic zeroes the
/// frequency or blows up the channel/port/timestamp).
bool payloadPlausible(const TagReport& r) {
  return r.timestampS >= 0.0 && r.timestampS < 1.0e9 &&  // < ~31 reader-years
         r.rssiDbm > -120.0 && r.rssiDbm < 30.0 &&
         r.channelIndex >= 0 && r.channelIndex < 1024 &&
         r.frequencyHz >= 1.0e8 && r.frequencyHz <= 6.0e9 &&
         r.antennaPort >= 0 && r.antennaPort < 32;
}

/// A header magic strictly inside the candidate frame means the candidate is
/// a truncated frame's prefix spliced onto the next real frame -- the real
/// boundary is at the embedded magic, so the candidate must be refused.
bool containsEmbeddedHeader(std::span<const uint8_t> data, size_t at) {
  for (size_t k = at + 1; k + 8 <= at + kMessageSize; ++k) {
    if (headerValid(data, k)) return true;
  }
  return false;
}

}  // namespace

ReportStream decodeStreamTolerant(std::span<const uint8_t> data,
                                  DecodeStats* stats) {
  DecodeStats s;
  s.bytesTotal = data.size();
  ReportStream out;
  out.reserve(data.size() / kMessageSize);

  size_t at = 0;
  bool resyncing = false;
  while (at + kMessageSize <= data.size()) {
    bool accepted = false;
    if (headerValid(data, at)) {
      if (containsEmbeddedHeader(data, at)) {
        ++s.framesRejected;
      } else {
        TagReport r = decodeReport(data.subspan(at, kMessageSize));
        if (payloadPlausible(r)) {
          out.push_back(r);
          ++s.framesDecoded;
          at += kMessageSize;
          resyncing = false;
          accepted = true;
        } else {
          ++s.framesRejected;
        }
      }
    }
    if (!accepted) {
      if (!resyncing) {
        ++s.framesSkipped;  // one resync event, however many bytes long
        resyncing = true;
      }
      ++s.bytesResynced;
      ++at;
    }
  }
  // Trailing bytes too short to hold a frame: a torn tail.
  if (at < data.size()) {
    if (!resyncing) ++s.framesSkipped;
    s.bytesResynced += data.size() - at;
  }
  if (stats) *stats = s;
  return out;
}

ReportStream TolerantStreamDecoder::feed(std::span<const uint8_t> bytes) {
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
  stats_.bytesTotal += bytes.size();

  ReportStream out;
  size_t at = 0;
  while (at + kMessageSize <= buffer_.size()) {
    bool accepted = false;
    if (headerValid(buffer_, at)) {
      if (containsEmbeddedHeader(buffer_, at)) {
        ++stats_.framesRejected;
      } else {
        TagReport r = decodeReport(
            std::span<const uint8_t>(buffer_).subspan(at, kMessageSize));
        if (payloadPlausible(r)) {
          out.push_back(r);
          ++stats_.framesDecoded;
          at += kMessageSize;
          resyncing_ = false;
          accepted = true;
        } else {
          ++stats_.framesRejected;
        }
      }
    }
    if (!accepted) {
      if (!resyncing_) {
        ++stats_.framesSkipped;
        resyncing_ = true;
      }
      ++stats_.bytesResynced;
      ++at;
    }
  }
  buffer_.erase(buffer_.begin(),
                buffer_.begin() + static_cast<std::ptrdiff_t>(at));
  return out;
}

void TolerantStreamDecoder::finish() {
  if (!buffer_.empty()) {
    if (!resyncing_) ++stats_.framesSkipped;
    stats_.bytesResynced += buffer_.size();
    buffer_.clear();
  }
  resyncing_ = false;
}

void publishDecodeStats(const DecodeStats& delta,
                        obs::MetricsRegistry& registry) {
  obs::add(registry.counter("llrp.frames_decoded"), delta.framesDecoded);
  obs::add(registry.counter("llrp.frames_skipped"), delta.framesSkipped);
  obs::add(registry.counter("llrp.frames_rejected"), delta.framesRejected);
  obs::add(registry.counter("llrp.bytes_resynced"), delta.bytesResynced);
  obs::add(registry.counter("llrp.bytes_total"), delta.bytesTotal);
}

}  // namespace tagspin::rfid::llrp
