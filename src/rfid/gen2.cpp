#include "rfid/gen2.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tagspin::rfid {

InventoryEngine::InventoryEngine(Gen2Config config)
    : config_(config), qfp_(config.initialQ) {
  if (config.initialQ < config.qMin || config.initialQ > config.qMax) {
    throw std::invalid_argument("InventoryEngine: initialQ out of range");
  }
  if (config.qStep <= 0.0) {
    throw std::invalid_argument("InventoryEngine: qStep must be > 0");
  }
}

RoundResult InventoryEngine::runRound(double startTimeS,
                                      std::span<const double> replyProb,
                                      std::mt19937_64& rng) {
  RoundResult result;
  const int q = static_cast<int>(std::lround(qfp_));
  const uint32_t slotCount = 1u << std::clamp(q, 0, 15);
  result.slots = static_cast<int>(slotCount);

  // Each participating tag draws a slot counter uniformly in [0, 2^Q).
  std::vector<uint32_t> slotOf(replyProb.size());
  std::vector<bool> participates(replyProb.size());
  std::uniform_int_distribution<uint32_t> slotDist(0, slotCount - 1);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  for (size_t i = 0; i < replyProb.size(); ++i) {
    participates[i] = coin(rng) < replyProb[i];
    slotOf[i] = slotDist(rng);
  }

  double t = startTimeS;
  for (uint32_t slot = 0; slot < slotCount; ++slot) {
    size_t replier = 0;
    int repliers = 0;
    for (size_t i = 0; i < replyProb.size(); ++i) {
      if (participates[i] && slotOf[i] == slot) {
        replier = i;
        ++repliers;
      }
    }
    if (repliers == 0) {
      ++result.empties;
      t += config_.emptySlotS;
      qfp_ = std::max(config_.qMin, qfp_ - config_.qStep);
    } else if (repliers == 1) {
      t += config_.singletonSlotS;
      result.reads.push_back({replier, t});
    } else {
      ++result.collisions;
      t += config_.collisionSlotS;
      qfp_ = std::min(config_.qMax, qfp_ + config_.qStep);
    }
  }
  result.endTimeS = t;
  return result;
}

}  // namespace tagspin::rfid
