// EPC Gen2-lite inventory engine (framed slotted ALOHA with the Q algorithm).
//
// This is the protocol substrate standing in for the Impinj reader firmware.
// It matters for Tagspin because it produces the *irregular read timing* of
// real traces: tags pick random slots, collide, and reply with an
// orientation-dependent probability -- which is exactly why the paper's
// Fig. 4(b) shows higher sampling density when the tag plane faces the
// antenna.  Only the medium-access layer is modelled; bit-level encodings
// (FM0/Miller, CRC) are below the abstraction Tagspin consumes.
#pragma once

#include <cstdint>
#include <random>
#include <span>
#include <vector>

namespace tagspin::rfid {

struct Gen2Config {
  double initialQ = 2.0;
  double qStep = 0.35;   // Qfp adjustment constant C (Gen2 suggests 0.1-0.5)
  double qMin = 0.0;
  double qMax = 15.0;
  // Slot air-times (seconds); singleton slots carry the full EPC exchange.
  double emptySlotS = 0.35e-3;
  double singletonSlotS = 2.5e-3;
  double collisionSlotS = 0.6e-3;
};

/// One successful tag read inside a round.
struct InventoryRead {
  size_t tagIndex = 0;
  double timeS = 0.0;
};

struct RoundResult {
  std::vector<InventoryRead> reads;
  double endTimeS = 0.0;
  int slots = 0;
  int collisions = 0;
  int empties = 0;
};

class InventoryEngine {
 public:
  explicit InventoryEngine(Gen2Config config = {});

  /// Run one inventory round starting at `startTimeS`.  `replyProb[i]` is
  /// the probability that tag i is energised and participates in this round
  /// (the simulation derives it from the tag's orientation gain).
  RoundResult runRound(double startTimeS, std::span<const double> replyProb,
                       std::mt19937_64& rng);

  /// Current floating-point Q (exposed for tests of the adaptation law).
  double qfp() const { return qfp_; }
  const Gen2Config& config() const { return config_; }

 private:
  Gen2Config config_;
  double qfp_;
};

}  // namespace tagspin::rfid
