// LLRP-lite binary encoding of tag reports.
//
// The paper's reader speaks LLRP (Low Level Reader Protocol) with Impinj's
// custom extension that adds the phase report.  This is a compact,
// self-contained binary codec in that spirit -- big-endian framing, one
// RO_ACCESS_REPORT message per read -- so traces can be stored/transported
// the way a real deployment would, including the *quantisation* a real
// reader applies:
//   * phase is reported in 1/4096ths of a turn (Impinj PhaseAngle),
//   * RSSI in centi-dBm as a signed 16-bit integer,
//   * the timestamp in microseconds as an unsigned 64-bit integer.
//
// decode(encode(r)) is therefore *not* bit-exact in phase/RSSI; it is
// within the hardware's own reporting resolution (tested, and shown by the
// integration tests to be harmless to localization accuracy).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "obs/metrics.hpp"
#include "rfid/report.hpp"

namespace tagspin::rfid::llrp {

/// Wire size of one encoded report message (fixed-size framing).
inline constexpr size_t kMessageSize = 40;

/// Encode one report as a single binary message.
std::vector<uint8_t> encodeReport(const TagReport& report);

/// Decode one message from the front of `data`.  Throws
/// std::invalid_argument on truncated or malformed input.
TagReport decodeReport(std::span<const uint8_t> data);

/// Encode a whole stream (concatenated messages).
std::vector<uint8_t> encodeStream(const ReportStream& reports);

/// Decode a concatenated stream; throws on any malformed message.
ReportStream decodeStream(std::span<const uint8_t> data);

/// Accounting of a tolerant decode pass.
struct DecodeStats {
  size_t framesDecoded = 0;
  /// Resynchronization events: contiguous runs of undecodable bytes, each
  /// corresponding to >= 1 lost frame.
  size_t framesSkipped = 0;
  /// Candidate frames with a valid header that were refused as phantoms: a
  /// truncated frame's surviving header followed by the next frame's bytes
  /// (detected by an embedded header magic), or a payload whose decoded
  /// fields are physically implausible.
  size_t framesRejected = 0;
  /// Bytes stepped over while hunting for the next valid frame boundary
  /// (includes any torn trailing partial frame).
  size_t bytesResynced = 0;
  size_t bytesTotal = 0;
};

/// Fold a DecodeStats *delta* into the registry's "llrp.*" counters
/// (frames_decoded, frames_skipped = resync events, frames_rejected =
/// chimera rejections, bytes_resynced, bytes_total).  Callers holding a
/// cumulative DecodeStats (TolerantStreamDecoder) publish successive
/// differences; per-invocation stats publish as-is.
void publishDecodeStats(const DecodeStats& delta,
                        obs::MetricsRegistry& registry);

/// Resynchronizing decoder for dirty streams: skips malformed or truncated
/// frames byte-by-byte until the next valid frame header, decodes everything
/// that survives, and never throws.  A frame is accepted only if no header
/// magic appears *inside* its 40 bytes (a torn write splices the next frame's
/// header into the payload) and its decoded fields are plausible (UHF-band
/// frequency, sane RSSI/channel/port/timestamp), so chimera frames assembled
/// from two torn halves are dropped instead of surfacing as phantom reports.
/// Known limit: a splice that removes an exact frame multiple glues one
/// frame's header+EPC onto another's measurement fields at the original
/// offsets; every field of that hybrid is individually genuine, so without a
/// frame CRC it cannot be told from a real report.  Damage is bounded to one
/// hybrid per splice (a real EPC with a neighbouring frame's measurements);
/// the downstream robust preprocess treats it like any other outlier read.
/// On a well-formed stream the result is bit-identical to decodeStream.
/// `stats` (optional) reports what was lost.  Stats are strictly
/// per-invocation: a caller-supplied DecodeStats is overwritten, never
/// accumulated into, so the same struct can be reused across calls.
ReportStream decodeStreamTolerant(std::span<const uint8_t> data,
                                  DecodeStats* stats = nullptr);

/// Incremental variant of decodeStreamTolerant for live transports that
/// deliver the stream in arbitrary chunks (a TCP read never respects frame
/// boundaries).  feed() appends bytes and returns every frame that can be
/// validated without waiting for more input; the undecidable tail (< one
/// frame, or a resync run still hunting for a boundary) is carried over to
/// the next feed().  finish() flushes that tail as a torn fragment -- call
/// it when the connection closes, then keep feeding after reconnect.
///
/// Feeding a whole stream in any chunking followed by finish() yields the
/// same reports and the same cumulative stats as one decodeStreamTolerant
/// call on the concatenation.
class TolerantStreamDecoder {
 public:
  /// Append bytes and decode every complete frame now decidable.
  ReportStream feed(std::span<const uint8_t> bytes);

  /// Flush the buffered tail (accounted as resynced bytes if non-empty)
  /// and reset the boundary-hunting state.  Returns nothing today --
  /// a partial frame can never decode -- but keeps the stats faithful.
  void finish();

  /// Cumulative stats since construction or the last resetStats().
  const DecodeStats& stats() const { return stats_; }
  void resetStats() { stats_ = {}; }

  /// Bytes buffered awaiting more input.
  size_t pendingBytes() const { return buffer_.size(); }

 private:
  std::vector<uint8_t> buffer_;
  bool resyncing_ = false;
  DecodeStats stats_;
};

/// The phase quantisation step of the wire format (2*pi / 4096).
double phaseResolutionRad();

}  // namespace tagspin::rfid::llrp
