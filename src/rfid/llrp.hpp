// LLRP-lite binary encoding of tag reports.
//
// The paper's reader speaks LLRP (Low Level Reader Protocol) with Impinj's
// custom extension that adds the phase report.  This is a compact,
// self-contained binary codec in that spirit -- big-endian framing, one
// RO_ACCESS_REPORT message per read -- so traces can be stored/transported
// the way a real deployment would, including the *quantisation* a real
// reader applies:
//   * phase is reported in 1/4096ths of a turn (Impinj PhaseAngle),
//   * RSSI in centi-dBm as a signed 16-bit integer,
//   * the timestamp in microseconds as an unsigned 64-bit integer.
//
// decode(encode(r)) is therefore *not* bit-exact in phase/RSSI; it is
// within the hardware's own reporting resolution (tested, and shown by the
// integration tests to be harmless to localization accuracy).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "rfid/report.hpp"

namespace tagspin::rfid::llrp {

/// Wire size of one encoded report message (fixed-size framing).
inline constexpr size_t kMessageSize = 40;

/// Encode one report as a single binary message.
std::vector<uint8_t> encodeReport(const TagReport& report);

/// Decode one message from the front of `data`.  Throws
/// std::invalid_argument on truncated or malformed input.
TagReport decodeReport(std::span<const uint8_t> data);

/// Encode a whole stream (concatenated messages).
std::vector<uint8_t> encodeStream(const ReportStream& reports);

/// Decode a concatenated stream; throws on any malformed message.
ReportStream decodeStream(std::span<const uint8_t> data);

/// The phase quantisation step of the wire format (2*pi / 4096).
double phaseResolutionRad();

}  // namespace tagspin::rfid::llrp
