// LLRP-style tag report records.
//
// The Impinj reader extends LLRP with phase reports; each successful read
// produces one record.  The localization server consumes exactly these
// fields -- notably the *reader-side* timestamp (the paper uses the reader
// clock, not the host clock, to dodge network latency).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "rfid/epc.hpp"

namespace tagspin::rfid {

struct TagReport {
  Epc epc;
  double timestampS = 0.0;   // reader clock, seconds
  double phaseRad = 0.0;     // [0, 2*pi)
  double rssiDbm = 0.0;
  int channelIndex = 0;      // index into the reader's FrequencyPlan
  double frequencyHz = 0.0;  // carrier of this read
  int antennaPort = 0;       // 0-based reader antenna port

  double wavelengthM() const;
};

using ReportStream = std::vector<TagReport>;

/// Keep only the reports of one EPC (stable order).
ReportStream filterByEpc(const ReportStream& all, const Epc& epc);

/// Keep only the reports of one antenna port (stable order).
ReportStream filterByAntenna(const ReportStream& all, int port);

/// Serialise to a compact CSV line / parse it back; used by the examples to
/// persist traces and by round-trip tests.
std::string toCsvLine(const TagReport& r);
TagReport fromCsvLine(const std::string& line);
std::string csvHeader();

}  // namespace tagspin::rfid
