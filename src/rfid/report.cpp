#include "rfid/report.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "rf/constants.hpp"

namespace tagspin::rfid {

double TagReport::wavelengthM() const {
  if (frequencyHz <= 0.0) {
    throw std::logic_error("TagReport: frequency not set");
  }
  return rf::wavelength(frequencyHz);
}

ReportStream filterByEpc(const ReportStream& all, const Epc& epc) {
  ReportStream out;
  std::copy_if(all.begin(), all.end(), std::back_inserter(out),
               [&](const TagReport& r) { return r.epc == epc; });
  return out;
}

ReportStream filterByAntenna(const ReportStream& all, int port) {
  ReportStream out;
  std::copy_if(all.begin(), all.end(), std::back_inserter(out),
               [&](const TagReport& r) { return r.antennaPort == port; });
  return out;
}

std::string csvHeader() {
  return "epc,timestamp_s,phase_rad,rssi_dbm,channel,frequency_hz,antenna";
}

std::string toCsvLine(const TagReport& r) {
  char buf[192];
  std::snprintf(buf, sizeof(buf), "%s,%.9f,%.9f,%.3f,%d,%.1f,%d",
                r.epc.toHex().c_str(), r.timestampS, r.phaseRad, r.rssiDbm,
                r.channelIndex, r.frequencyHz, r.antennaPort);
  return buf;
}

TagReport fromCsvLine(const std::string& line) {
  TagReport r;
  char epcHex[32] = {0};
  const int matched = std::sscanf(
      line.c_str(), "%31[^,],%lf,%lf,%lf,%d,%lf,%d", epcHex, &r.timestampS,
      &r.phaseRad, &r.rssiDbm, &r.channelIndex, &r.frequencyHz,
      &r.antennaPort);
  if (matched != 7) {
    throw std::invalid_argument("TagReport: malformed CSV line: " + line);
  }
  r.epc = Epc::fromHex(epcHex);
  return r;
}

}  // namespace tagspin::rfid
