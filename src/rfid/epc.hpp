// EPC-96 identifiers (EPC Gen2 / ISO 18000-6C tags carry a 96-bit EPC).
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <string>

namespace tagspin::rfid {

class Epc {
 public:
  Epc() = default;
  Epc(uint64_t hi, uint32_t lo) : hi_(hi), lo_(lo) {}

  /// Parse from a 24-hex-digit string (whitespace/'-' separators allowed).
  /// Throws std::invalid_argument on malformed input.
  static Epc fromHex(const std::string& hex);

  /// Deterministic EPC for the i-th tag of a simulated deployment.
  static Epc forSimulatedTag(uint32_t index);

  std::string toHex() const;

  uint64_t hi() const { return hi_; }
  uint32_t lo() const { return lo_; }

  auto operator<=>(const Epc&) const = default;

 private:
  uint64_t hi_ = 0;  // top 64 bits
  uint32_t lo_ = 0;  // bottom 32 bits
};

}  // namespace tagspin::rfid

template <>
struct std::hash<tagspin::rfid::Epc> {
  size_t operator()(const tagspin::rfid::Epc& e) const noexcept {
    return std::hash<uint64_t>{}(e.hi() ^ (uint64_t{e.lo()} << 17));
  }
};
