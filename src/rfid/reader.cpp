#include "rfid/reader.hpp"

namespace tagspin::rfid {

ReaderDevice ReaderDevice::makeDefault() { return makeWithAntennas(1); }

ReaderDevice ReaderDevice::makeWithAntennas(int n) {
  if (n < 1 || n > kMaxAntennas) {
    throw std::invalid_argument("ReaderDevice: antenna count must be 1..4");
  }
  ReaderDevice dev;
  dev.antennas.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    rf::ReaderAntenna a;
    // Distinct cable lengths / port electronics: each port contributes a
    // different constant to the diversity term (Fig. 12(d) probes this).
    a.cableAndPortPhase = 0.9 * static_cast<double>(i);
    dev.antennas.push_back(a);
  }
  return dev;
}

}  // namespace tagspin::rfid
