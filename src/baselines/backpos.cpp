#include "baselines/backpos.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "geom/angles.hpp"

namespace tagspin::baselines {

double backposCost(std::span<const AnchorPhase> anchors,
                   const geom::Vec2& candidate) {
  double cost = 0.0;
  for (size_t i = 0; i < anchors.size(); ++i) {
    for (size_t j = i + 1; j < anchors.size(); ++j) {
      const AnchorPhase& a = anchors[i];
      const AnchorPhase& b = anchors[j];
      const double da = geom::distance(candidate, a.position.xy());
      const double db = geom::distance(candidate, b.position.xy());
      // Round-trip phase difference predicted at the candidate point.
      const double predicted = 4.0 * std::numbers::pi * (da / a.lambdaM -
                                                         db / b.lambdaM);
      const double measured = a.phase - b.phase;
      const double r = geom::wrapToPi(measured - predicted);
      cost += r * r;
    }
  }
  return cost;
}

geom::Vec2 backposLocate(std::span<const AnchorPhase> anchors,
                         const SearchBounds& bounds,
                         const BackPosConfig& config) {
  if (anchors.size() < 3) {
    throw std::invalid_argument("backposLocate: need at least three anchors");
  }
  if (bounds.xMax <= bounds.xMin || bounds.yMax <= bounds.yMin) {
    throw std::invalid_argument("backposLocate: empty search bounds");
  }
  // The cost landscape is a field of narrow lambda/2 wrap-basins; the
  // coarse grid ranks basins but can sample the true basin off-center, so
  // several top candidates are refined independently and the best final
  // cost wins.
  struct Candidate {
    geom::Vec2 point;
    double cost;
  };
  std::vector<Candidate> top;
  const size_t keep = 64;
  const double separation = 0.08;  // ~ lambda/4: same-basin duplicates merge
  for (double x = bounds.xMin; x <= bounds.xMax; x += config.gridStepM) {
    for (double y = bounds.yMin; y <= bounds.yMax; y += config.gridStepM) {
      const geom::Vec2 p{x, y};
      const double c = backposCost(anchors, p);
      // Replace a nearby candidate if better; otherwise insert.
      bool merged = false;
      for (Candidate& cand : top) {
        if (geom::distance(cand.point, p) < separation) {
          if (c < cand.cost) cand = {p, c};
          merged = true;
          break;
        }
      }
      if (!merged) {
        top.push_back({p, c});
        std::sort(top.begin(), top.end(),
                  [](const Candidate& a, const Candidate& b) {
                    return a.cost < b.cost;
                  });
        if (top.size() > keep) top.pop_back();
      }
    }
  }

  auto refine = [&](Candidate cand) {
    double h = config.gridStepM / 2.0;
    for (int round = 0; round < config.refineRounds; ++round) {
      for (int dx = -1; dx <= 1; ++dx) {
        for (int dy = -1; dy <= 1; ++dy) {
          if (dx == 0 && dy == 0) continue;
          const geom::Vec2 p{cand.point.x + dx * h, cand.point.y + dy * h};
          const double c = backposCost(anchors, p);
          if (c < cand.cost) cand = {p, c};
        }
      }
      h /= 2.0;
    }
    return cand;
  };

  Candidate best{{bounds.xMin, bounds.yMin},
                 backposCost(anchors, {bounds.xMin, bounds.yMin})};
  for (const Candidate& cand : top) {
    const Candidate refined = refine(cand);
    if (refined.cost < best.cost) best = refined;
  }
  return best.point;
}

}  // namespace tagspin::baselines
