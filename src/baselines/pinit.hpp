// PinIt (Wang & Katabi, SIGCOMM 2013), adapted to reader localization.
//
// Original system: each tag's *multipath profile* (power arriving along each
// spatial angle, extracted with SAR) acts as a location fingerprint;
// a target tag is placed at the weighted centroid of the reference tags
// whose profiles are closest under DTW.
//
// Dual adaptation: an offline survey phase records the angular power profile
// observed from each reference grid position; online, the reader measures
// its own profile (via the spinning-tag SAR aperture) and matches it against
// the surveyed fingerprints with DTW.
#pragma once

#include <span>
#include <vector>

#include "baselines/dtw.hpp"
#include "geom/vec.hpp"

namespace tagspin::baselines {

struct PinItConfig {
  int k = 2;            // nearest fingerprints averaged
  DtwConfig dtw;
  double epsilon = 1e-3;  // regulariser in the 1/d^2 weight
};

struct Fingerprint {
  geom::Vec3 position;  // surveyed position
  /// One angular power profile per SAR aperture (a single aperture cannot
  /// separate positions along the same ray from it; the original PinIt had
  /// the same need for multiple antennas).
  std::vector<std::vector<double>> profiles;
};

/// Match `measured` (one profile per aperture, same order as the database)
/// against the survey; weighted centroid of the k nearest fingerprints
/// under the summed per-aperture DTW distance.  Throws
/// std::invalid_argument on an empty database, empty profiles, or aperture
/// count mismatch.
geom::Vec3 pinitLocate(std::span<const Fingerprint> database,
                       std::span<const std::vector<double>> measured,
                       const PinItConfig& config = {});

/// Summed per-aperture DTW distance (exposed for tests).
double pinitDistance(const Fingerprint& fp,
                     std::span<const std::vector<double>> measured,
                     const DtwConfig& config);

}  // namespace tagspin::baselines
