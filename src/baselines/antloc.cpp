#include "baselines/antloc.hpp"

#include <stdexcept>
#include <vector>

#include "geom/angles.hpp"
#include "geom/ray.hpp"

namespace tagspin::baselines {

geom::Vec3 antlocLocate(std::span<const BearingObservation> observations) {
  if (observations.size() < 2) {
    throw std::invalid_argument("antlocLocate: need at least two bearings");
  }
  std::vector<geom::Ray2> rays;
  rays.reserve(observations.size());
  double zAcc = 0.0;
  for (const BearingObservation& o : observations) {
    // The reader saw the tag at `bearing`; the reader therefore lies on the
    // ray leaving the tag in the opposite direction.
    rays.push_back({o.tagPosition.xy(),
                    geom::wrapTwoPi(o.bearingFromReader + geom::kPi)});
    zAcc += o.tagPosition.z;
  }
  const auto fix = geom::leastSquaresIntersection(rays);
  if (!fix) {
    throw std::runtime_error("antlocLocate: degenerate bearing geometry");
  }
  return {fix->x, fix->y, zAcc / static_cast<double>(observations.size())};
}

}  // namespace tagspin::baselines
