#include "baselines/pinit.hpp"

#include <algorithm>
#include <stdexcept>

namespace tagspin::baselines {

double pinitDistance(const Fingerprint& fp,
                     std::span<const std::vector<double>> measured,
                     const DtwConfig& config) {
  if (fp.profiles.size() != measured.size()) {
    throw std::invalid_argument("pinitDistance: aperture count mismatch");
  }
  double total = 0.0;
  for (size_t i = 0; i < measured.size(); ++i) {
    total += dtwDistance(measured[i], fp.profiles[i], config);
  }
  return total;
}

geom::Vec3 pinitLocate(std::span<const Fingerprint> database,
                       std::span<const std::vector<double>> measured,
                       const PinItConfig& config) {
  if (database.empty()) {
    throw std::invalid_argument("pinitLocate: empty fingerprint database");
  }
  if (measured.empty() ||
      std::any_of(measured.begin(), measured.end(),
                  [](const std::vector<double>& p) { return p.empty(); })) {
    throw std::invalid_argument("pinitLocate: empty measured profile");
  }
  struct Scored {
    double distance;
    const Fingerprint* fp;
  };
  std::vector<Scored> scored;
  scored.reserve(database.size());
  for (const Fingerprint& fp : database) {
    scored.push_back({pinitDistance(fp, measured, config.dtw), &fp});
  }
  std::sort(scored.begin(), scored.end(),
            [](const Scored& a, const Scored& b) {
              return a.distance < b.distance;
            });
  const size_t k =
      std::min(scored.size(), static_cast<size_t>(std::max(config.k, 1)));
  geom::Vec3 acc{};
  double wAcc = 0.0;
  for (size_t i = 0; i < k; ++i) {
    const double w =
        1.0 / ((scored[i].distance + config.epsilon) *
               (scored[i].distance + config.epsilon));
    acc += scored[i].fp->position * w;
    wAcc += w;
  }
  return acc / wAcc;
}

}  // namespace tagspin::baselines
