// LandMarc (Ni et al., Wireless Networks 2004), adapted to reader
// localization.
//
// Original system: reference active tags at known positions; a target tag's
// position is the weighted centroid of its k nearest reference tags, where
// nearness is similarity of RSSI vectors across readers.  Dual adaptation
// for locating the *reader*: the reader hears every reference tag once; the
// strongest-heard references are the nearest, and the reader's position is
// their weighted centroid with the classic 1/E^2 weights, E being the RSSI
// shortfall from the strongest reference.
#pragma once

#include <span>

#include "geom/vec.hpp"

namespace tagspin::baselines {

struct LandmarcConfig {
  int k = 4;                 // nearest references used
  double epsilonDb = 1.0;    // regulariser in the 1/E^2 weight
};

struct RssiObservation {
  geom::Vec3 position;  // reference tag's surveyed position
  double rssiDbm;       // average RSSI the reader measured for it
};

/// Weighted-centroid estimate.  Throws std::invalid_argument when fewer
/// than one observation is provided.
geom::Vec3 landmarcLocate(std::span<const RssiObservation> observations,
                          const LandmarcConfig& config = {});

}  // namespace tagspin::baselines
