// BackPos (Liu et al., INFOCOM 2014), adapted to reader localization.
//
// Original system: a tag is located from phase *differences* of arrival
// between pairs of reader antennas at known positions (hyperbolic
// positioning), with the phase's lambda/2 ambiguity resolved by constraining
// the solution to a feasible region.
//
// Dual adaptation: phase-calibrated reference tags at surveyed positions act
// as the anchors; the reader measures one averaged phase per anchor, and its
// position is the point in the feasible region whose predicted pairwise
// phase differences best match the measured ones (wrapped residuals, grid
// search + local refinement -- the grid plays the role of BackPos's
// constrained region).
#pragma once

#include <span>

#include "geom/vec.hpp"

namespace tagspin::baselines {

struct BackPosConfig {
  double gridStepM = 0.015;  // coarse search resolution (about lambda/20)
  int refineRounds = 6;
  /// Residual per-anchor phase-calibration error (rad, 1 sigma): anchors'
  /// theta_div is surveyed once; drift and orientation shift leave a
  /// residual.  Above ~0.2 rad the lambda/2 ambiguity search starts picking
  /// wrong lobes and the system fails outright.
  double anchorCalibrationStd = 0.12;
  /// Anchors used for the fix and the aperture of the anchor array.  The
  /// original system used four antennas spanning a few metres; a cluster
  /// that is too compact cannot range at room scale, while anchors spread
  /// over the whole room would hand the adaptation better geometry than the
  /// published system had.
  int anchorCount = 8;
  double arrayApertureM = 1.5;
};

struct AnchorPhase {
  geom::Vec3 position;  // anchor tag's surveyed position
  double phase;         // averaged measured phase, theta_div removed
  double lambdaM;       // wavelength the phase was measured at
};

struct SearchBounds {
  double xMin, xMax, yMin, yMax;
};

/// Hyperbolic fix in the plane.  Throws std::invalid_argument on fewer than
/// three anchors (two pairs are needed for an unambiguous 2D fix).
geom::Vec2 backposLocate(std::span<const AnchorPhase> anchors,
                         const SearchBounds& bounds,
                         const BackPosConfig& config = {});

/// The matching cost at a candidate point (sum of squared wrapped pairwise
/// residuals); exposed for tests.
double backposCost(std::span<const AnchorPhase> anchors,
                   const geom::Vec2& candidate);

}  // namespace tagspin::baselines
