#include "baselines/landmarc.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace tagspin::baselines {

geom::Vec3 landmarcLocate(std::span<const RssiObservation> observations,
                          const LandmarcConfig& config) {
  if (observations.empty()) {
    throw std::invalid_argument("landmarcLocate: no reference observations");
  }
  std::vector<RssiObservation> sorted(observations.begin(),
                                      observations.end());
  std::sort(sorted.begin(), sorted.end(),
            [](const RssiObservation& a, const RssiObservation& b) {
              return a.rssiDbm > b.rssiDbm;
            });
  const size_t k =
      std::min(sorted.size(), static_cast<size_t>(std::max(config.k, 1)));
  const double best = sorted.front().rssiDbm;

  geom::Vec3 acc{};
  double wAcc = 0.0;
  for (size_t i = 0; i < k; ++i) {
    const double e = best - sorted[i].rssiDbm + config.epsilonDb;
    const double w = 1.0 / (e * e);
    acc += sorted[i].position * w;
    wAcc += w;
  }
  return acc / wAcc;
}

}  // namespace tagspin::baselines
