#include "baselines/dtw.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

namespace tagspin::baselines {

double dtwDistance(std::span<const double> a, std::span<const double> b,
                   const DtwConfig& config) {
  const size_t n = a.size();
  const size_t m = b.size();
  if (n == 0 || m == 0) {
    throw std::invalid_argument("dtwDistance: empty sequence");
  }
  const double inf = std::numeric_limits<double>::infinity();
  const long band =
      config.bandFraction > 0.0
          ? std::max<long>(1, static_cast<long>(config.bandFraction *
                                                static_cast<double>(
                                                    std::max(n, m))))
          : static_cast<long>(std::max(n, m));

  // Rolling two-row DP.
  std::vector<double> prev(m + 1, inf);
  std::vector<double> curr(m + 1, inf);
  prev[0] = 0.0;
  for (size_t i = 1; i <= n; ++i) {
    std::fill(curr.begin(), curr.end(), inf);
    const long center = static_cast<long>(i * m / n);
    const size_t jLo = static_cast<size_t>(std::max<long>(1, center - band));
    const size_t jHi = static_cast<size_t>(
        std::min<long>(static_cast<long>(m), center + band));
    for (size_t j = jLo; j <= jHi; ++j) {
      const double d = a[i - 1] - b[j - 1];
      const double best =
          std::min({prev[j], curr[j - 1], prev[j - 1]});
      curr[j] = d * d + best;
    }
    std::swap(prev, curr);
  }
  const double cost = prev[m];
  if (!std::isfinite(cost)) {
    // Band too narrow for very unequal lengths; fall back to unconstrained.
    DtwConfig unconstrained;
    unconstrained.bandFraction = 0.0;
    return dtwDistance(a, b, unconstrained);
  }
  return std::sqrt(cost / static_cast<double>(n + m));
}

}  // namespace tagspin::baselines
