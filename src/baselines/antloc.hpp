// AntLoc -- the rotatable-antenna reader-localization scheme of Luo et al.
// (IEEE IECON 2007), the paper's only prior art for locating readers.
//
// The reader sweeps its directional antenna; for each reference tag the
// bearing of maximum RSSI estimates the tag's direction.  With two or more
// reference tags at surveyed positions the reader's own position follows by
// resection (each measured bearing defines a back-ray from the tag).  The
// bearing error is limited by the antenna's beamwidth divided by the RSSI
// contrast, i.e. several degrees -- which is why the original system reports
// decimeter-level error.
#pragma once

#include <span>

#include "geom/vec.hpp"

namespace tagspin::baselines {

struct AntLocConfig {
  /// 1-sigma bearing error of the max-RSSI sweep (radians).  A 60-70 degree
  /// HPBW patch antenna with stepped attenuation resolves the RSSI maximum
  /// to roughly a fifth of its beamwidth, ~12 degrees.
  double bearingNoiseStd = 0.22;
};

struct BearingObservation {
  geom::Vec3 tagPosition;   // surveyed reference tag position
  double bearingFromReader; // world-frame azimuth reader -> tag (measured)
};

/// Resection from bearings.  Throws std::invalid_argument on fewer than two
/// observations; std::runtime_error when all back-rays are parallel.
geom::Vec3 antlocLocate(std::span<const BearingObservation> observations);

}  // namespace tagspin::baselines
