// Dynamic time warping distance between sampled profiles; PinIt aligns
// multipath profiles with DTW before nearest-neighbour matching.
#pragma once

#include <span>

namespace tagspin::baselines {

struct DtwConfig {
  /// Sakoe-Chiba band half-width as a fraction of the sequence length;
  /// <= 0 disables the constraint.  Angular fingerprints must stay tight:
  /// a wide band lets profiles of different directions warp onto each other.
  double bandFraction = 0.02;
};

/// Classic DTW with squared pointwise cost; returns the square root of the
/// accumulated cost normalised by the warping-path-free length (so values
/// are comparable across sequence lengths).  Empty inputs throw
/// std::invalid_argument.
double dtwDistance(std::span<const double> a, std::span<const double> b,
                   const DtwConfig& config = {});

}  // namespace tagspin::baselines
