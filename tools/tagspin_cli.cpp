// tagspin_cli -- the deployment workflow as a command-line tool.
//
//   tagspin_cli simulate --dir DIR [--seed N] [--duration S]
//                        [--reader X,Y,Z] [--llrp]
//       Simulate a two-rig deployment: writes DIR/deployment.txt (rig
//       registry + fitted orientation models) and DIR/trace.csv (or
//       trace.llrp with --llrp) for a reader at the given position.
//
//   tagspin_cli locate --deployment FILE --trace FILE [--three-d]
//       Reload the deployment, ingest the trace (CSV or LLRP binary,
//       by extension) and print the reader fix.
//
//   tagspin_cli inspect --trace FILE
//       Per-tag read statistics of a trace.
//
//   tagspin_cli serve --dir DIR [--seed N] [--revolutions R] [--rigs N]
//                     [--kill-at F] [--no-outages] [--reader X,Y,Z]
//                     [--fleet-sessions N --shards K]
//       Run the supervised session runtime end-to-end against a simulated
//       flaky reader: connect/backoff state machine, watchdogs, bounded
//       ingest queues, and crash-safe checkpoints in DIR/checkpoint.ckpt.
//       The standard outage script injects disconnects, a stall and a
//       flood; --kill-at F simulates a kill -9 at fraction F of the run
//       followed by a restart that resumes from the checkpoint.  Runtime
//       telemetry is dumped periodically (and at exit) to DIR/metrics.prom
//       and DIR/metrics.json alongside the checkpoint.
//       With --fleet-sessions N, the FleetManager multiplexes N flaky
//       sessions over --shards K fault domains instead: shard-local retry
//       budgets, quarantine, load shedding, and batched per-shard
//       checkpoints in DIR/fleet_shard<k>.ckpt.
//
//   tagspin_cli stats --dir DIR [--format prom|json]
//       On-demand export: print the telemetry snapshot a serve run left in
//       DIR (Prometheus text or JSON with the recent event journal).
//
//   tagspin_cli record --dir DIR [--seed N] [--revolutions R] [--rigs N]
//                      [--no-outages] [--reader X,Y,Z] [--chunk-reports N]
//                      [--fsync-every N]
//       A serve run with a recording tap: every report the session's
//       transport delivers (including outage gaps and flood bursts, with
//       their delivery timing) is appended crash-safely to
//       DIR/capture.tspc alongside DIR/deployment.txt.  Prints the final
//       fix, its digest, and the capture accounting.
//
//   tagspin_cli track [--windows N] [--rigs N] [--seed N]
//                     [--capture FILE --deployment FILE [--interval S]]
//       Moving-reader tracking.  Without --capture: the deterministic
//       simulated patrol evaluation (the fig_track arms) -- prints the
//       clean/dropout/outage summaries and the replay digest.  With
//       --capture: re-drive a recorded capture through a supervised
//       session with the fix tracker enabled, taking a fix every
//       --interval seconds; prints the trajectory digest -- the same
//       capture twice yields the same digest, bit for bit.
//
//   tagspin_cli replay --capture FILE --deployment FILE [--speed N]
//                      [--strict] [--fleet-sessions N --shards K]
//       Re-drive the runtime from a capture instead of a live reader, at N
//       times the recorded pace (--speed 0 = as fast as possible).  The
//       tolerant reader skips corrupt chunks (accounting printed;
//       --strict hard-fails instead).  With --fleet-sessions N the one
//       capture fans out across N FleetManager sessions as a load
//       generator.  Prints the fix and its digest -- replaying the same
//       capture twice prints the same digest, bit for bit.
//
//   tagspin_cli oom [--seed N] [--points N] [--schedule-rounds N]
//                   [--no-broken-cache] [--no-pressure] [--no-parity]
//                   [--json[=PATH]]
//       Resource-exhaustion falsifier: allocation failures injected at
//       every sampled reservation boundary of the fleet, replay, tracker
//       and checkpoint paths (simulated allocator only -- the real heap
//       is never pressured), plus the zero-cost parity gate, the
//       sustained-pressure fix-rate arm, and the planted accounting bug
//       that must be caught and shrunk.
//
// The locate path touches no simulator code: it is exactly what a server
// attached to a real reader would run.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <numbers>
#include <sstream>
#include <string>
#include <vector>

#include "capture/digest.hpp"
#include "capture/record.hpp"
#include "capture/replay.hpp"
#include "capture/writer.hpp"
#include "core/serialization.hpp"
#include "core/tagspin.hpp"
#include "eval/crash.hpp"
#include "eval/fleet.hpp"
#include "eval/oom.hpp"
#include "eval/runner.hpp"
#include "eval/track.hpp"
#include "geom/angles.hpp"
#include "obs/export.hpp"
#include "obs/journal.hpp"
#include "obs/metrics.hpp"
#include "rfid/llrp.hpp"
#include "runtime/supervisor.hpp"
#include "sim/flaky_transport.hpp"
#include "sim/interrogator.hpp"
#include "sim/rng.hpp"
#include "sim/scenario.hpp"

using namespace tagspin;

namespace {

struct Args {
  std::map<std::string, std::string> named;
  bool has(const std::string& k) const { return named.count(k) > 0; }
  std::string get(const std::string& k, const std::string& fallback) const {
    const auto it = named.find(k);
    return it == named.end() ? fallback : it->second;
  }
};

Args parseArgs(int argc, char** argv, int from) {
  Args args;
  for (int i = from; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) {
      throw std::invalid_argument("expected --flag, got: " + key);
    }
    key = key.substr(2);
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      args.named[key] = argv[++i];
    } else {
      args.named[key] = "1";  // boolean flag
    }
  }
  return args;
}

geom::Vec3 parseVec3(const std::string& s) {
  geom::Vec3 v;
  char c1 = 0, c2 = 0;
  std::istringstream ss(s);
  if (!(ss >> v.x >> c1 >> v.y >> c2 >> v.z) || c1 != ',' || c2 != ',') {
    throw std::invalid_argument("expected X,Y,Z: " + s);
  }
  return v;
}

rfid::ReportStream loadTrace(const std::string& path) {
  const bool llrp = path.size() > 5 &&
                    path.compare(path.size() - 5, 5, ".llrp") == 0;
  std::ifstream in(path, llrp ? std::ios::binary : std::ios::in);
  if (!in) throw std::runtime_error("cannot open trace: " + path);
  if (llrp) {
    std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                               std::istreambuf_iterator<char>());
    return rfid::llrp::decodeStream(bytes);
  }
  rfid::ReportStream reports;
  std::string line;
  std::getline(in, line);  // header
  while (std::getline(in, line)) {
    if (!line.empty()) reports.push_back(rfid::fromCsvLine(line));
  }
  return reports;
}

int cmdSimulate(const Args& args) {
  const std::string dir = args.get("dir", ".");
  sim::ScenarioConfig sc;
  sc.seed = std::stoull(args.get("seed", "1"));
  sim::World world = sim::makeTwoRigWorld(sc);
  const geom::Vec3 reader = parseVec3(args.get("reader", "0.8,2.0,0"));
  sim::placeReaderAntenna(world, 0, reader);

  std::printf("running the orientation-calibration prelude...\n");
  const auto models = eval::runCalibrationPrelude(world, 60.0);

  core::DeploymentFile deployment;
  for (const sim::RigTag& rt : world.rigs) {
    core::RigSpec spec;
    spec.center = rt.rig.center;
    spec.kinematics = {rt.rig.radiusM, rt.rig.omegaRadPerS,
                       rt.rig.initialAngle, rt.rig.tagPlaneOffset};
    deployment.rigs[rt.tag.epc] = spec;
  }
  deployment.orientationModels = models;
  {
    std::ofstream out(dir + "/deployment.txt");
    if (!out) throw std::runtime_error("cannot write " + dir);
    core::writeDeployment(out, deployment);
  }

  const double duration = std::stod(args.get("duration", "30"));
  const rfid::ReportStream reports =
      sim::interrogate(world, {duration, 0, 0});
  if (args.has("llrp")) {
    const auto bytes = rfid::llrp::encodeStream(reports);
    std::ofstream out(dir + "/trace.llrp", std::ios::binary);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    std::printf("wrote %s/deployment.txt and %s/trace.llrp (%zu reports, "
                "%zu bytes)\n", dir.c_str(), dir.c_str(), reports.size(),
                bytes.size());
  } else {
    std::ofstream out(dir + "/trace.csv");
    out << rfid::csvHeader() << "\n";
    for (const rfid::TagReport& r : reports) {
      out << rfid::toCsvLine(r) << "\n";
    }
    std::printf("wrote %s/deployment.txt and %s/trace.csv (%zu reports)\n",
                dir.c_str(), dir.c_str(), reports.size());
  }
  std::printf("ground-truth reader position: (%.3f, %.3f, %.3f)\n", reader.x,
              reader.y, reader.z);
  return 0;
}

int cmdLocate(const Args& args) {
  std::ifstream dep(args.get("deployment", "deployment.txt"));
  if (!dep) throw std::runtime_error("cannot open deployment file");
  const core::DeploymentFile deployment = core::readDeployment(dep);

  core::TagspinSystem server;
  for (const auto& [epc, rig] : deployment.rigs) {
    server.registerRig(epc, rig);
  }
  for (const auto& [epc, rig] : deployment.verticalRigs) {
    server.registerVerticalRig(epc, rig);
  }
  for (const auto& [epc, model] : deployment.orientationModels) {
    server.setOrientationModel(epc, model);
  }

  const rfid::ReportStream reports = loadTrace(args.get("trace", "trace.csv"));
  std::printf("%zu reports, %zu registered rigs\n", reports.size(),
              server.rigCount());
  if (args.has("three-d")) {
    const core::Fix3D fix = server.locate3D(reports);
    std::printf("fix: (%.3f, %.3f, %.3f) m\n", fix.position.x, fix.position.y,
                fix.position.z);
    if (fix.mirrorCandidate) {
      std::printf("mirror candidate: (%.3f, %.3f, %.3f) m\n",
                  fix.mirrorCandidate->x, fix.mirrorCandidate->y,
                  fix.mirrorCandidate->z);
    }
  } else {
    const core::Fix2D fix = server.locate2D(reports);
    std::printf("fix: (%.3f, %.3f) m  [ray residual %.1f mm]\n",
                fix.position.x, fix.position.y, fix.residualM * 1000.0);
    for (size_t i = 0; i < fix.directions.size(); ++i) {
      std::printf("  rig %zu: azimuth %.2f deg, confidence %.3f\n", i,
                  geom::radToDeg(fix.directions[i].azimuth),
                  fix.directions[i].peakValue);
    }
  }
  return 0;
}

int cmdInspect(const Args& args) {
  const rfid::ReportStream reports = loadTrace(args.get("trace", "trace.csv"));
  if (reports.empty()) {
    std::printf("empty trace\n");
    return 0;
  }
  std::map<rfid::Epc, size_t> counts;
  std::map<int, size_t> channels;
  for (const rfid::TagReport& r : reports) {
    counts[r.epc]++;
    channels[r.channelIndex]++;
  }
  const double span =
      reports.back().timestampS - reports.front().timestampS;
  std::printf("%zu reports over %.1f s, %zu tags, %zu channels\n",
              reports.size(), span, counts.size(), channels.size());
  for (const auto& [epc, n] : counts) {
    std::printf("  %s  %6zu reads (%.1f /s)\n", epc.toHex().c_str(), n,
                span > 0 ? static_cast<double>(n) / span : 0.0);
  }
  return 0;
}

/// serve --fleet-sessions N --shards K: the fleet runtime instead of the
/// single supervisor.  N flaky sessions (sharing one pre-encoded stream)
/// are multiplexed over K fault domains; each session runs the standard
/// outage script with its own seed, so disconnect/stall/flood timing is
/// decorrelated across the fleet and the containment machinery -- retry
/// budgets, quarantine, shedding, batched checkpoints -- does real work.
int cmdServeFleet(const Args& args, size_t sessions) {
  const std::string dir = args.get("dir", ".");
  sim::ScenarioConfig sc;
  sc.seed = std::stoull(args.get("seed", "7"));
  sc.fixedChannel = true;
  const int rigCount = std::stoi(args.get("rigs", "3"));
  const double revolutions = std::stod(args.get("revolutions", "10"));
  const size_t shards = std::stoul(args.get("shards", "4"));
  const double period = 2.0 * std::numbers::pi / sc.rigOmegaRadPerS;
  const double durationS = revolutions * period;

  sim::World world = sim::makeRigRowWorld(sc, rigCount);
  const geom::Vec3 reader = parseVec3(args.get("reader", "0.8,2.0,0"));
  sim::placeReaderAntenna(world, 0, reader);
  const auto stream = sim::makeSharedStream(
      world, {durationS, 0, sim::deriveSeed(sc.seed, 2)});

  core::DeploymentFile deployment;
  for (const sim::RigTag& rt : world.rigs) {
    core::RigSpec spec;
    spec.center = rt.rig.center;
    spec.kinematics = {rt.rig.radiusM, rt.rig.omegaRadPerS,
                       rt.rig.initialAngle, rt.rig.tagPlaneOffset};
    deployment.rigs[rt.tag.epc] = spec;
  }

  obs::MetricsRegistry metrics;
  obs::EventJournal journal;
  runtime::FleetConfig fc = eval::FleetEvalConfig::defaultFleetConfig();
  fc.shards = shards;
  fc.maxSessions = sessions;
  fc.checkpointDir = dir;
  fc.metrics = &metrics;
  fc.journal = &journal;

  runtime::FleetManager fleet(fc, deployment);
  for (size_t i = 0; i < sessions; ++i) {
    sim::FlakyTransportConfig tc;
    tc.seed = sim::deriveSeed(sc.seed, 100 + i);
    if (!args.has("no-outages")) {
      tc.events = sim::standardOutageScript(durationS, period,
                                            sim::deriveSeed(sc.seed, 200 + i));
    }
    char name[24];
    std::snprintf(name, sizeof(name), "s%04zu", i);
    fleet.registerSession(name, [stream, tc] {
      return std::make_unique<sim::FlakyTransport>(stream, tc);
    });
  }
  const size_t restored = fleet.restore();  // fresh start: 0 restored
  std::printf("fleet: %zu sessions over %zu shards, %d rigs, %.0f "
              "revolutions (%.0f s)%s\n",
              fleet.sessionCount(), fleet.shardCount(), rigCount, revolutions,
              durationS, restored > 0 ? " [resumed from shard checkpoints]"
                                      : "");

  const double tickS = 0.1;
  double nextStatusS = 0.0;
  for (double t = 0.0; t <= durationS + 2.0; t += tickS) {
    fleet.tick(t);
    if (t >= nextStatusS) {
      const runtime::FleetStats s = fleet.stats();
      size_t withFix = 0;
      for (const auto& v : fleet.sessions()) {
        if (v.hasFix) ++withFix;
      }
      std::printf("[%7.1f s] shed %-8s fixed %4zu/%-4zu quarantined %-3zu "
                  "budget-denied %-6llu deferred %-6llu ckpts %llu\n", t,
                  runtime::shedLevelName(fleet.shedLevel()), withFix,
                  fleet.sessionCount(), s.quarantinedNow,
                  static_cast<unsigned long long>(s.budgetDenied),
                  static_cast<unsigned long long>(s.sessionsDeferred),
                  static_cast<unsigned long long>(s.checkpointWrites));
      nextStatusS += durationS / 10.0;
    }
  }
  fleet.shutdown(durationS + 2.0);

  const runtime::FleetStats s = fleet.stats();
  size_t withFix = 0;
  for (const auto& v : fleet.sessions()) {
    if (v.hasFix) ++withFix;
  }
  std::printf("fleet done: %zu/%zu sessions hold a fix | ejected %llu, "
              "readmitted %llu | fixes %llu (+%llu shed-skipped) | "
              "checkpoint writes %llu (failures %llu)\n",
              withFix, fleet.sessionCount(),
              static_cast<unsigned long long>(s.ejections),
              static_cast<unsigned long long>(s.readmissions),
              static_cast<unsigned long long>(s.fixesComputed),
              static_cast<unsigned long long>(s.fixesSkippedShed),
              static_cast<unsigned long long>(s.checkpointWrites),
              static_cast<unsigned long long>(s.checkpointFailures));
  const obs::MetricsSnapshot snap = metrics.snapshot();
  obs::writeTextFile(dir + "/metrics.prom", obs::toPrometheus(snap));
  obs::writeTextFile(dir + "/metrics.json", obs::toJson(snap, &journal));
  std::printf("shard checkpoints: %s/fleet_shard<k>.ckpt | telemetry: "
              "%s/metrics.{prom,json}\n", dir.c_str(), dir.c_str());
  return withFix == fleet.sessionCount() ? 0 : 1;
}

int cmdServe(const Args& args) {
  const size_t fleetSessions = std::stoul(args.get("fleet-sessions", "0"));
  if (fleetSessions > 0) return cmdServeFleet(args, fleetSessions);
  const std::string dir = args.get("dir", ".");
  sim::ScenarioConfig sc;
  sc.seed = std::stoull(args.get("seed", "7"));
  sc.fixedChannel = true;
  const int rigCount = std::stoi(args.get("rigs", "3"));
  const double revolutions = std::stod(args.get("revolutions", "10"));
  const double killAt = std::stod(args.get("kill-at", "0"));
  const double period = 2.0 * std::numbers::pi / sc.rigOmegaRadPerS;
  const double durationS = revolutions * period;

  sim::World world = sim::makeRigRowWorld(sc, rigCount);
  const geom::Vec3 reader = parseVec3(args.get("reader", "0.8,2.0,0"));
  sim::placeReaderAntenna(world, 0, reader);

  sim::FlakyTransportConfig tc;
  tc.interrogate = {durationS, 0, sim::deriveSeed(sc.seed, 2)};
  tc.seed = sim::deriveSeed(sc.seed, 3);
  if (!args.has("no-outages")) {
    tc.events = sim::standardOutageScript(durationS, period,
                                          sim::deriveSeed(sc.seed, 4));
  }
  auto shared = std::make_shared<sim::FlakyTransport>(world, tc);
  std::printf("serving %d rigs for %.0f revolutions (%.0f s), %zu outage "
              "events scripted\n", rigCount, revolutions, durationS,
              tc.events.size());

  core::DeploymentFile deployment;
  for (const sim::RigTag& rt : world.rigs) {
    core::RigSpec spec;
    spec.center = rt.rig.center;
    spec.kinematics = {rt.rig.radiusM, rt.rig.omegaRadPerS,
                       rt.rig.initialAngle, rt.rig.tagPlaneOffset};
    deployment.rigs[rt.tag.epc] = spec;
  }

  const std::string ckptPath = dir + "/checkpoint.ckpt";
  std::remove(ckptPath.c_str());
  runtime::CheckpointStore store(ckptPath);
  const runtime::TransportFactory factory = [shared] {
    return std::make_unique<runtime::SharedTransport>(shared);
  };

  // One registry + journal for the whole serve run: they outlive the
  // supervisor, so counters keep accumulating across the kill -9 restart
  // exactly like a scrape endpoint on a real deployment would.
  obs::MetricsRegistry metrics;
  obs::EventJournal journal;
  const auto dumpTelemetry = [&] {
    const obs::MetricsSnapshot snap = metrics.snapshot();
    obs::writeTextFile(dir + "/metrics.prom", obs::toPrometheus(snap));
    obs::writeTextFile(dir + "/metrics.json", obs::toJson(snap, &journal));
  };

  runtime::SupervisorConfig supCfg;
  supCfg.session.queueCapacity = 2048;
  supCfg.metrics = &metrics;
  supCfg.journal = &journal;
  // The serve runtime runs the full robust stack: spin self-diagnosis and
  // consensus are on by default; the bootstrap ellipse is opt-in because of
  // its extra profile builds, and a long-running session is exactly where
  // the confidence region pays for itself.
  supCfg.locator.robust.bootstrap = true;
  auto sup = std::make_unique<runtime::Supervisor>(supCfg, deployment, &store);
  sup->addSession("reader0", factory);
  const auto restored = sup->restore();  // fresh start: kCheckpointMissing
  if (restored.hasValue()) {
    std::printf("resumed from checkpoint seq %llu (reader clock %.1f s)\n",
                static_cast<unsigned long long>(restored->sequence),
                restored->lastReportTimestampS);
  }

  const double tickS = 0.05;
  double nextStatusS = 0.0;
  bool killDone = killAt <= 0.0;
  for (double t = 0.0; t <= durationS + 2.0; t += tickS) {
    if (!killDone && t >= killAt * durationS) {
      killDone = true;
      std::printf("[%7.1f s] kill -9: dropping supervisor without "
                  "shutdown\n", t);
      sup.reset();  // no shutdown(): only the last checkpoint survives
      shared->close();
      sup = std::make_unique<runtime::Supervisor>(supCfg, deployment, &store);
      const auto res = sup->restore();
      if (res.hasValue()) {
        std::printf("[%7.1f s] restart: restored checkpoint seq %llu, "
                    "reader clock %.1f s\n", t,
                    static_cast<unsigned long long>(res->sequence),
                    res->lastReportTimestampS);
      } else {
        std::printf("[%7.1f s] restart: %s\n", t, res.error().message.c_str());
      }
      sup->addSession("reader0", factory);
    }
    sup->tick(t);
    if (t >= nextStatusS) {
      const runtime::ReaderSession& s = sup->session(0);
      std::printf("[%7.1f s] %-12s ingested %-7llu dups %-5llu ckpts %-4llu "
                  "disconnects %llu\n", t,
                  runtime::sessionStateName(s.state()),
                  static_cast<unsigned long long>(sup->stats().reportsIngested),
                  static_cast<unsigned long long>(
                      sup->stats().duplicatesSuppressed),
                  static_cast<unsigned long long>(sup->stats().checkpointsSaved),
                  static_cast<unsigned long long>(s.stats().disconnects));
      dumpTelemetry();
      nextStatusS += durationS / 10.0;
    }
  }
  // Locate with recovery BEFORE shutdown so the final checkpoint carries
  // the [last_fix] section (and any quarantined tag is cleared for re-spin
  // were the session to keep running).
  const auto fix = sup->locateAndRecover2D(durationS + 2.0);
  sup->shutdown(durationS + 2.0);

  if (fix.hasValue()) {
    const double dx = fix->fix.position.x - reader.x;
    const double dy = fix->fix.position.y - reader.y;
    std::printf("final fix: (%.3f, %.3f) m, grade %s, confidence %.2f, "
                "error %.1f cm\n",
                fix->fix.position.x, fix->fix.position.y,
                core::fixGradeName(fix->report.grade),
                fix->report.confidence,
                std::sqrt(dx * dx + dy * dy) * 100.0);
    const core::EstimationDiagnostics& est = fix->fix.estimation;
    std::printf("robust: %s, inlier fraction %.2f, %zu behind-origin "
                "ray(s), %llu quarantined / %llu re-spin(s)\n",
                est.consensusUsed ? "consensus" : "least squares",
                est.inlierFraction, est.behindOriginRays,
                static_cast<unsigned long long>(sup->stats().quarantinedSpins),
                static_cast<unsigned long long>(sup->stats().respinsRequested));
    if (est.ellipse) {
      std::printf("%.0f%% confidence ellipse: %.1f x %.1f cm, "
                  "orientation %.0f deg\n",
                  est.ellipse->confidenceLevel * 100.0,
                  est.ellipse->semiMajorM * 100.0,
                  est.ellipse->semiMinorM * 100.0,
                  geom::radToDeg(est.ellipse->orientationRad));
    }
  } else {
    std::printf("no fix: %s\n", fix.error().message.c_str());
  }
  dumpTelemetry();  // final export includes the end-of-run fix spans
  std::printf("checkpoint: %s (%llu saves)\n", ckptPath.c_str(),
              static_cast<unsigned long long>(sup->stats().checkpointsSaved));
  std::printf("telemetry: %s/metrics.prom and %s/metrics.json "
              "(`tagspin_cli stats --dir %s` to print)\n", dir.c_str(),
              dir.c_str(), dir.c_str());
  return fix.hasValue() ? 0 : 1;
}

/// record: a supervised serve run with the capture tap between the
/// transport and the session, persisting everything the session saw.
int cmdRecord(const Args& args) {
  const std::string dir = args.get("dir", ".");
  sim::ScenarioConfig sc;
  sc.seed = std::stoull(args.get("seed", "7"));
  sc.fixedChannel = true;
  const int rigCount = std::stoi(args.get("rigs", "3"));
  const double revolutions = std::stod(args.get("revolutions", "10"));
  const double period = 2.0 * std::numbers::pi / sc.rigOmegaRadPerS;
  const double durationS = revolutions * period;

  sim::World world = sim::makeRigRowWorld(sc, rigCount);
  const geom::Vec3 reader = parseVec3(args.get("reader", "0.8,2.0,0"));
  sim::placeReaderAntenna(world, 0, reader);

  sim::FlakyTransportConfig tc;
  tc.interrogate = {durationS, 0, sim::deriveSeed(sc.seed, 2)};
  tc.seed = sim::deriveSeed(sc.seed, 3);
  if (!args.has("no-outages")) {
    tc.events = sim::standardOutageScript(durationS, period,
                                          sim::deriveSeed(sc.seed, 4));
  }
  auto shared = std::make_shared<sim::FlakyTransport>(world, tc);

  core::DeploymentFile deployment;
  for (const sim::RigTag& rt : world.rigs) {
    core::RigSpec spec;
    spec.center = rt.rig.center;
    spec.kinematics = {rt.rig.radiusM, rt.rig.omegaRadPerS,
                       rt.rig.initialAngle, rt.rig.tagPlaneOffset};
    deployment.rigs[rt.tag.epc] = spec;
  }
  {
    std::ofstream out(dir + "/deployment.txt");
    if (!out) throw std::runtime_error("cannot write " + dir);
    core::writeDeployment(out, deployment);
  }

  const std::string capPath = dir + "/capture.tspc";
  std::remove(capPath.c_str());
  capture::CaptureWriterConfig wc;
  wc.chunkReports = std::stoul(args.get("chunk-reports", "64"));
  wc.fsyncEveryChunks = std::stoul(args.get("fsync-every", "4"));
  capture::CaptureWriter writer(capPath, wc);
  std::printf("recording %d rigs for %.0f revolutions (%.0f s), %zu outage "
              "events, chunks of %zu reports\n", rigCount, revolutions,
              durationS, tc.events.size(), wc.chunkReports);

  runtime::SupervisorConfig supCfg;
  supCfg.session.queueCapacity = 2048;
  runtime::Supervisor sup(supCfg, deployment, nullptr);
  // Restarts mint a fresh tap over the same endpoint; one writer, one file.
  sup.addSession("reader0", [shared, &writer] {
    return std::make_unique<capture::RecordingTransport>(
        std::make_unique<runtime::SharedTransport>(shared), &writer);
  });
  for (double t = 0.0; t <= durationS + 2.0; t += 0.05) sup.tick(t);
  const auto fix = sup.tryLocate2D();
  sup.shutdown(durationS + 2.0);
  writer.close();

  const capture::CaptureWriterStats& ws = writer.stats();
  std::printf("capture: %llu reports in %llu chunks, %llu bytes, %llu "
              "fsyncs -> %s\n",
              static_cast<unsigned long long>(ws.reportsWritten),
              static_cast<unsigned long long>(ws.chunksWritten),
              static_cast<unsigned long long>(ws.bytesWritten),
              static_cast<unsigned long long>(ws.fsyncs), capPath.c_str());
  if (fix.hasValue()) {
    const double dx = fix->fix.position.x - reader.x;
    const double dy = fix->fix.position.y - reader.y;
    std::printf("final fix: (%.3f, %.3f) m, grade %s, error %.1f cm, "
                "digest %s\n",
                fix->fix.position.x, fix->fix.position.y,
                core::fixGradeName(fix->report.grade),
                std::sqrt(dx * dx + dy * dy) * 100.0,
                capture::digestHex(capture::fixDigest(*fix)).c_str());
  } else {
    std::printf("no fix: %s\n", fix.error().message.c_str());
  }
  std::printf("replay with: tagspin_cli replay --capture %s --deployment "
              "%s/deployment.txt\n", capPath.c_str(), dir.c_str());
  return fix.hasValue() ? 0 : 1;
}

/// replay: drive the runtime from a capture file.  One supervised session
/// by default; --fleet-sessions N fans the capture across a fleet.
int cmdReplay(const Args& args) {
  const std::string capPath = args.get("capture", "capture.tspc");
  std::ifstream dep(args.get("deployment", "deployment.txt"));
  if (!dep) throw std::runtime_error("cannot open deployment file");
  const core::DeploymentFile deployment = core::readDeployment(dep);
  const double speed = std::stod(args.get("speed", "1"));
  const size_t fleetSessions = std::stoul(args.get("fleet-sessions", "0"));

  capture::CaptureStats cs;
  const capture::TimedStream timed =
      capture::readCaptureFile(capPath, !args.has("strict"), &cs);
  std::printf("capture v%u.%u: %llu reports from %zu chunks (%zu skipped, "
              "%zu duplicated, %zu bytes resynced%s)\n", cs.versionMajor,
              cs.versionMinor,
              static_cast<unsigned long long>(cs.reportsRecovered),
              cs.chunksDecoded, cs.chunksSkipped, cs.chunksDuplicated,
              cs.bytesResynced,
              cs.headerRecovered ? ", header recovered" : "");
  if (timed.empty()) throw std::runtime_error("capture holds no reports");
  const auto stream = capture::makeReplayStream(timed);
  const double spanS = stream->releaseS.back();
  const double endS = (speed > 0.0 ? spanS / speed : 0.0) + 2.0;

  capture::ReplayTransportConfig rc;
  rc.speed = speed;

  if (fleetSessions > 0) {
    const size_t shards = std::stoul(args.get("shards", "4"));
    obs::MetricsRegistry metrics;
    runtime::FleetConfig fc = eval::FleetEvalConfig::defaultFleetConfig();
    fc.shards = shards;
    fc.maxSessions = fleetSessions;
    fc.metrics = &metrics;
    runtime::FleetManager fleet(fc, deployment);
    for (size_t i = 0; i < fleetSessions; ++i) {
      auto transport = std::make_shared<capture::ReplayTransport>(stream, rc);
      char name[24];
      std::snprintf(name, sizeof(name), "r%04zu", i);
      fleet.registerSession(name, [transport] {
        return std::make_unique<runtime::SharedTransport>(transport);
      });
    }
    std::printf("replaying %.1f s of capture at %gx into %zu sessions over "
                "%zu shards\n", spanS, speed, fleet.sessionCount(),
                fleet.shardCount());
    for (double t = 0.0; t <= endS + 1e-9; t += 0.1) fleet.tick(t);
    fleet.shutdown(endS);
    size_t withFix = 0;
    for (const auto& v : fleet.sessions()) {
      if (v.hasFix) ++withFix;
    }
    std::printf("fleet replay done: %zu/%zu sessions hold a fix, %llu "
                "reports ingested\n", withFix, fleet.sessionCount(),
                static_cast<unsigned long long>(
                    metrics.snapshot().counterValue(
                        "supervisor.reports_ingested")));
    return withFix == fleet.sessionCount() ? 0 : 1;
  }

  auto transport = std::make_shared<capture::ReplayTransport>(stream, rc);
  runtime::SupervisorConfig supCfg;
  supCfg.session.queueCapacity = 2048;
  runtime::Supervisor sup(supCfg, deployment, nullptr);
  sup.addSession("replay0", [transport] {
    return std::make_unique<runtime::SharedTransport>(transport);
  });
  std::printf("replaying %.1f s of capture at %gx\n", spanS, speed);
  for (double t = 0.0; t <= endS + 1e-9; t += 0.05) sup.tick(t);
  const auto fix = sup.tryLocate2D();
  sup.shutdown(endS);
  std::printf("%llu reports ingested (%zu delivered by the transport)\n",
              static_cast<unsigned long long>(sup.stats().reportsIngested),
              transport->framesDelivered());
  if (fix.hasValue()) {
    std::printf("replay fix: (%.3f, %.3f) m, grade %s, digest %s\n",
                fix->fix.position.x, fix->fix.position.y,
                core::fixGradeName(fix->report.grade),
                capture::digestHex(capture::fixDigest(*fix)).c_str());
  } else {
    std::printf("no fix: %s\n", fix.error().message.c_str());
  }
  return fix.hasValue() ? 0 : 1;
}

/// track: sequential tracking over the fix stream -- simulated patrol
/// evaluation by default, capture replay with --capture.
int cmdTrack(const Args& args) {
  if (args.has("capture")) {
    std::ifstream dep(args.get("deployment", "deployment.txt"));
    if (!dep) throw std::runtime_error("cannot open deployment file");
    const core::DeploymentFile deployment = core::readDeployment(dep);
    runtime::SupervisorConfig supCfg;
    supCfg.session.queueCapacity = 2048;
    const double intervalS = std::stod(args.get("interval", "2"));
    const eval::TrackReplayResult r = eval::runTrackReplay(
        args.get("capture", "capture.tspc"), deployment, supCfg, intervalS);
    std::printf("tracked replay: %zu fixes -> %zu track estimates, final "
                "state %s at (%.3f, %.3f) m\n", r.fixes, r.estimates,
                r.finalState.c_str(), r.finalX, r.finalY);
    std::printf("trajectory digest %016llx\n",
                static_cast<unsigned long long>(r.trajectoryDigest));
    return r.estimates > 0 ? 0 : 1;
  }

  eval::TrackEvalConfig cfg;
  cfg.windows = std::stoi(args.get("windows",
                                   std::to_string(cfg.windows)));
  cfg.rigCount = std::stoi(args.get("rigs",
                                    std::to_string(cfg.rigCount)));
  cfg.seed = std::stoull(args.get("seed", std::to_string(cfg.seed)));
  std::printf("tracking %d windows x %.1f s, %d rigs, %.2f m/s patrol, "
              "seed %llu\n", cfg.windows, cfg.windowS, cfg.rigCount,
              cfg.speedMps, static_cast<unsigned long long>(cfg.seed));
  const eval::TrackEvalResult r = eval::runTrackEval(cfg);
  std::printf("clean  : fix RMSE %.2f cm | track RMSE %.2f cm (%.2fx)\n",
              r.clean.fixRmseCm, r.clean.trackRmseCm, r.rmseRatio);
  std::printf("dropout: %d gaps + %d ghosts | track RMSE %.2f cm | %llu "
              "gate-rejects\n", r.dropout.gapWindows, r.dropout.ghostWindows,
              r.dropout.trackRmseCm,
              static_cast<unsigned long long>(r.dropout.stats.gateRejects));
  std::printf("outage : survived %s (final %s), coast max %.2f cm\n",
              r.outageSurvived ? "yes" : "NO",
              r.outage.finalState.c_str(), r.outage.coastMaxErrorCm);
  std::printf("replay : digest %016llx vs %016llx -> %s\n",
              static_cast<unsigned long long>(r.replayDigest1),
              static_cast<unsigned long long>(r.replayDigest2),
              r.replayDeterministic ? "bit-identical" : "MISMATCH");
  return (r.replayDeterministic && r.outageSurvived) ? 0 : 1;
}

/// crash: run the crash-consistency falsifier (simulated storage only --
/// nothing on the real disk is touched).  --json=PATH dumps the full
/// result; any violation or a missed planted bug exits nonzero.
int cmdCrash(const Args& args) {
  eval::CrashExploreConfig cfg;
  cfg.seed = std::stoull(args.get("seed", std::to_string(cfg.seed)));
  cfg.captureReports = std::stoul(
      args.get("reports", std::to_string(cfg.captureReports)));
  cfg.scheduleRounds = std::stoul(
      args.get("schedule-rounds", std::to_string(cfg.scheduleRounds)));
  if (args.has("no-broken-writer")) cfg.exploreBrokenWriter = false;

  const eval::CrashEvalResult r = eval::runCrashEval(cfg);
  for (const eval::WorkloadCrashStats& w : r.workloads) {
    std::printf("%-22s %6llu boundaries  %7llu crash points  %llu "
                "violations\n", w.name.c_str(),
                static_cast<unsigned long long>(w.boundaries),
                static_cast<unsigned long long>(w.crashPoints),
                static_cast<unsigned long long>(w.violations));
  }
  std::printf("schedule search: %llu runs, %llu violations\n",
              static_cast<unsigned long long>(r.scheduleRuns),
              static_cast<unsigned long long>(r.scheduleViolations));
  if (cfg.exploreBrokenWriter) {
    std::printf("planted bug: caught %s, shrunk to %llu fault(s)\n",
                r.brokenWriterCaught ? "yes" : "NO",
                static_cast<unsigned long long>(r.brokenShrunkFaults));
    if (!r.brokenArtifactJson.empty()) {
      std::printf("minimal artifact: %s\n", r.brokenArtifactJson.c_str());
    }
  }
  for (const eval::CrashViolation& v : r.violations) {
    std::printf("VIOLATION [%s] crashAtOp=%lld persist=%s: %s\n",
                v.workload.c_str(), static_cast<long long>(v.crashAtOp),
                v.persistMode.c_str(), v.detail.c_str());
  }
  if (args.has("json")) {
    std::ofstream out(args.get("json", "crash.json"));
    out << eval::crashJson(r);
  }
  std::printf("%s\n", r.pass ? "PASS" : "FAIL");
  return r.pass ? 0 : 1;
}

/// oom: run the resource-exhaustion falsifier (simulated allocator only --
/// the process's real heap is never pressured).  --json=PATH dumps the
/// full result; any violation, parity divergence, pressure fix-rate miss,
/// or missed planted bug exits nonzero.
int cmdOom(const Args& args) {
  eval::OomExploreConfig cfg;
  cfg.seed = std::stoull(args.get("seed", std::to_string(cfg.seed)));
  cfg.pointsPerWorkload = std::stoul(
      args.get("points", std::to_string(cfg.pointsPerWorkload)));
  cfg.scheduleRounds = std::stoul(
      args.get("schedule-rounds", std::to_string(cfg.scheduleRounds)));
  if (args.has("no-broken-cache")) cfg.exploreBrokenCache = false;
  if (args.has("no-pressure")) cfg.runPressureArm = false;
  if (args.has("no-parity")) cfg.runParityGate = false;

  const eval::OomEvalResult r = eval::runOomEval(cfg);
  for (const eval::WorkloadOomStats& w : r.workloads) {
    std::printf("%-22s %6llu boundaries  %7llu points  %6llu denials  %llu "
                "violations\n", w.name.c_str(),
                static_cast<unsigned long long>(w.boundaries),
                static_cast<unsigned long long>(w.points),
                static_cast<unsigned long long>(w.denials),
                static_cast<unsigned long long>(w.violations));
  }
  std::printf("schedule search: %llu runs, %llu violations\n",
              static_cast<unsigned long long>(r.scheduleRuns),
              static_cast<unsigned long long>(r.scheduleViolations));
  if (r.parityChecked) {
    std::printf("parity: %s\n",
                r.parityBitIdentical ? "bit-identical" : "DIVERGED");
  }
  if (r.pressureChecked) {
    std::printf("pressure: fix rate %.4f at %.1f%% utilization, %llu trims, "
                "%llu ejections\n",
                r.pressureFixRate, 100.0 * r.pressureUtilization,
                static_cast<unsigned long long>(r.pressureTrims),
                static_cast<unsigned long long>(r.pressureEjections));
  }
  if (cfg.exploreBrokenCache) {
    std::printf("planted bug: caught %s, shrunk to %llu fault(s)\n",
                r.brokenCacheCaught ? "yes" : "NO",
                static_cast<unsigned long long>(r.brokenShrunkFaults));
    if (!r.brokenArtifactJson.empty()) {
      std::printf("minimal artifact: %s\n", r.brokenArtifactJson.c_str());
    }
  }
  for (const eval::OomViolation& v : r.violations) {
    std::printf("VIOLATION [%s] failAtOp=%lld: %s\n", v.workload.c_str(),
                static_cast<long long>(v.failAtOp), v.detail.c_str());
  }
  if (args.has("json")) {
    std::ofstream out(args.get("json", "oom.json"));
    out << eval::oomJson(r);
  }
  std::printf("%s\n", r.pass ? "PASS" : "FAIL");
  return r.pass ? 0 : 1;
}

int cmdStats(const Args& args) {
  const std::string dir = args.get("dir", ".");
  const std::string format = args.get("format", "json");
  if (format != "json" && format != "prom") {
    throw std::invalid_argument("--format must be prom or json");
  }
  const std::string path = dir + "/metrics." + format;
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("no telemetry export at " + path +
                             " (run `tagspin_cli serve --dir " + dir +
                             "` first)");
  }
  std::cout << in.rdbuf();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: tagspin_cli <simulate|locate|inspect|serve|record|"
                 "replay|track|crash|oom|stats> [--flags]\n");
    return 2;
  }
  try {
    const std::string cmd = argv[1];
    const Args args = parseArgs(argc, argv, 2);
    if (cmd == "simulate") return cmdSimulate(args);
    if (cmd == "locate") return cmdLocate(args);
    if (cmd == "inspect") return cmdInspect(args);
    if (cmd == "serve") return cmdServe(args);
    if (cmd == "record") return cmdRecord(args);
    if (cmd == "replay") return cmdReplay(args);
    if (cmd == "track") return cmdTrack(args);
    if (cmd == "crash") return cmdCrash(args);
    if (cmd == "oom") return cmdOom(args);
    if (cmd == "stats") return cmdStats(args);
    std::fprintf(stderr, "unknown command: %s\n", cmd.c_str());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
