#!/usr/bin/env bash
# Build and run the full test suite under ASan+UBSan, then re-run the
# end-to-end soak smoke (label `soak_smoke`) on its own: the supervised
# runtime's kill/restore path is the likeliest place for lifetime bugs, so
# it gets a dedicated, serial sanitizer pass with visible output.  The
# adversarial estimation smoke (label `adversarial`) gets the same
# treatment: consensus/bootstrap exercise the widest span of estimation
# code under corrupted inputs.  So does the fleet smoke (label
# `fleet_smoke`): 64 sessions over 4 fault domains with a correlated
# outage, the widest object-lifetime churn in the runtime.  The tracking
# smoke (label `track_smoke`) covers the square-root filter bank and the
# track lifecycle over the clean/dropout/outage arms.  The capture
# fuzz corpus (capture_test: bit flips, truncation, duplicated chunks,
# garbage splices against the record/replay format) and the end-to-end
# record/replay smoke (label `replay_smoke`) round out the set: the capture
# CRCs must stop damage before any decoder walks out of bounds, which is
# exactly what ASan/UBSan verify.  The crash-consistency smoke (label
# `crash_smoke`) drives every durable writer through thousands of simulated
# power cuts and recoveries -- heavy allocation churn across torn buffers,
# a good ASan payload.
#
# A final pass builds with ThreadSanitizer (its own build dir -- TSan
# cannot share objects with ASan) and runs the `tsan`-labeled tests: the
# lock-free MPMC ring, the obs metric atomics, and the fleet worker pool
# (runtime_test includes the pool-vs-inline parity test), i.e. every place
# the codebase relies on acquire/release or relaxed memory orders or hands
# shards across threads.
#
# Usage: tools/run_sanitized.sh [build-dir] [extra ctest args...]
# Default build dir: build-asan (the TSan pass uses <build-dir>-tsan).
# Set TAGSPIN_SKIP_TSAN=1 to skip the ThreadSanitizer pass.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-asan}"
shift || true

GEN_ARGS=()
if command -v ninja >/dev/null 2>&1; then
  GEN_ARGS=(-G Ninja)
fi

cmake -B "$BUILD_DIR" -S . "${GEN_ARGS[@]}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DTAGSPIN_SANITIZE="address;undefined"
cmake --build "$BUILD_DIR" -j"$(nproc)"

export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1:strict_string_checks=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$(nproc)" "$@"

echo
echo "== soak smoke under sanitizers (ctest -L soak_smoke) =="
ctest --test-dir "$BUILD_DIR" --output-on-failure -L soak_smoke

echo
echo "== adversarial estimation smoke under sanitizers (ctest -L adversarial) =="
ctest --test-dir "$BUILD_DIR" --output-on-failure -L adversarial

echo
echo "== fleet smoke under sanitizers (ctest -L fleet_smoke) =="
ctest --test-dir "$BUILD_DIR" --output-on-failure -L fleet_smoke

echo
echo "== tracking smoke under sanitizers (ctest -L track_smoke) =="
ctest --test-dir "$BUILD_DIR" --output-on-failure -L track_smoke

echo
echo "== capture fuzz corpus under sanitizers (ctest -R CaptureFormatFuzz) =="
ctest --test-dir "$BUILD_DIR" --output-on-failure -R 'CaptureFormatFuzz'

echo
echo "== record/replay smoke under sanitizers (ctest -L replay_smoke) =="
ctest --test-dir "$BUILD_DIR" --output-on-failure -L replay_smoke

echo
echo "== crash-consistency smoke under sanitizers (ctest -L crash_smoke) =="
ctest --test-dir "$BUILD_DIR" --output-on-failure -L crash_smoke

echo
echo "== resource-exhaustion smoke under sanitizers (ctest -L oom_smoke) =="
ctest --test-dir "$BUILD_DIR" --output-on-failure -L oom_smoke

echo
echo "== malloc-failure smoke (ASan allocator_may_return_null=1) =="
# Re-run the OOM exploration with the ASan allocator returning null instead
# of aborting on its internal limits: the harness's injected denials already
# cover the MemEnv seam, and this pass confirms nothing in the surrounding
# code paths (std::bad_alloc propagation, container growth) trips ASan when
# real allocation failure is on the table.
ASAN_OPTIONS="${ASAN_OPTIONS}:allocator_may_return_null=1" \
  ctest --test-dir "$BUILD_DIR" --output-on-failure -L oom_smoke

if [[ "${TAGSPIN_SKIP_TSAN:-0}" != "1" ]]; then
  TSAN_BUILD_DIR="${BUILD_DIR}-tsan"
  echo
  echo "== ThreadSanitizer pass over runtime + obs (ctest -L tsan) =="
  cmake -B "$TSAN_BUILD_DIR" -S . "${GEN_ARGS[@]}" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DTAGSPIN_SANITIZE="thread"
  cmake --build "$TSAN_BUILD_DIR" -j"$(nproc)" --target runtime_test obs_test
  export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1:second_deadlock_stack=1}"
  ctest --test-dir "$TSAN_BUILD_DIR" --output-on-failure -L tsan
fi
