#!/usr/bin/env bash
# Build and run the full test suite under ASan+UBSan, then re-run the
# end-to-end soak smoke (label `soak_smoke`) on its own: the supervised
# runtime's kill/restore path is the likeliest place for lifetime bugs, so
# it gets a dedicated, serial sanitizer pass with visible output.
#
# Usage: tools/run_sanitized.sh [build-dir] [extra ctest args...]
# Default build dir: build-asan (kept separate from the plain build).
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-asan}"
shift || true

GEN_ARGS=()
if command -v ninja >/dev/null 2>&1; then
  GEN_ARGS=(-G Ninja)
fi

cmake -B "$BUILD_DIR" -S . "${GEN_ARGS[@]}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DTAGSPIN_SANITIZE="address;undefined"
cmake --build "$BUILD_DIR" -j"$(nproc)"

export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1:strict_string_checks=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$(nproc)" "$@"

echo
echo "== soak smoke under sanitizers (ctest -L soak_smoke) =="
ctest --test-dir "$BUILD_DIR" --output-on-failure -L soak_smoke
