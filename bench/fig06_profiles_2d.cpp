// Fig. 6 -- generated power profiles with one spinning tag: the original
// Q(phi) vs. the proposed R(phi).  The scene follows the paper's: the
// tag's circular array centered at (0.40 m, 0), the reader at 180 degrees.
// The reproduction metric is the half-power peak width: R's peak is far
// sharper, so false candidates fade away.
#include <cstdio>

#include "core/power_profile.hpp"
#include "core/preprocess.hpp"
#include "core/spectrum.hpp"
#include "dsp/peaks.hpp"
#include "eval/report.hpp"
#include "geom/angles.hpp"
#include "sim/interrogator.hpp"
#include "sim/scenario.hpp"

using namespace tagspin;

int main() {
  eval::printHeading("Fig. 6: original profile Q(phi) vs proposed R(phi)");

  sim::ScenarioConfig sc;
  sc.seed = 6;
  sc.fixedChannel = true;
  sim::World world = sim::makeTwoRigWorld(sc);
  world.rigs.resize(1);
  world.rigs[0].rig.center = {0.40, 0.0, 0.0};
  // Reader along the 180-degree direction from the tag, 1.2 m away.
  const geom::Vec3 reader{0.40 - 1.20, 0.0 + 1e-3, 0.0};
  sim::placeReaderAntenna(world, 0, reader);

  const rfid::ReportStream reports = sim::interrogate(world, {30.0, 0, 0});
  const auto snaps =
      core::extractSnapshots(reports, world.rigs[0].tag.epc);
  const core::RigKinematics kin{
      world.rigs[0].rig.radiusM, world.rigs[0].rig.omegaRadPerS,
      world.rigs[0].rig.initialAngle, world.rigs[0].rig.tagPlaneOffset};
  const double truth = geom::azimuthOf(world.rigs[0].rig.center, reader);
  std::printf("true direction: %.2f deg, %zu snapshots\n",
              geom::radToDeg(truth), snaps.size());

  for (const auto& [name, formula] :
       {std::pair{"Q(phi)", core::ProfileFormula::kRelativeQ},
        std::pair{"R(phi)", core::ProfileFormula::kEnhancedR}}) {
    core::ProfileConfig pc;
    pc.formula = formula;
    const core::PowerProfile profile(snaps, kin, pc);
    const auto samples = profile.sampleAzimuth(720);
    eval::printProfileAscii(name, samples, 10);

    const auto est = core::estimateAzimuth(profile, {});
    const size_t peakBin = dsp::argmax(samples);
    const double width =
        dsp::halfPowerWidth(samples, peakBin, /*circular=*/true) * 0.5;
    std::printf("  %s: peak at %7.2f deg (err %+6.2f deg), value %.3f, "
                "half-power width %.1f deg\n\n",
                name, geom::radToDeg(est.azimuth),
                geom::radToDeg(geom::circularDiff(est.azimuth, truth)),
                est.value, width);
  }
  std::printf("[paper: both profiles peak toward the reader; R's peak is "
              "far sharper, suppressing false candidates]\n");
  return 0;
}
