// Record/replay benchmark (no paper counterpart -- the production benchmark
// this reproduction adds): a chaotic live session is recorded through the
// crash-safe capture writer, then the capture is replayed to prove it is a
// faithful, deterministic stand-in for the live run -- twice for the
// bit-identical-digest gate, once through a seeded 1%-chunk corruption pass
// for the recovery gate, and fanned across a fleet of sessions for load
// generation.
//
// Usage: fig_replay [--seed=N] [--out=DIR] [--json[=PATH]] [revolutions]
//                   [fleetSessions] [outPrefix]
// Writes DIR/<outPrefix>.json and DIR/<outPrefix>.tspc (the capture;
// default DIR "bench/out").  --json additionally writes the shared-schema
// sidecar (default PATH "BENCH_replay.json").
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "capture/digest.hpp"
#include "eval/replay.hpp"
#include "eval/report.hpp"

using namespace tagspin;

int main(int argc, char** argv) {
  eval::ReplayEvalConfig rc;
  rc.scenario.seed = 57;
  rc.scenario.fixedChannel = true;
  std::string sidecarPath;
  std::vector<std::string> pos;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--seed=", 0) == 0) {
      rc.seed = std::stoull(arg.substr(7));
    } else if (arg == "--json") {
      sidecarPath = "BENCH_replay.json";
    } else if (arg.rfind("--json=", 0) == 0) {
      sidecarPath = arg.substr(7);
    } else {
      pos.push_back(arg);
    }
  }
  const std::string outDir = eval::consumeOutDir(pos);
  rc.revolutions = pos.size() > 0 ? std::atof(pos[0].c_str()) : 10.0;
  rc.fleetSessions = pos.size() > 1 ? size_t(std::atoi(pos[1].c_str())) : 64;
  const std::string prefix =
      eval::outputPath(outDir, pos.size() > 2 ? pos[2] : "fig_replay");
  rc.capturePath = prefix + ".tspc";

  eval::printHeading("Replay: record -> capture -> deterministic replay");
  std::printf("%g revolutions under the standard outage script, seed 0x%llX, "
              "fleet fan-out %zu sessions @ %gx\n",
              rc.revolutions, static_cast<unsigned long long>(rc.seed),
              rc.fleetSessions, rc.fleetSpeed);

  const eval::ReplayEvalResult r = eval::runReplayEval(rc);

  std::printf("\ncapture: %zu reports in %zu chunks, %llu bytes "
              "(%.1f B/report vs 40 B LLRP), intact %s\n",
              r.reportsCaptured, r.chunksCaptured,
              static_cast<unsigned long long>(r.captureBytes),
              r.bytesPerReport, r.captureIntact ? "yes" : "NO");
  std::printf("live fix: %s, %.2f cm, digest %s\n",
              r.liveOk ? r.liveGrade.c_str() : "FAILED", r.liveErrorCm,
              capture::digestHex(r.liveFixDigest).c_str());
  std::printf("replay fix: %s, %.2f cm, digests %s / %s -> deterministic "
              "%s\n",
              r.replay1.ok ? r.replay1.grade.c_str() : "FAILED",
              r.replay1.errorCm,
              capture::digestHex(r.replay1.fixDigest).c_str(),
              capture::digestHex(r.replay2.fixDigest).c_str(),
              r.replayDeterministic ? "yes" : "NO");
  std::printf("live-vs-replay parity: %.4f cm (bit-identical %s)\n",
              r.fixParityCm, r.fixParityExact ? "yes" : "no");
  std::printf("throughput: %.0f reports/s through decode+re-encode+drain "
              "(%.3fs wall)\n",
              r.replayThroughputRps, r.replayWallS);
  std::printf("corruption: %zu/%zu chunks hit -> %zu skipped, recovery "
              "%.2f%%, recovered replay %s (%.2f cm)\n",
              r.chunksCorrupted, r.chunksCaptured,
              r.corruptStats.chunksSkipped, r.recoveryRate * 100,
              r.corruptReplay.ok ? "ok" : "FAILED", r.corruptReplay.errorCm);
  std::printf("fleet load-gen: %zu sessions / %zu shards, fix rate %.1f%%, "
              "%llu reports ingested, %.0f reports/s (%.1fs wall)\n",
              r.fleetSessions, r.fleetShards, r.fleetFixRate * 100,
              static_cast<unsigned long long>(r.fleetReportsIngested),
              r.fleetThroughputRps, r.fleetWallS);

  const std::string payload = eval::replayJson(r);
  std::ofstream json(prefix + ".json");
  json << payload;
  std::printf("\nwrote %s.json and %s.tspc\n", prefix.c_str(),
              prefix.c_str());

  bench::BenchRecord record;
  record.name = "replay";
  record.seed = rc.seed;
  record.payload = payload;
  record.gate("capture_intact", r.captureIntact);
  record.gate("replay_deterministic", r.replayDeterministic);
  record.gate("fix_parity_le_0_5cm",
              r.liveOk && r.replay1.ok && r.fixParityCm <= 0.5);
  record.gate("recovery_ge_99pct", r.recoveryRate >= 0.99);
  record.gate("corrupt_replay_ok", r.corruptReplay.ok);
  record.gate("fleet_all_fixed",
              r.fleetSessions > 0 && r.fleetFixRate >= 1.0 - 1e-12);
  record.metric("reports_captured", double(r.reportsCaptured));
  record.metric("bytes_per_report", r.bytesPerReport);
  record.metric("fix_parity_cm", r.fixParityCm);
  record.metric("recovery_rate", r.recoveryRate);
  record.metric("replay_throughput_rps", r.replayThroughputRps);
  record.metric("fleet_throughput_rps", r.fleetThroughputRps);
  if (!sidecarPath.empty()) {
    bench::writeBenchSidecar(sidecarPath, record);
  }

  std::printf("[acceptance: replay-twice digests bit-identical (%s), "
              "1%%-corrupted capture recovery >= 99%% (%.2f%%), replay fix "
              "within 0.5 cm of live (%.4f cm)]\n",
              r.replayDeterministic ? "yes" : "NO", r.recoveryRate * 100,
              r.fixParityCm);

  return record.allGatesPass() ? 0 : 1;
}
