// Fig. 12 -- impact of parameters (all 2D, as in the paper):
//  (a) distance between the two rig centers, 20..80 cm: stable above
//      ~30 cm, degraded at the minimum (2r = 20 cm, disks touching);
//  (b) disk radius, 2..30 cm: stable window ~[8, 20] cm -- smaller radii
//      leave the phases indistinguishable, larger radii break the far-field
//      D >> r approximation;
//  (c) tag diversity: the five Alien models perform nearly identically;
//  (d) antenna diversity: the four reader ports perform nearly identically.
#include <cstdio>
#include <utility>
#include <vector>

#include "eval/estimators.hpp"
#include "eval/report.hpp"
#include "rfid/tag_models.hpp"

using namespace tagspin;

namespace {

eval::RunResult run2d(const sim::ScenarioConfig& sc, int trials,
                      int antennaPort = 0) {
  eval::RunnerConfig rc;
  rc.world = sim::makeTwoRigWorld(sc);
  rc.region = sim::Region{};
  rc.trials = trials;
  rc.durationS = 30.0;
  rc.antennaPort = antennaPort;
  return eval::runExperiment(rc, eval::makeTagspin2D());
}

}  // namespace

int main(int argc, char** argv) {
  const int trials = argc > 1 ? std::atoi(argv[1]) : 10;

  eval::printHeading("Fig. 12(a): error vs distance between rig centers");
  {
    std::vector<std::pair<double, double>> series;
    for (double cm = 20.0; cm <= 80.0 + 1e-9; cm += 10.0) {
      sim::ScenarioConfig sc;
      sc.seed = 120;
      sc.fixedChannel = true;
      sc.centerSpacingM = cm / 100.0;
      series.emplace_back(cm, run2d(sc, trials).summary.mean);
    }
    eval::printSeries("centers_cm", "mean_err_cm", series);
    std::printf("[paper: stable above ~30 cm; impaired at the 2r minimum]\n");
  }

  eval::printHeading("Fig. 12(b): error vs disk radius");
  {
    std::vector<std::pair<double, double>> series;
    for (double cm : {2.0, 4.0, 6.0, 8.0, 12.0, 16.0, 20.0, 25.0, 30.0}) {
      sim::ScenarioConfig sc;
      sc.seed = 121;
      sc.fixedChannel = true;
      sc.rigRadiusM = cm / 100.0;
      // Keep the disks from overlapping at large radii.
      sc.centerSpacingM = std::max(0.40, 2.2 * sc.rigRadiusM);
      series.emplace_back(cm, run2d(sc, trials).summary.mean);
    }
    eval::printSeries("radius_cm", "mean_err_cm", series);
    std::printf("[paper: accurate and stable for radius in ~[8, 20] cm]\n");
  }

  eval::printHeading("Fig. 12(c): error vs tag model (tag diversity)");
  {
    eval::printSummaryHeader();
    double lo = 1e18, hi = 0.0;
    for (const rfid::TagModel& model : rfid::allTagModels()) {
      sim::ScenarioConfig sc;
      sc.seed = 122;
      sc.fixedChannel = true;
      sc.tagModel = model.id;
      const auto res = run2d(sc, trials);
      eval::printSummaryRow(model.name, res.summary);
      lo = std::min(lo, res.summary.mean);
      hi = std::max(hi, res.summary.mean);
    }
    std::printf("max-min spread across models: %.2f cm "
                "[paper: fraction of a cm]\n", hi - lo);
  }

  eval::printHeading("Fig. 12(d): error CDF per reader antenna port");
  {
    eval::printSummaryHeader();
    for (int port = 0; port < 4; ++port) {
      sim::ScenarioConfig sc;
      sc.seed = 123;
      sc.fixedChannel = true;
      sc.antennaCount = 4;
      const auto res = run2d(sc, trials, port);
      char name[32];
      std::snprintf(name, sizeof name, "Antenna %d", port + 1);
      eval::printSummaryRow(name, res.summary);
    }
    std::printf("[paper: only slight differences across the four antennas]\n");
  }
  return 0;
}
