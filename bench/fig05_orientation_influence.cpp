// Fig. 5 -- influence of tag orientation: the tag is fixed at the disk
// *center* (its distance to the reader never changes) yet the reported
// phase fluctuates by ~0.7 rad as the disk rotates.
#include <cstdio>
#include <vector>

#include "core/preprocess.hpp"
#include "dsp/stats.hpp"
#include "eval/report.hpp"
#include "geom/angles.hpp"
#include "sim/interrogator.hpp"
#include "sim/scenario.hpp"

using namespace tagspin;

int main() {
  eval::printHeading(
      "Fig. 5: tag fixed at the disk center -- phase vs. rotation");

  sim::ScenarioConfig sc;
  sc.seed = 5;
  sc.fixedChannel = true;
  sim::World world = sim::makeCenterSpinWorld(sc);
  const geom::Vec3 reader{0.0, 2.0, 0.0};
  sim::placeReaderAntenna(world, 0, reader);

  const sim::RigTag& rig = world.rigs[0];
  const rfid::ReportStream reports =
      sim::interrogate(world, {2.0 * rig.rig.periodS(), 0, 0});
  const auto snaps = core::extractSnapshots(reports, rig.tag.epc);

  // Phase relative to the first read, against orientation rho.
  std::printf("%10s %14s %14s\n", "time_s", "rho_deg", "rel_phase_rad");
  std::vector<double> rel(snaps.size());
  const size_t step = snaps.size() / 60 + 1;
  for (size_t i = 0; i < snaps.size(); ++i) {
    rel[i] = geom::wrapToPi(snaps[i].phaseRad - snaps[0].phaseRad);
    if (i % step == 0) {
      const double rho =
          rig.rig.orientationRho(snaps[i].timeS, reader);
      std::printf("%10.3f %14.1f %14.4f\n", snaps[i].timeS,
                  geom::radToDeg(rho), rel[i]);
    }
  }

  // Robust span (3% of reads carry uniform interference outliers).
  const double p2p = dsp::percentile(rel, 98.0) - dsp::percentile(rel, 2.0);
  std::printf("\nphase fluctuation (distance constant!): %.3f rad "
              "p2-p98 span  [paper: ~0.7 rad]\n", p2p);
  std::printf("ground-truth orientation response of this tag instance: "
              "%.3f rad peak-to-peak\n",
              rig.tag.orientation.peakToPeak());
  return 0;
}
