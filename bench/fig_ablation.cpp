// Ablations beyond the paper's figures -- the design choices DESIGN.md
// calls out:
//  (1) profile formula P/Q/R under the full noise model,
//  (2) the weight-bandwidth scale of R(phi),
//  (3) multipath strength (scatterer reflectivity),
//  (4) channel hopping on/off with channel-coherent grouping,
//  (5) third, vertically-spinning rig for +-z disambiguation
//      (the paper's future-work extension).
//
// Usage: fig_ablation [--seed=N] [--json[=PATH]] [trials]
// --json writes the machine-readable trajectory sidecar (default PATH
// "BENCH_ablation.json"); the exit code reflects its acceptance gates.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "bench_json.hpp"
#include "core/config.hpp"
#include "core/tagspin.hpp"
#include "eval/estimators.hpp"
#include "eval/report.hpp"
#include "rf/channel.hpp"
#include "sim/interrogator.hpp"

using namespace tagspin;

namespace {

eval::RunResult run2d(const sim::World& world, int trials, uint64_t seed,
                      const core::LocatorConfig& lc) {
  eval::RunnerConfig rc;
  rc.world = world;
  rc.region = sim::Region{};
  rc.trials = trials;
  rc.durationS = 30.0;
  rc.seed = seed;
  return eval::runExperiment(rc, eval::makeTagspin2D(lc));
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t seed = 99;  // the eval::RunnerConfig default
  std::string sidecarPath;
  std::vector<std::string> pos;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--seed=", 0) == 0) {
      seed = std::stoull(arg.substr(7));
    } else if (arg == "--json") {
      sidecarPath = "BENCH_ablation.json";
    } else if (arg.rfind("--json=", 0) == 0) {
      sidecarPath = arg.substr(7);
    } else {
      pos.push_back(arg);
    }
  }
  const int trials = pos.size() > 0 ? std::atoi(pos[0].c_str()) : 10;
  // Offset for the sections with their own RNGs: zero at the default seed,
  // so `--seed` absent reproduces the historical output exactly.
  const uint64_t seedDelta = seed - 99;

  // Headline numbers captured for the --json sidecar.
  double meanP = 0.0, meanR = 0.0;
  double mpFirst = 0.0, mpLast = 0.0;
  double hopGrouped = 0.0, hopNaive = 0.0;
  double zPrior = 0.0, zVertical = 0.0;

  eval::printHeading("Ablation 1: profile formula (full noise model, 2D)");
  {
    sim::ScenarioConfig sc;
    sc.seed = 201;
    sc.fixedChannel = true;
    const sim::World world = sim::makeTwoRigWorld(sc);
    eval::printSummaryHeader();
    for (const auto& [name, f] :
         {std::pair{"P (classical AoA)", core::ProfileFormula::kClassicalP},
          std::pair{"Q (relative)", core::ProfileFormula::kRelativeQ},
          std::pair{"R (enhanced)", core::ProfileFormula::kEnhancedR}}) {
      core::LocatorConfig lc;
      lc.profile.formula = f;
      const dsp::Summary s = run2d(world, trials, seed, lc).summary;
      if (f == core::ProfileFormula::kClassicalP) meanP = s.mean;
      if (f == core::ProfileFormula::kEnhancedR) meanR = s.mean;
      eval::printSummaryRow(name, s);
    }
  }

  eval::printHeading("Ablation 2: R(phi) weight bandwidth scale");
  {
    sim::ScenarioConfig sc;
    sc.seed = 202;
    sc.fixedChannel = true;
    const sim::World world = sim::makeTwoRigWorld(sc);
    std::vector<std::pair<double, double>> series;
    for (double scale : {1.0, 2.0, 3.0, 5.0, 8.0}) {
      core::LocatorConfig lc;
      lc.profile.weightSigmaScale = scale;
      series.emplace_back(scale, run2d(world, trials, seed, lc).summary.mean);
    }
    eval::printSeries("sigma_scale", "mean_err_cm", series);
    std::printf("[after orientation calibration the residuals are noise-"
                "dominated and R is insensitive to the scale; the scale "
                "matters when structured residuals remain -- see DESIGN.md "
                "deviation 3]\n");
  }

  eval::printHeading("Ablation 3: multipath strength");
  {
    std::vector<std::pair<double, double>> series;
    for (double refl : {0.0, 0.01, 0.02, 0.05, 0.10}) {
      sim::ScenarioConfig sc;
      sc.seed = 203;
      sc.fixedChannel = true;
      sc.multipath = refl > 0.0;
      sim::World world = sim::makeTwoRigWorld(sc);
      std::vector<rf::Scatterer> scatterers = world.channel.scatterers();
      for (rf::Scatterer& s : scatterers) s.reflectivity = refl;
      world.channel =
          rf::BackscatterChannel(world.channel.config(), scatterers);
      series.emplace_back(refl, run2d(world, trials, seed, {}).summary.mean);
    }
    mpFirst = series.front().second;
    mpLast = series.back().second;
    eval::printSeries("reflectivity", "mean_err_cm", series);
    std::printf("[coherent multipath is the dominant residual error]\n");
  }

  eval::printHeading("Ablation 4: channel hopping + channel-coherent groups");
  {
    eval::printSummaryHeader();
    for (const bool hopping : {false, true}) {
      sim::ScenarioConfig sc;
      sc.seed = 204;
      sc.fixedChannel = !hopping;
      const sim::World world = sim::makeTwoRigWorld(sc);
      for (const bool grouped : {true, false}) {
        if (!hopping && !grouped) continue;  // identical to grouped
        core::LocatorConfig lc;
        lc.profile.channelCoherent = grouped;
        char name[64];
        std::snprintf(name, sizeof name, "%s, %s",
                      hopping ? "16-ch hopping" : "fixed channel",
                      grouped ? "per-channel groups" : "naive single group");
        const dsp::Summary s = run2d(world, trials, seed, lc).summary;
        if (hopping && grouped) hopGrouped = s.mean;
        if (hopping && !grouped) hopNaive = s.mean;
        eval::printSummaryRow(name, s);
      }
    }
    std::printf("[relative phases only cohere within a channel; grouping "
                "restores accuracy under regulatory hopping]\n");
  }

  eval::printHeading(
      "Ablation 5: third vertically-spinning rig resolves the z sign");
  {
    sim::ScenarioConfig sc;
    sc.seed = 205;
    sc.fixedChannel = true;
    sc.rigPlaneZ = 1.2;  // rigs on a shelf; readers below them
    sim::World world = sim::makeTwoRigWorld(sc);
    sim::addVerticalRig(world, {0.0, 0.35, sc.rigPlaneZ}, sc);

    // Readers BELOW the rig plane: the kNonNegative prior mirrors every one
    // of them to the wrong half-space; the vertical rig recovers the sign.
    core::LocatorConfig withPrior;  // default kNonNegative
    core::LocatorConfig withVertical;
    withVertical.zResolution = core::ZResolution::kBoth;

    const auto models = eval::runCalibrationPrelude(world, 60.0);
    std::vector<eval::ErrorCm> priorErrors, verticalErrors;
    std::mt19937_64 rng(777 + seedDelta);
    std::uniform_real_distribution<double> dx(-1.2, 1.2), dy(1.0, 2.8),
        dz(0.3, 1.0);
    for (int trial = 0; trial < trials; ++trial) {
      sim::World w = world;
      const geom::Vec3 truth{dx(rng), dy(rng), sc.rigPlaneZ - dz(rng)};
      sim::placeReaderAntenna(w, 0, truth);
      const auto reports =
          sim::interrogate(
              w, {30.0, 0, static_cast<uint64_t>(trial) + 1 + seedDelta});

      const auto priorServer =
          eval::buildTagspinServer(w, models, withPrior);
      priorErrors.push_back(
          eval::errorCm(priorServer.locate3D(reports).position, truth));
      const auto verticalServer =
          eval::buildTagspinServer(w, models, withVertical);
      verticalErrors.push_back(
          eval::errorCm(verticalServer.locate3D(reports).position, truth));
    }
    const dsp::Summary priorSummary = eval::summarizeCombined(priorErrors);
    const dsp::Summary verticalSummary =
        eval::summarizeCombined(verticalErrors);
    zPrior = priorSummary.mean;
    zVertical = verticalSummary.mean;
    eval::printSummaryHeader();
    eval::printSummaryRow("z>=plane prior (wrong half-space)", priorSummary);
    eval::printSummaryRow("vertical-rig disambiguation", verticalSummary);
    std::printf("[readers are 0.3-1.0 m BELOW the rig plane: the fixed "
                "prior mirrors them, the third (vertically spinning) rig "
                "recovers the true sign -- the paper's future-work "
                "extension]\n");
  }

  // One machine-readable record: the gates encode the qualitative claim of
  // each ablation with generous margins (the seeds are fixed, but CI runs
  // with few trials, so the gates test direction, not exact magnitudes).
  bench::BenchRecord record;
  record.name = "ablation";
  record.seed = seed;
  record.gate("profile_r_not_worse_than_p", meanR <= meanP * 1.25 + 0.5);
  record.gate("multipath_error_grows", mpLast >= mpFirst * 2.0);
  record.gate("grouping_recovers_hopping_accuracy",
              hopGrouped <= hopNaive + 0.5);
  record.gate("vertical_rig_resolves_z_sign", zVertical <= zPrior * 0.5);
  record.metric("profile_p_mean_cm", meanP);
  record.metric("profile_r_mean_cm", meanR);
  record.metric("multipath_clean_mean_cm", mpFirst);
  record.metric("multipath_strong_mean_cm", mpLast);
  record.metric("hopping_grouped_mean_cm", hopGrouped);
  record.metric("hopping_naive_mean_cm", hopNaive);
  record.metric("z_prior_mean_cm", zPrior);
  record.metric("z_vertical_mean_cm", zVertical);
  if (!sidecarPath.empty()) {
    bench::writeBenchSidecar(sidecarPath, record);
  }
  return record.allGatesPass() ? 0 : 1;
}
