// Fig. 11 -- impact of tag orientation.
// (a) Mean relative phase vs orientation, swept 0..360 deg, averaged over
//     the five tag models at several locations (relative to the rho = 90 deg
//     reference, as in the paper).
// (b) Localization error CDFs with vs without the orientation-calibration
//     step; the paper reports a ~1.7x mean improvement.
#include <cstdio>
#include <utility>
#include <vector>

#include "core/preprocess.hpp"
#include "eval/estimators.hpp"
#include "eval/report.hpp"
#include "geom/angles.hpp"
#include "sim/interrogator.hpp"
#include "sim/scenario.hpp"

using namespace tagspin;

int main(int argc, char** argv) {
  const int trials = argc > 1 ? std::atoi(argv[1]) : 20;

  eval::printHeading("Fig. 11(a): mean relative phase vs tag orientation");
  {
    // Sweep orientation with the tag at the disk center, for each model at
    // several locations; average the relative phase per orientation bin.
    constexpr int kBins = 36;
    std::vector<double> acc(kBins, 0.0);
    std::vector<int> cnt(kBins, 0);
    int configs = 0;
    for (const rfid::TagModel& model : rfid::allTagModels()) {
      for (int loc = 0; loc < 3; ++loc) {
        sim::ScenarioConfig sc;
        sc.seed = 1100 + static_cast<uint64_t>(configs);
        sc.fixedChannel = true;
        sc.tagModel = model.id;
        sim::World world = sim::makeCenterSpinWorld(sc);
        const geom::Vec3 reader{0.4 * loc - 0.4, 1.6 + 0.5 * loc, 0.0};
        sim::placeReaderAntenna(world, 0, reader);
        const auto reports = sim::interrogate(
            world, {world.rigs[0].rig.periodS(), 0, 0});
        const auto snaps =
            core::extractSnapshots(reports, world.rigs[0].tag.epc);
        // Reference phase: the read closest to rho = 90 deg.
        double refPhase = snaps[0].phaseRad;
        double bestDist = 10.0;
        for (const auto& s : snaps) {
          const double rho = world.rigs[0].rig.orientationRho(s.timeS, reader);
          const double d = geom::circularDistance(rho, geom::kPi / 2.0);
          if (d < bestDist) {
            bestDist = d;
            refPhase = s.phaseRad;
          }
        }
        for (const auto& s : snaps) {
          const double rho = world.rigs[0].rig.orientationRho(s.timeS, reader);
          const int bin =
              static_cast<int>(geom::wrapTwoPi(rho) / geom::kTwoPi * kBins) %
              kBins;
          acc[static_cast<size_t>(bin)] +=
              geom::wrapToPi(s.phaseRad - refPhase);
          cnt[static_cast<size_t>(bin)] += 1;
        }
        ++configs;
      }
    }
    std::printf("%14s %18s   (avg over %d tag-model x location configs)\n",
                "orientation", "rel_phase_rad", configs);
    for (int b = 0; b < kBins; ++b) {
      if (cnt[b] == 0) continue;
      std::printf("%11.0f deg %18.4f\n", 360.0 * b / kBins,
                  acc[static_cast<size_t>(b)] / cnt[static_cast<size_t>(b)]);
    }
    std::printf("[paper: stable regular pattern, ~0.7 rad peak-to-peak]\n");
  }

  eval::printHeading(
      "Fig. 11(b): localization error with vs without calibration");
  {
    sim::ScenarioConfig sc;
    sc.seed = 11;
    sc.fixedChannel = true;
    eval::RunnerConfig rc;
    rc.world = sim::makeTwoRigWorld(sc);
    rc.region = sim::Region{};
    rc.trials = trials;
    rc.durationS = 30.0;

    rc.calibrateOrientation = true;
    const auto with = eval::runExperiment(rc, eval::makeTagspin2D());
    rc.calibrateOrientation = false;
    const auto without = eval::runExperiment(rc, eval::makeTagspin2D());

    eval::printSummaryHeader();
    eval::printSummaryRow("with calibration", with.summary);
    eval::printSummaryRow("without calibration", without.summary);
    eval::printCdf("with calibration",
                   eval::combinedErrors(with.errors));
    eval::printCdf("without calibration",
                   eval::combinedErrors(without.errors));
    std::printf("\nmean improvement from calibration: %.2fx "
                "[paper: ~1.7x]\n",
                without.summary.mean / with.summary.mean);
  }
  return 0;
}
