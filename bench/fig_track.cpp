// Moving-reader tracking benchmark (no paper counterpart -- the paper's
// pipeline stops at one-shot fixes; this bench measures what sequential
// Bayesian tracking adds on top of them): a reader patrols the
// surveillance region on a scripted waypoint loop while every fix window
// is interrogated quasi-statically, and the fix stream is fed through the
// src/track/ square-root UKF tracker.
//
// Acceptance gates:
//  * tracked RMSE <= 0.7x the independent-fix RMSE on the clean arm;
//  * the track coasts through the full standard outage script without
//    being dropped or re-initialized;
//  * replaying the identical capture corpus twice yields bit-identical
//    trajectories (FNV-1a digest).
//
// Usage: fig_track [--seed=N] [--out=DIR] [--json[=PATH]] [windows]
//                  [rigs] [outPrefix]
// Writes DIR/<outPrefix>_{clean,dropout,outage}.csv (per-window
// trajectories) and DIR/<outPrefix>.json; --json additionally writes the
// BENCH_track.json sidecar.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "eval/report.hpp"
#include "eval/track.hpp"

using namespace tagspin;

int main(int argc, char** argv) {
  eval::TrackEvalConfig tc;
  std::string sidecarPath;
  std::vector<std::string> pos;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--seed=", 0) == 0) {
      tc.seed = std::stoull(arg.substr(7));
    } else if (arg == "--json") {
      sidecarPath = "BENCH_track.json";
    } else if (arg.rfind("--json=", 0) == 0) {
      sidecarPath = arg.substr(7);
    } else {
      pos.push_back(arg);
    }
  }
  const std::string outDir = eval::consumeOutDir(pos);
  if (pos.size() > 0) tc.windows = std::atoi(pos[0].c_str());
  if (pos.size() > 1) tc.rigCount = std::atoi(pos[1].c_str());
  const std::string prefix =
      eval::outputPath(outDir, pos.size() > 2 ? pos[2] : "fig_track");

  eval::printHeading("Tracking: moving reader vs one-shot fixes");
  std::printf("%d windows x %.1fs, %d rigs, %.2f m/s patrol, seed 0x%llX\n",
              tc.windows, tc.windowS, tc.rigCount, tc.speedMps,
              static_cast<unsigned long long>(tc.seed));

  const eval::TrackEvalResult r = eval::runTrackEval(tc);

  std::printf("\nclean  : fix RMSE %.2f cm | track RMSE %.2f cm (%.2fx) | "
              "%llu accepted, %llu gated, %llu switches\n",
              r.clean.fixRmseCm, r.clean.trackRmseCm, r.rmseRatio,
              static_cast<unsigned long long>(r.clean.stats.accepted),
              static_cast<unsigned long long>(r.clean.stats.gateRejects),
              static_cast<unsigned long long>(r.clean.stats.modelSwitches));
  std::printf("dropout: %d gaps + %d ghosts | fix RMSE %.2f cm | track RMSE "
              "%.2f cm | coast max %.2f cm | %llu gate-rejects\n",
              r.dropout.gapWindows, r.dropout.ghostWindows,
              r.dropout.fixRmseCm, r.dropout.trackRmseCm,
              r.dropout.coastMaxErrorCm,
              static_cast<unsigned long long>(r.dropout.stats.gateRejects));
  std::printf("outage : %d lost windows | track RMSE %.2f cm | coast max "
              "%.2f cm | coast fraction %.2f | survived %s (final %s)\n",
              r.outage.gapWindows, r.outage.trackRmseCm,
              r.outage.coastMaxErrorCm, r.outage.stats.coastFraction(),
              r.outageSurvived ? "yes" : "NO", r.outage.finalState.c_str());
  std::printf("replay : digest %016llx vs %016llx -> %s\n",
              static_cast<unsigned long long>(r.replayDigest1),
              static_cast<unsigned long long>(r.replayDigest2),
              r.replayDeterministic ? "bit-identical" : "MISMATCH");

  {
    std::ofstream csv(prefix + "_clean.csv");
    csv << eval::trackArmCsv(r.clean);
  }
  {
    std::ofstream csv(prefix + "_dropout.csv");
    csv << eval::trackArmCsv(r.dropout);
  }
  {
    std::ofstream csv(prefix + "_outage.csv");
    csv << eval::trackArmCsv(r.outage);
  }
  std::ofstream json(prefix + ".json");
  json << eval::trackJson(r);
  std::printf("\nwrote %s_{clean,dropout,outage}.csv and %s.json\n",
              prefix.c_str(), prefix.c_str());

  bench::BenchRecord record;
  record.name = "track";
  record.seed = tc.seed;
  record.payload = eval::trackJson(r);
  record.gate("tracked_rmse_within_0_7x",
              r.clean.fixRmseCm > 0.0 && r.rmseRatio <= 0.7);
  record.gate("outage_survived", r.outageSurvived);
  record.gate("replay_deterministic", r.replayDeterministic);
  record.metric("fix_rmse_cm", r.clean.fixRmseCm);
  record.metric("track_rmse_cm", r.clean.trackRmseCm);
  record.metric("rmse_ratio", r.rmseRatio);
  record.metric("dropout_track_rmse_cm", r.dropout.trackRmseCm);
  record.metric("dropout_coast_max_cm", r.dropout.coastMaxErrorCm);
  record.metric("outage_coast_max_cm", r.outage.coastMaxErrorCm);
  record.metric("outage_coast_fraction", r.outage.stats.coastFraction());
  record.metric("gate_rejects", double(r.dropout.stats.gateRejects));
  record.metric("model_switches", double(r.clean.stats.modelSwitches));
  if (!sidecarPath.empty()) {
    bench::writeBenchSidecar(sidecarPath, record);
  }

  std::printf("[acceptance: tracked RMSE within 0.7x independent fixes "
              "(%.2fx), outage coasted without re-init (%s), replay "
              "bit-identical (%s)]\n",
              r.rmseRatio, r.outageSurvived ? "yes" : "NO",
              r.replayDeterministic ? "yes" : "NO");

  return record.allGatesPass() ? 0 : 1;
}
