// Microbenchmarks of the hot paths (google-benchmark): profile evaluation,
// azimuth spectrum search (exhaustive vs coarse-to-fine), the 3D spatial
// search, and the end-to-end 2D fix.
#include <benchmark/benchmark.h>

#include <random>

#include "core/locator.hpp"
#include "core/power_profile.hpp"
#include "core/preprocess.hpp"
#include "core/spectrum.hpp"
#include "geom/angles.hpp"

using namespace tagspin;

namespace {

std::vector<core::Snapshot> makeSnapshots(size_t n, double phiTrue) {
  const double lambda = 0.325;
  const double r = 0.10;
  const double D = 2.0;
  const core::RigKinematics kin{r, 0.5, 0.0, geom::kPi / 2.0};
  std::mt19937_64 rng(42);
  std::normal_distribution<double> noise(0.0, 0.1);
  std::vector<core::Snapshot> snaps;
  snaps.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) * 30.0 / static_cast<double>(n);
    const double a = kin.diskAngle(t);
    const double d = D - r * std::cos(a - phiTrue);
    core::Snapshot s;
    s.timeS = t;
    s.phaseRad =
        geom::wrapTwoPi(4.0 * geom::kPi / lambda * d + 1.23 + noise(rng));
    s.lambdaM = lambda;
    s.channel = 0;
    snaps.push_back(s);
  }
  return snaps;
}

const core::RigKinematics kKin{0.10, 0.5, 0.0, geom::kPi / 2.0};

void BM_EvaluateQ(benchmark::State& state) {
  const auto snaps = makeSnapshots(static_cast<size_t>(state.range(0)), 1.0);
  core::ProfileConfig pc;
  pc.formula = core::ProfileFormula::kRelativeQ;
  const core::PowerProfile profile(snaps, kKin, pc);
  double phi = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(profile.evaluate(phi));
    phi += 0.01;
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(snaps.size()));
}
BENCHMARK(BM_EvaluateQ)->Arg(256)->Arg(1024)->Arg(2500);

void BM_EvaluateR(benchmark::State& state) {
  const auto snaps = makeSnapshots(static_cast<size_t>(state.range(0)), 1.0);
  const core::PowerProfile profile(snaps, kKin, {});
  double phi = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(profile.evaluate(phi));
    phi += 0.01;
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(snaps.size()));
}
BENCHMARK(BM_EvaluateR)->Arg(256)->Arg(1024)->Arg(2500);

void BM_AzimuthSearchExhaustive(benchmark::State& state) {
  const auto snaps = makeSnapshots(1024, 1.0);
  const core::PowerProfile profile(snaps, kKin, {});
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::estimateAzimuth(profile, {}));
  }
}
BENCHMARK(BM_AzimuthSearchExhaustive);

void BM_AzimuthSearchCoarseFine(benchmark::State& state) {
  const auto snaps = makeSnapshots(1024, 1.0);
  const core::PowerProfile profile(snaps, kKin, {});
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::estimateAzimuthCoarseFine(profile, {}));
  }
}
BENCHMARK(BM_AzimuthSearchCoarseFine);

void BM_SpatialSearch3D(benchmark::State& state) {
  const auto snaps = makeSnapshots(1024, 1.0);
  const core::PowerProfile profile(snaps, kKin, {});
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::estimateSpatial(profile, {}));
  }
}
BENCHMARK(BM_SpatialSearch3D);

void BM_Locate2D(benchmark::State& state) {
  core::RigObservation o1;
  o1.rig.center = {-0.2, 0.0, 0.0};
  o1.rig.kinematics = kKin;
  o1.snapshots = makeSnapshots(1024, geom::degToRad(75.0));
  core::RigObservation o2;
  o2.rig.center = {0.2, 0.0, 0.0};
  o2.rig.kinematics = kKin;
  o2.snapshots = makeSnapshots(1024, geom::degToRad(95.0));
  const std::vector<core::RigObservation> obs{o1, o2};
  const core::Locator locator;
  for (auto _ : state) {
    benchmark::DoNotOptimize(locator.locate2D(obs));
  }
}
BENCHMARK(BM_Locate2D);

}  // namespace

BENCHMARK_MAIN();
