// Fig. 8 -- 3D power profiles Q(phi, gamma) vs R(phi, gamma).  The scene
// follows the paper's simulation: tag array centered at (0.40 m, 0, 0),
// reader at azimuth 180 deg and polar angle ~30 deg.  The spectrum has two
// sharp symmetric peaks at +-gamma (cos is even), and R is far more
// concentrated than Q.
#include <cstdio>
#include <vector>

#include "core/power_profile.hpp"
#include "core/preprocess.hpp"
#include "core/spectrum.hpp"
#include "eval/report.hpp"
#include "geom/angles.hpp"
#include "sim/interrogator.hpp"
#include "sim/scenario.hpp"

using namespace tagspin;

int main() {
  eval::printHeading("Fig. 8: 3D power profiles, Q(phi,gamma) vs R(phi,gamma)");

  sim::ScenarioConfig sc;
  sc.seed = 8;
  sc.fixedChannel = true;
  sim::World world = sim::makeTwoRigWorld(sc);
  world.rigs.resize(1);
  world.rigs[0].rig.center = {0.40, 0.0, 0.0};
  // Azimuth 180 deg, polar ~30 deg, range ~1.4 m.
  const geom::Vec3 reader{0.40 - 1.20, 1e-3, 0.70};
  sim::placeReaderAntenna(world, 0, reader);

  const rfid::ReportStream reports = sim::interrogate(world, {30.0, 0, 0});
  const auto snaps = core::extractSnapshots(reports, world.rigs[0].tag.epc);
  const core::RigKinematics kin{
      world.rigs[0].rig.radiusM, world.rigs[0].rig.omegaRadPerS,
      world.rigs[0].rig.initialAngle, world.rigs[0].rig.tagPlaneOffset};

  const double truthAz = geom::azimuthOf(world.rigs[0].rig.center, reader);
  const double truthPol = geom::polarOf(world.rigs[0].rig.center, reader);
  std::printf("true direction: azimuth %.2f deg, polar %.2f deg\n",
              geom::radToDeg(truthAz), geom::radToDeg(truthPol));

  for (const auto& [name, formula] :
       {std::pair{"Q", core::ProfileFormula::kRelativeQ},
        std::pair{"R", core::ProfileFormula::kEnhancedR}}) {
    core::ProfileConfig pc;
    pc.formula = formula;
    const core::PowerProfile profile(snaps, kin, pc);

    // Coarse 2D image over the FULL polar range to exhibit the +-gamma
    // mirror symmetry the paper points out.
    std::printf("\n%s(phi, gamma) image (rows: gamma -75..75 deg; cols: "
                "azimuth 0..355 deg; '#' >= 80%% of max):\n", name);
    const int nAz = 72, nPol = 11;
    std::vector<std::vector<double>> img(nPol, std::vector<double>(nAz));
    double maxV = 0.0;
    for (int p = 0; p < nPol; ++p) {
      const double gamma = geom::degToRad(-75.0 + 15.0 * p);
      for (int a = 0; a < nAz; ++a) {
        img[p][a] = profile.evaluate(geom::degToRad(a * 5.0), gamma);
        maxV = std::max(maxV, img[p][a]);
      }
    }
    for (int p = nPol - 1; p >= 0; --p) {
      std::printf("  %+3.0f |", -75.0 + 15.0 * p);
      for (int a = 0; a < nAz; ++a) {
        const double v = img[p][a] / maxV;
        std::fputc(v >= 0.8 ? '#' : (v >= 0.6 ? '+' : (v >= 0.4 ? '.' : ' ')),
                   stdout);
      }
      std::fputs("|\n", stdout);
    }

    const auto est = core::estimateSpatial(profile, {});
    // Mirror symmetry check: the -gamma twin must have (nearly) equal power.
    const double twin = profile.evaluate(est.azimuth, -est.polar);
    std::printf("  %s peak: azimuth %7.2f deg (err %+5.2f), |polar| %6.2f deg "
                "(err %+5.2f), value %.3f; mirror twin value %.3f\n",
                name, geom::radToDeg(est.azimuth),
                geom::radToDeg(geom::circularDiff(est.azimuth, truthAz)),
                geom::radToDeg(est.polar),
                geom::radToDeg(est.polar - std::abs(truthPol)), est.value,
                twin);
  }
  std::printf("\n[paper: two symmetric candidate peaks at +-gamma; R far "
              "sharper than Q]\n");
  return 0;
}
