// Crash-consistency benchmark (no paper counterpart -- the durability
// falsifier this reproduction adds): every syscall boundary of the
// checkpoint, capture, and fleet fan-out write paths gets a simulated
// power cut, the post-crash disk is materialized under a family of
// write-back persistence variants, and real recovery is run against each
// image.  A deliberately broken writer (rename without the data fsync) is
// swept by the same harness and a failing fault schedule is shrunk to a
// minimal replayable artifact -- the proof that the harness can actually
// catch the bugs it claims to rule out.
//
// Usage: fig_crash [--seed=N] [--out=DIR] [--json[=PATH]] [captureReports]
//                  [scheduleRounds] [outPrefix]
// Writes DIR/<outPrefix>.json (default DIR "bench/out").  --json
// additionally writes the shared-schema sidecar (default PATH
// "BENCH_crash.json").
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "eval/crash.hpp"
#include "eval/report.hpp"

using namespace tagspin;

int main(int argc, char** argv) {
  eval::CrashExploreConfig cfg;
  std::string sidecarPath;
  std::vector<std::string> pos;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--seed=", 0) == 0) {
      cfg.seed = std::stoull(arg.substr(7));
    } else if (arg == "--json") {
      sidecarPath = "BENCH_crash.json";
    } else if (arg.rfind("--json=", 0) == 0) {
      sidecarPath = arg.substr(7);
    } else {
      pos.push_back(arg);
    }
  }
  const std::string outDir = eval::consumeOutDir(pos);
  if (pos.size() > 0) cfg.captureReports = size_t(std::atoi(pos[0].c_str()));
  if (pos.size() > 1) cfg.scheduleRounds = size_t(std::atoi(pos[1].c_str()));
  const std::string prefix =
      eval::outputPath(outDir, pos.size() > 2 ? pos[2] : "fig_crash");

  eval::printHeading("Crash consistency: exhaustive power-cut exploration");
  std::printf("seed 0x%llX, %zu capture reports (chunk %zu, fsync every %zu), "
              "%zu checkpoint saves, %zux%zu fleet fan-out, %zu schedule "
              "rounds\n",
              static_cast<unsigned long long>(cfg.seed), cfg.captureReports,
              cfg.chunkReports, cfg.fsyncEveryChunks, cfg.checkpointSaves,
              cfg.fleetShards, cfg.fleetRounds, cfg.scheduleRounds);

  const eval::CrashEvalResult r = eval::runCrashEval(cfg);

  std::printf("\n%-22s %12s %14s %12s\n", "workload", "boundaries",
              "crash points", "violations");
  for (const eval::WorkloadCrashStats& w : r.workloads) {
    std::printf("%-22s %12llu %14llu %12llu\n", w.name.c_str(),
                static_cast<unsigned long long>(w.boundaries),
                static_cast<unsigned long long>(w.crashPoints),
                static_cast<unsigned long long>(w.violations));
  }
  std::printf("total: %llu boundaries, %llu crash-point recoveries, %llu "
              "violations\n",
              static_cast<unsigned long long>(r.totalBoundaries),
              static_cast<unsigned long long>(r.totalCrashPoints),
              static_cast<unsigned long long>(r.totalViolations));
  std::printf("schedule search: %llu runs (%llu crashed), %llu recovery "
              "checks, %llu violations\n",
              static_cast<unsigned long long>(r.scheduleRuns),
              static_cast<unsigned long long>(r.scheduleCrashes),
              static_cast<unsigned long long>(r.scheduleChecks),
              static_cast<unsigned long long>(r.scheduleViolations));
  std::printf("broken writer: caught %s, failing schedule %s (%llu faults), "
              "shrunk to %llu fault(s)\n",
              r.brokenWriterCaught ? "yes" : "NO",
              r.brokenScheduleFound ? "found" : "NOT FOUND",
              static_cast<unsigned long long>(r.brokenScheduleFaults),
              static_cast<unsigned long long>(r.brokenShrunkFaults));
  if (!r.brokenArtifactJson.empty()) {
    std::printf("minimal artifact: %s\n", r.brokenArtifactJson.c_str());
  }
  for (const eval::CrashViolation& v : r.violations) {
    std::printf("VIOLATION [%s] crashAtOp=%lld persist=%s: %s\n",
                v.workload.c_str(), static_cast<long long>(v.crashAtOp),
                v.persistMode.c_str(), v.detail.c_str());
  }

  const std::string payload = eval::crashJson(r);
  std::ofstream json(prefix + ".json");
  json << payload;
  std::printf("\nwrote %s.json\n", prefix.c_str());

  bench::BenchRecord record;
  record.name = "crash";
  record.seed = cfg.seed;
  record.payload = payload;
  record.gate("crash_points_ge_2000", r.totalCrashPoints >= 2000);
  record.gate("zero_violations", r.totalViolations == 0);
  record.gate("schedule_search_clean", r.scheduleViolations == 0);
  record.gate("broken_writer_caught", r.brokenWriterCaught);
  record.gate("broken_writer_shrunk",
              r.brokenScheduleFound && r.brokenShrunkFaults >= 1 &&
                  r.brokenShrunkFaults <= r.brokenScheduleFaults);
  record.metric("total_boundaries", double(r.totalBoundaries));
  record.metric("total_crash_points", double(r.totalCrashPoints));
  record.metric("total_violations", double(r.totalViolations));
  record.metric("schedule_runs", double(r.scheduleRuns));
  record.metric("schedule_crashes", double(r.scheduleCrashes));
  record.metric("broken_shrunk_faults", double(r.brokenShrunkFaults));
  if (!sidecarPath.empty()) {
    bench::writeBenchSidecar(sidecarPath, record);
  }

  std::printf("[acceptance: >= 2000 crash-point recoveries (%llu), zero "
              "invariant violations (%llu), planted fsync-ordering bug "
              "caught and shrunk to %llu fault(s)]\n",
              static_cast<unsigned long long>(r.totalCrashPoints),
              static_cast<unsigned long long>(r.totalViolations),
              static_cast<unsigned long long>(r.brokenShrunkFaults));

  return record.allGatesPass() ? 0 : 1;
}
