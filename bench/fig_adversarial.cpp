// Adversarial-environment sweep (no paper counterpart -- the robustness
// benchmark for the consensus estimator): ghost-reader report mixing makes
// a subset of the rigs' angle spectra bimodal with the wrong lobe dominant,
// and the paired error CDFs compare the plain least-squares estimator with
// the full robust stack (spin self-diagnosis -> multi-candidate consensus
// voting -> IRLS -> bootstrap confidence ellipse) on identical streams.
//
// Usage: fig_adversarial [--seed=N] [--json[=PATH]] [--out=DIR]
//                        [trialsPerPoint] [durationS] [outPrefix]
// Writes DIR/<outPrefix>.csv, .json and <outPrefix>_cdf.csv (default
// prefix "fig_adversarial", default DIR "bench/out"); --json additionally
// emits the BENCH_adversarial.json sidecar (shared schema:
// bench/bench_json.hpp) and bases the exit code on its gates.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "eval/adversarial.hpp"
#include "eval/report.hpp"

using namespace tagspin;

int main(int argc, char** argv) {
  eval::AdversarialConfig ac;
  ac.scenario.seed = 33;
  ac.scenario.fixedChannel = true;
  ac.baseline = eval::AdversarialConfig::defaultBaseline();
  ac.robust = eval::AdversarialConfig::defaultRobust();
  std::string sidecarPath;
  std::vector<std::string> pos;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--seed=", 0) == 0) {
      ac.seed = std::stoull(arg.substr(7));
    } else if (arg == "--json") {
      sidecarPath = "BENCH_adversarial.json";
    } else if (arg.rfind("--json=", 0) == 0) {
      sidecarPath = arg.substr(7);
    } else {
      pos.push_back(arg);
    }
  }
  const std::string outDir = eval::consumeOutDir(pos);
  ac.trialsPerPoint = pos.size() > 0 ? std::atoi(pos[0].c_str()) : 30;
  ac.durationS = pos.size() > 1 ? std::atof(pos[1].c_str()) : 15.0;
  const std::string prefix =
      eval::outputPath(outDir, pos.size() > 2 ? pos[2] : "fig_adversarial");

  eval::printHeading("Adversarial environments: consensus vs least squares");
  std::printf("seed: 0x%llX%s; %d rigs, %d trials/case, %.0f s spins\n",
              static_cast<unsigned long long>(ac.seed),
              ac.seed == 0xAD5E ? " (default)" : "", ac.rigCount,
              ac.trialsPerPoint, ac.durationS);

  const eval::AdversarialResult result = eval::runAdversarialSweep(ac);

  std::printf("\n%4s %6s %5s | %9s %9s | %9s %9s | %7s %8s %6s | %8s %9s\n",
              "bad", "ghost", "scat", "ls_med", "ls_p90", "cons_med",
              "cons_p90", "inlier", "suspect", "quar", "ell_cov",
              "ell_cm2");
  for (const eval::AdversarialPoint& p : result.points) {
    std::printf(
        "%4d %6.2f %5d | %8.2fcm %8.2fcm | %8.2fcm %8.2fcm | "
        "%6.0f%% %8llu %6llu | %3d/%3d %9.1f\n",
        p.which.corruptedRigs, p.which.ghostFraction, p.which.scattererCount,
        p.baselineMedianCm, p.baselineP90Cm, p.robustMedianCm, p.robustP90Cm,
        p.meanInlierFraction * 100,
        static_cast<unsigned long long>(p.suspectSpins),
        static_cast<unsigned long long>(p.quarantinedSpins),
        p.ellipseCovered, p.ellipseTrials, p.meanEllipseAreaCm2);
  }

  std::ofstream csv(prefix + ".csv");
  csv << eval::adversarialCsv(result);
  std::ofstream json(prefix + ".json");
  json << eval::adversarialJson(result);
  std::ofstream cdf(prefix + "_cdf.csv");
  cdf << eval::adversarialCdfCsv(result);
  std::printf("\nwrote %s.csv, %s.json and %s_cdf.csv\n", prefix.c_str(),
              prefix.c_str(), prefix.c_str());

  // Acceptance: with 1 of 4 spins corrupted the consensus median must be at
  // most half the least-squares median; on the clean case the robust stack
  // must cost nothing (median within 5% of the baseline).
  const eval::AdversarialPoint* clean = nullptr;
  const eval::AdversarialPoint* one = nullptr;
  for (const eval::AdversarialPoint& p : result.points) {
    if (p.which.corruptedRigs == 0 && !clean) clean = &p;
    if (p.which.corruptedRigs == 1 && p.which.scattererCount == 3 &&
        p.which.ghostFraction == 0.6 && !one) {
      one = &p;
    }
  }
  const double cleanRatio =
      clean && clean->baselineMedianCm > 0.0
          ? clean->robustMedianCm / clean->baselineMedianCm
          : 1.0;
  const double corruptRatio =
      one && one->baselineMedianCm > 0.0
          ? one->robustMedianCm / one->baselineMedianCm
          : 1.0;
  if (clean && one) {
    std::printf("[acceptance: 1-corrupted consensus/LS median %.2fx "
                "(want <= 0.5x), clean %.3fx (want within 5%%), "
                "ellipse coverage %d/%d]\n",
                corruptRatio, cleanRatio, one->ellipseCovered,
                one->ellipseTrials);
  }

  bench::BenchRecord record;
  record.name = "adversarial";
  record.seed = ac.seed;
  record.payload = eval::adversarialJson(result);
  record.gate("one_corrupted_within_0_5x", one && corruptRatio <= 0.5);
  record.gate("clean_overhead_within_5pct", clean && cleanRatio <= 1.05);
  record.metric("corrupt_ratio", corruptRatio);
  record.metric("clean_ratio", cleanRatio);
  if (one) {
    record.metric("robust_median_cm", one->robustMedianCm);
    record.metric("baseline_median_cm", one->baselineMedianCm);
    record.metric("ellipse_coverage",
                  one->ellipseTrials > 0
                      ? double(one->ellipseCovered) / one->ellipseTrials
                      : 0.0);
    record.metric("mean_ellipse_area_cm2", one->meanEllipseAreaCm2);
  }
  if (!sidecarPath.empty()) {
    bench::writeBenchSidecar(sidecarPath, record);
    return record.allGatesPass() ? 0 : 1;
  }
  return 0;
}
