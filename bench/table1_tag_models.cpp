// Table I -- the five tag models of the paper's testbed, with the simulator
// parameters attached to each (orientation-response amplitude, gain
// exponent, sensitivity offset).
#include <cstdio>

#include "eval/report.hpp"
#include "rfid/tag_models.hpp"
#include "sim/orientation_response.hpp"

using namespace tagspin;

int main() {
  eval::printHeading("Table I: tag models");
  std::printf("%-24s %-8s %-9s %12s %5s %12s %8s %8s\n", "model", "company",
              "chip", "size_mm", "qty", "orient_rad", "gain_p", "sens_db");
  for (const rfid::TagModel& m : rfid::allTagModels()) {
    std::printf("%-24s %-8s %-9s %6.1fx%-5.1f %5d %12.2f %8.1f %8.1f\n",
                m.name.c_str(), m.company.c_str(), m.chip.c_str(), m.widthMm,
                m.heightMm, m.tableQuantity, m.orientationAmplitude,
                m.gainExponent, m.sensitivityOffsetDb);
  }

  std::printf("\nper-instance orientation responses (3 instances per model, "
              "peak-to-peak rad):\n");
  for (const rfid::TagModel& m : rfid::allTagModels()) {
    std::printf("%-24s", m.name.c_str());
    for (uint64_t inst = 0; inst < 3; ++inst) {
      const auto resp = sim::OrientationResponse::forTag(m, 0xAB + inst * 17);
      std::printf("  %.3f", resp.peakToPeak());
    }
    std::printf("\n");
  }
  return 0;
}
