// Second ablation set -- the production-hardening extensions:
//  (1) interrogation duration vs accuracy (how long must the reader dwell?),
//  (2) number of rigs (the paper's "two or more" remark; >= 3 uses least
//      squares),
//  (3) motor imperfection: disk speed ripple vs accuracy (the server keeps
//      assuming uniform rotation),
//  (4) LLRP wire quantisation: full-precision phases vs the 12-bit
//      PhaseAngle the real reader reports,
//  (5) direct hologram vs Tagspin angle spectra (near-field curvature as
//      the upper baseline; single-rig ranging),
//  (6) multi-round fusion: mean vs geometric median over repeated fixes
//      with occasional gross errors.
//
// Usage: fig_ablation2 [--seed=N] [--json[=PATH]] [trials]
// --json writes the machine-readable trajectory sidecar (default PATH
// "BENCH_ablation2.json"); the exit code reflects its acceptance gates.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "bench_json.hpp"
#include "core/fusion.hpp"
#include "core/hologram.hpp"
#include "core/tagspin.hpp"
#include "eval/estimators.hpp"
#include "eval/report.hpp"
#include "rfid/llrp.hpp"
#include "sim/interrogator.hpp"

using namespace tagspin;

namespace {

eval::RunResult run2d(const sim::World& world, int trials, double durationS,
                      uint64_t seed) {
  eval::RunnerConfig rc;
  rc.world = world;
  rc.region = sim::Region{};
  rc.trials = trials;
  rc.durationS = durationS;
  rc.seed = seed;
  return eval::runExperiment(rc, eval::makeTagspin2D());
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t seed = 99;  // the eval::RunnerConfig default
  std::string sidecarPath;
  std::vector<std::string> pos;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--seed=", 0) == 0) {
      seed = std::stoull(arg.substr(7));
    } else if (arg == "--json") {
      sidecarPath = "BENCH_ablation2.json";
    } else if (arg.rfind("--json=", 0) == 0) {
      sidecarPath = arg.substr(7);
    } else {
      pos.push_back(arg);
    }
  }
  const int trials = pos.size() > 0 ? std::atoi(pos[0].c_str()) : 10;
  // Offset for the sections with their own RNGs: zero at the default seed,
  // so `--seed` absent reproduces the historical output exactly.
  const uint64_t seedDelta = seed - 99;

  // Headline numbers captured for the --json sidecar.
  double durShort = 0.0, durLong = 0.0;
  double rigs2 = 0.0, rigs4 = 0.0;
  double jitterNone = 0.0, jitterWorst = 0.0;
  double fullPrecision = 0.0, wirePrecision = 0.0;
  double spectra2 = 0.0, holo2 = 0.0, holo1 = 0.0;
  double fusionWorst = 0.0, fusionMean = 0.0, fusionMedian = 0.0;

  eval::printHeading("Extension 1: interrogation duration vs accuracy");
  {
    sim::ScenarioConfig sc;
    sc.seed = 301;
    sc.fixedChannel = true;
    const sim::World world = sim::makeTwoRigWorld(sc);
    std::vector<std::pair<double, double>> series;
    for (double durationS : {3.0, 6.0, 12.0, 25.0, 50.0}) {
      series.emplace_back(
          durationS, run2d(world, trials, durationS, seed).summary.mean);
    }
    durShort = series.front().second;
    durLong = series.back().second;
    eval::printSeries("duration_s", "mean_err_cm", series);
    std::printf("[one disk revolution takes %.1f s; accuracy saturates "
                "once a couple of revolutions are captured]\n",
                geom::kTwoPi / 0.5);
  }

  eval::printHeading("Extension 2: number of spinning rigs");
  {
    std::vector<std::pair<double, double>> series;
    for (int rigs : {2, 3, 4}) {
      sim::ScenarioConfig sc;
      sc.seed = 302;
      sc.fixedChannel = true;
      sim::World world = sim::makeTwoRigWorld(sc);
      if (rigs >= 3) {
        world.rigs.push_back(world.rigs[0]);
        world.rigs[2].rig.center = {0.0, 0.5, 0.0};
        world.rigs[2].tag = sim::TagInstance::make(
            rfid::Epc::forSimulatedTag(2), sc.tagModel, 0x300AULL);
      }
      if (rigs >= 4) {
        world.rigs.push_back(world.rigs[0]);
        world.rigs[3].rig.center = {-0.45, 0.3, 0.0};
        world.rigs[3].tag = sim::TagInstance::make(
            rfid::Epc::forSimulatedTag(3), sc.tagModel, 0x300BULL);
      }
      series.emplace_back(rigs, run2d(world, trials, 30.0, seed).summary.mean);
    }
    rigs2 = series.front().second;
    rigs4 = series.back().second;
    eval::printSeries("rigs", "mean_err_cm", series);
    std::printf("[three+ rigs fuse by least squares and dilute the "
                "bad-geometry directions]\n");
  }

  eval::printHeading("Extension 3: motor speed ripple");
  {
    std::vector<std::pair<double, double>> series;
    for (double jitterDeg : {0.0, 0.5, 1.0, 2.0, 5.0, 10.0}) {
      sim::ScenarioConfig sc;
      sc.seed = 303;
      sc.fixedChannel = true;
      sim::World world = sim::makeTwoRigWorld(sc);
      for (sim::RigTag& rt : world.rigs) {
        rt.rig.speedJitterAmp = geom::degToRad(jitterDeg);
        rt.rig.jitterPeriodS = 4.7;
      }
      series.emplace_back(jitterDeg, run2d(world, trials, 30.0, seed).summary.mean);
    }
    jitterNone = series.front().second;
    jitterWorst = series.back().second;
    eval::printSeries("jitter_deg", "mean_err_cm", series);
    std::printf("[the server assumes uniform rotation; a cheap motor's "
                "ripple directly corrupts the virtual array geometry]\n");
  }

  eval::printHeading("Extension 4: LLRP 12-bit phase quantisation");
  {
    sim::ScenarioConfig sc;
    sc.seed = 304;
    sc.fixedChannel = true;
    sim::World world = sim::makeTwoRigWorld(sc);
    const auto models = eval::runCalibrationPrelude(world, 60.0);
    const core::TagspinSystem server =
        eval::buildTagspinServer(world, models, {});

    std::mt19937_64 rng(99 + seedDelta);
    std::uniform_real_distribution<double> dx(-1.4, 1.4), dy(1.0, 3.0);
    double fullAcc = 0.0, wireAcc = 0.0;
    for (int t = 0; t < trials; ++t) {
      sim::World w = world;
      const geom::Vec3 truth{dx(rng), dy(rng), 0.0};
      sim::placeReaderAntenna(w, 0, truth);
      const auto reports =
          sim::interrogate(
              w, {30.0, 0, static_cast<uint64_t>(t) + 1 + seedDelta});
      // Round-trip through the binary wire format.
      const auto wire =
          rfid::llrp::decodeStream(rfid::llrp::encodeStream(reports));
      fullAcc += geom::distance(server.locate2D(reports).position,
                                truth.xy());
      wireAcc += geom::distance(server.locate2D(wire).position, truth.xy());
    }
    fullPrecision = fullAcc / trials * 100.0;
    wirePrecision = wireAcc / trials * 100.0;
    std::printf("full precision: %.2f cm | through 12-bit LLRP wire: "
                "%.2f cm  (resolution %.4f rad << 0.1 rad noise)\n",
                fullPrecision, wirePrecision,
                rfid::llrp::phaseResolutionRad());
  }

  eval::printHeading("Extension 5: direct hologram vs angle spectra");
  {
    sim::ScenarioConfig sc;
    sc.seed = 305;
    sc.fixedChannel = true;
    sim::World world = sim::makeTwoRigWorld(sc);
    const auto models = eval::runCalibrationPrelude(world, 60.0);
    const core::TagspinSystem server =
        eval::buildTagspinServer(world, models, {});

    std::mt19937_64 rng(7 + seedDelta);
    std::uniform_real_distribution<double> dx(-1.4, 1.4), dy(1.0, 3.0);
    double spectraAcc = 0.0, holoAcc = 0.0, holo1Acc = 0.0;
    for (int t = 0; t < trials; ++t) {
      sim::World w = world;
      const geom::Vec3 truth{dx(rng), dy(rng), 0.0};
      sim::placeReaderAntenna(w, 0, truth);
      const auto reports =
          sim::interrogate(
              w, {30.0, 0, static_cast<uint64_t>(t) + 1 + seedDelta});
      const core::Fix2D spectraFix = server.locate2D(reports);
      spectraAcc += geom::distance(spectraFix.position, truth.xy());

      // The hologram runs as a refinement stage: orientation-calibrate the
      // snapshots against the angle-spectrum fix first (exactly what the
      // locator's own calibration loop does).
      auto obs = server.collectObservations(reports);
      const geom::Vec3 ref{spectraFix.position.x, spectraFix.position.y,
                           obs[0].rig.center.z};
      for (core::RigObservation& o : obs) {
        o.snapshots = core::calibrateOrientationAtPosition(
            o.snapshots, o.rig, o.orientation, ref);
      }
      holoAcc += geom::distance(core::Hologram(obs).locate().position,
                                truth.xy());
      const std::vector<core::RigObservation> single{obs[0]};
      holo1Acc += geom::distance(core::Hologram(single).locate().position,
                                 truth.xy());
    }
    spectra2 = spectraAcc / trials * 100.0;
    holo2 = holoAcc / trials * 100.0;
    holo1 = holo1Acc / trials * 100.0;
    std::printf("angle spectra (2 rigs): %6.2f cm\n", spectra2);
    std::printf("hologram      (2 rigs): %6.2f cm\n", holo2);
    std::printf("hologram      (1 rig!): %6.2f cm\n", holo1);
    std::printf("[the hologram exploits wavefront curvature: a single rig "
                "coarsely ranges the reader at metres of distance (the "
                "angle-spectrum method cannot range at all with one rig); "
                "with two rigs both methods reach cm level]\n");
  }

  eval::printHeading("Extension 6: multi-round fusion (mean vs median)");
  {
    sim::ScenarioConfig sc;
    sc.seed = 306;
    sc.fixedChannel = true;
    sim::World world = sim::makeTwoRigWorld(sc);
    // Hostile interference: 20% outlier reads make occasional rounds fail.
    rf::ChannelConfig cc = world.channel.config();
    cc.phaseOutlierProb = 0.20;
    world.channel = rf::BackscatterChannel(cc, world.channel.scatterers());
    const core::TagspinSystem server = eval::buildTagspinServer(world, {}, {});

    const geom::Vec3 truth{0.9, 2.6, 0.0};
    sim::placeReaderAntenna(world, 0, truth);
    std::vector<geom::Vec2> fixes;
    for (int round = 0; round < 9; ++round) {
      const auto reports = sim::interrogate(
          world,
          {8.0, 0, 0x600ULL + static_cast<uint64_t>(round) + seedDelta});
      fixes.push_back(server.locate2D(reports).position);
    }
    geom::Vec2 mean{};
    for (const geom::Vec2& p : fixes) mean += p;
    mean = mean / static_cast<double>(fixes.size());
    const geom::Vec2 median = core::geometricMedian(fixes);
    double worst = 0.0;
    for (const geom::Vec2& p : fixes) {
      worst = std::max(worst, geom::distance(p, truth.xy()));
    }
    fusionWorst = worst * 100.0;
    fusionMean = geom::distance(mean, truth.xy()) * 100.0;
    fusionMedian = geom::distance(median, truth.xy()) * 100.0;
    std::printf("9 rounds of 8 s each, 20%% interference outliers:\n");
    std::printf("  worst single round: %6.2f cm\n", fusionWorst);
    std::printf("  mean of rounds:     %6.2f cm\n", fusionMean);
    std::printf("  geometric median:   %6.2f cm\n", fusionMedian);
  }

  // One machine-readable record: the gates encode each extension's
  // qualitative claim with generous margins (seeds are fixed, but CI runs
  // few trials, so the gates test direction, not exact magnitudes).
  bench::BenchRecord record;
  record.name = "ablation2";
  record.seed = seed;
  record.gate("dwell_improves_accuracy", durLong <= durShort * 0.5);
  record.gate("more_rigs_no_worse", rigs4 <= rigs2 + 0.5);
  record.gate("ripple_degrades_geometry",
              jitterWorst >= jitterNone * 2.0);
  record.gate("wire_quantisation_lossless",
              wirePrecision <= fullPrecision * 1.05 + 0.1);
  record.gate("two_rig_hologram_cm_level", holo2 <= spectra2 * 1.5 + 1.0);
  record.gate("single_rig_hologram_ranges", holo1 <= 150.0);
  record.gate("fusion_beats_worst_round",
              std::min(fusionMean, fusionMedian) <= fusionWorst * 0.66);
  record.metric("duration_3s_mean_cm", durShort);
  record.metric("duration_50s_mean_cm", durLong);
  record.metric("rigs2_mean_cm", rigs2);
  record.metric("rigs4_mean_cm", rigs4);
  record.metric("jitter_0deg_mean_cm", jitterNone);
  record.metric("jitter_10deg_mean_cm", jitterWorst);
  record.metric("full_precision_mean_cm", fullPrecision);
  record.metric("wire_precision_mean_cm", wirePrecision);
  record.metric("spectra_2rig_mean_cm", spectra2);
  record.metric("hologram_2rig_mean_cm", holo2);
  record.metric("hologram_1rig_mean_cm", holo1);
  record.metric("fusion_worst_cm", fusionWorst);
  record.metric("fusion_mean_cm", fusionMean);
  record.metric("fusion_median_cm", fusionMedian);
  if (!sidecarPath.empty()) {
    bench::writeBenchSidecar(sidecarPath, record);
  }
  return record.allGatesPass() ? 0 : 1;
}
