// Fig. 10 -- localization error CDFs: (a) 2D per-axis and combined,
// (b) 3D per-axis and combined.  Paper headline: 2D combined mean ~4-5 cm;
// 3D combined mean ~7.3 cm (std ~4.8 cm), z the worst axis because both
// rigs spin in the x-y plane (no vertical aperture diversity).
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "eval/estimators.hpp"
#include "eval/report.hpp"

using namespace tagspin;

int main(int argc, char** argv) {
  uint64_t seed = 99;  // the eval::RunnerConfig default
  std::vector<std::string> pos;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--seed=", 0) == 0) {
      seed = std::stoull(arg.substr(7));
    } else {
      pos.push_back(arg);
    }
  }
  const int trials2d = pos.size() > 0 ? std::atoi(pos[0].c_str()) : 30;
  const int trials3d = pos.size() > 1 ? std::atoi(pos[1].c_str()) : 16;

  eval::printHeading("Fig. 10(a): 2D localization error");
  {
    sim::ScenarioConfig sc;
    sc.seed = 10;
    sc.fixedChannel = true;
    eval::RunnerConfig rc;
    rc.world = sim::makeTwoRigWorld(sc);
    rc.region = sim::Region{};
    rc.trials = trials2d;
    rc.durationS = 30.0;
    rc.seed = seed;
    const auto res = eval::runExperiment(rc, eval::makeTagspin2D());
    eval::printErrorBreakdown("Tagspin 2D (x, y, combined)", res.errors);
    eval::printCdf("combined error", eval::combinedErrors(res.errors));
    std::printf("[paper: mean ~4-5 cm combined, 90%% < ~7.5 cm]\n");
  }

  eval::printHeading("Fig. 10(b): 3D localization error");
  {
    sim::ScenarioConfig sc;
    sc.seed = 10;
    sc.fixedChannel = true;
    sc.rigPlaneZ = 0.095;  // rigs on the desk, 9.5 cm above it
    eval::RunnerConfig rc;
    rc.world = sim::makeTwoRigWorld(sc);
    rc.region = sim::Region{};
    rc.trials = trials3d;
    rc.durationS = 30.0;
    rc.seed = seed;
    rc.threeD = true;
    const auto res = eval::runExperiment(rc, eval::makeTagspin3D());
    eval::printErrorBreakdown("Tagspin 3D (x, y, z, combined)", res.errors);
    eval::printCdf("combined error", eval::combinedErrors(res.errors));
    std::printf("[paper: mean ~7.3 cm combined (std ~4.8), z worse than x "
                "because the aperture lies in the x-y plane]\n");
  }
  return 0;
}
