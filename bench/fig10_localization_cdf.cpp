// Fig. 10 -- localization error CDFs: (a) 2D per-axis and combined,
// (b) 3D per-axis and combined.  Paper headline: 2D combined mean ~4-5 cm;
// 3D combined mean ~7.3 cm (std ~4.8 cm), z the worst axis because both
// rigs spin in the x-y plane (no vertical aperture diversity).
//
// Usage: fig10_localization_cdf [--seed=N] [--json[=PATH]]
//                               [trials2d trials3d]
// --json writes the machine-readable trajectory sidecar (default PATH
// "BENCH_fig10.json"); the exit code reflects its acceptance gates.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "eval/estimators.hpp"
#include "eval/report.hpp"

using namespace tagspin;

int main(int argc, char** argv) {
  uint64_t seed = 99;  // the eval::RunnerConfig default
  std::string sidecarPath;
  std::vector<std::string> pos;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--seed=", 0) == 0) {
      seed = std::stoull(arg.substr(7));
    } else if (arg == "--json") {
      sidecarPath = "BENCH_fig10.json";
    } else if (arg.rfind("--json=", 0) == 0) {
      sidecarPath = arg.substr(7);
    } else {
      pos.push_back(arg);
    }
  }
  const int trials2d = pos.size() > 0 ? std::atoi(pos[0].c_str()) : 30;
  const int trials3d = pos.size() > 1 ? std::atoi(pos[1].c_str()) : 16;

  dsp::Summary s2d, s3d;

  eval::printHeading("Fig. 10(a): 2D localization error");
  {
    sim::ScenarioConfig sc;
    sc.seed = 10;
    sc.fixedChannel = true;
    eval::RunnerConfig rc;
    rc.world = sim::makeTwoRigWorld(sc);
    rc.region = sim::Region{};
    rc.trials = trials2d;
    rc.durationS = 30.0;
    rc.seed = seed;
    const auto res = eval::runExperiment(rc, eval::makeTagspin2D());
    s2d = eval::summarizeCombined(res.errors);
    eval::printErrorBreakdown("Tagspin 2D (x, y, combined)", res.errors);
    eval::printCdf("combined error", eval::combinedErrors(res.errors));
    std::printf("[paper: mean ~4-5 cm combined, 90%% < ~7.5 cm]\n");
  }

  eval::printHeading("Fig. 10(b): 3D localization error");
  {
    sim::ScenarioConfig sc;
    sc.seed = 10;
    sc.fixedChannel = true;
    sc.rigPlaneZ = 0.095;  // rigs on the desk, 9.5 cm above it
    eval::RunnerConfig rc;
    rc.world = sim::makeTwoRigWorld(sc);
    rc.region = sim::Region{};
    rc.trials = trials3d;
    rc.durationS = 30.0;
    rc.seed = seed;
    rc.threeD = true;
    const auto res = eval::runExperiment(rc, eval::makeTagspin3D());
    s3d = eval::summarizeCombined(res.errors);
    eval::printErrorBreakdown("Tagspin 3D (x, y, z, combined)", res.errors);
    eval::printCdf("combined error", eval::combinedErrors(res.errors));
    std::printf("[paper: mean ~7.3 cm combined (std ~4.8), z worse than x "
                "because the aperture lies in the x-y plane]\n");
  }

  // One machine-readable record: the gates hold the reproduction in the
  // paper's accuracy regime with margin for trial-count variance (the
  // paper reports ~4-5 cm 2D, ~7.3 cm 3D).
  bench::BenchRecord record;
  record.name = "fig10";
  record.seed = seed;
  record.gate("cdf_2d_mean_le_10cm", s2d.mean <= 10.0);
  record.gate("cdf_2d_p90_le_20cm", s2d.p90 <= 20.0);
  record.gate("cdf_3d_mean_le_12cm", s3d.mean <= 12.0);
  record.gate("cdf_3d_p90_le_25cm", s3d.p90 <= 25.0);
  record.metric("mean_2d_cm", s2d.mean);
  record.metric("std_2d_cm", s2d.stddev);
  record.metric("median_2d_cm", s2d.median);
  record.metric("p90_2d_cm", s2d.p90);
  record.metric("mean_3d_cm", s3d.mean);
  record.metric("std_3d_cm", s3d.stddev);
  record.metric("median_3d_cm", s3d.median);
  record.metric("p90_3d_cm", s3d.p90);
  if (!sidecarPath.empty()) {
    bench::writeBenchSidecar(sidecarPath, record);
  }
  return record.allGatesPass() ? 0 : 1;
}
