// Fig. 1 -- the toy example: three spinning tags anchored in the
// infrastructure, each mimicking a circular antenna array; each tag's power
// profile has a sharp peak at the direction of the reader, and the three
// rays intersect at the reader.
#include <cstdio>

#include "core/power_profile.hpp"
#include "core/preprocess.hpp"
#include "core/spectrum.hpp"
#include "eval/report.hpp"
#include "geom/angles.hpp"
#include "geom/ray.hpp"
#include "sim/interrogator.hpp"
#include "sim/scenario.hpp"

using namespace tagspin;

int main() {
  eval::printHeading(
      "Fig. 1: power profiles of three spinning tags + ray intersection");

  sim::ScenarioConfig sc;
  sc.seed = 7;
  sc.fixedChannel = true;
  sim::World world = sim::makeTwoRigWorld(sc);
  // Third rig, as in the figure's three-tag scene.
  world.rigs.push_back(world.rigs[0]);
  world.rigs[2].rig.center = {0.0, 0.6, 0.0};
  world.rigs[2].tag =
      sim::TagInstance::make(rfid::Epc::forSimulatedTag(2),
                             sc.tagModel, 0xF1E57ULL);

  const geom::Vec3 reader{1.1, 2.3, 0.0};
  sim::placeReaderAntenna(world, 0, reader);
  const rfid::ReportStream reports = sim::interrogate(world, {30.0, 0, 0});

  std::vector<geom::Ray2> rays;
  for (size_t i = 0; i < world.rigs.size(); ++i) {
    const sim::RigTag& rt = world.rigs[i];
    const auto snaps = core::extractSnapshots(reports, rt.tag.epc);
    core::RigKinematics kin{rt.rig.radiusM, rt.rig.omegaRadPerS,
                            rt.rig.initialAngle, rt.rig.tagPlaneOffset};
    core::ProfileConfig pc;  // enhanced R by default
    const core::PowerProfile profile(snaps, kin, pc);
    const auto spectrum = profile.sampleAzimuth(360);
    char name[64];
    std::snprintf(name, sizeof name, "tag T%zu at (%.2f, %.2f), %zu snapshots",
                  i + 1, rt.rig.center.x, rt.rig.center.y, snaps.size());
    eval::printProfileAscii(name, spectrum, 10);

    const auto est = core::estimateAzimuth(profile, {});
    const double truth = geom::azimuthOf(rt.rig.center, reader);
    std::printf("  peak at %7.2f deg   (true direction %7.2f deg)\n",
                geom::radToDeg(est.azimuth), geom::radToDeg(truth));
    rays.push_back({rt.rig.center.xy(), est.azimuth});
  }

  const auto fix = geom::leastSquaresIntersection(rays);
  if (fix) {
    std::printf(
        "\nintersection of the three rays: (%.3f, %.3f) m; "
        "reader truly at (%.3f, %.3f) m; error %.2f cm\n",
        fix->x, fix->y, reader.x, reader.y,
        geom::distance(*fix, reader.xy()) * 100.0);
  }
  return 0;
}
