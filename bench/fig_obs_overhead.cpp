// Observability overhead: the cost of the wired metrics/span
// instrumentation on the hot end-to-end path.
//
// Runs the identical tryLocate2D workload (robust preprocess -> per-rig
// profile + spectrum search -> resilient fix) twice over the same stream:
// once with the locator wired to a live MetricsRegistry (counters, four
// span histograms firing per fix) and once unwired (null handles -- the
// runtime null sink every component pays when no registry is configured).
// Iterations of the two arms are interleaved so thermal/frequency drift
// hits both equally; the comparison is median-vs-median.
//
// The compile-time TAGSPIN_OBS_NOOP configuration is by construction at or
// below the unwired arm (the helpers and TAGSPIN_SPAN vanish entirely), so
// the unwired arm is the conservative baseline.
//
// Usage: fig_obs_overhead [--json[=PATH]] [--out=DIR] [repsPerArm]
//                         [durationS]
// Writes DIR/fig_obs_overhead.{csv,json} (default DIR "bench/out");
// --json additionally emits the BENCH_obs_overhead.json sidecar (shared
// schema: bench/bench_json.hpp).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "core/tagspin.hpp"
#include "eval/estimators.hpp"
#include "eval/report.hpp"
#include "obs/metrics.hpp"
#include "sim/interrogator.hpp"
#include "sim/rng.hpp"
#include "sim/scenario.hpp"

using namespace tagspin;

namespace {

double medianOf(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v.empty() ? 0.0 : v[v.size() / 2];
}

}  // namespace

int main(int argc, char** argv) {
  std::string sidecarPath;
  std::vector<std::string> pos;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      sidecarPath = "BENCH_obs_overhead.json";
    } else if (arg.rfind("--json=", 0) == 0) {
      sidecarPath = arg.substr(7);
    } else {
      pos.push_back(arg);
    }
  }
  const std::string outDir = eval::consumeOutDir(pos);
  const int reps = pos.size() > 0 ? std::atoi(pos[0].c_str()) : 30;
  const double durationS = pos.size() > 1 ? std::atof(pos[1].c_str()) : 15.0;

  sim::ScenarioConfig scenario;
  scenario.seed = 47;
  scenario.fixedChannel = true;
  sim::World world = sim::makeRigRowWorld(scenario, 3);
  sim::Region region;
  auto rng = sim::makeRng(sim::deriveSeed(scenario.seed, 9));
  sim::placeReaderAntenna(world, 0, region.sample(rng, false));

  sim::InterrogateConfig ic;
  ic.durationS = durationS;
  ic.antennaPort = 0;
  ic.streamId = 0x0B5;
  const rfid::ReportStream reports = sim::interrogate(world, ic);

  core::TagspinSystem server = eval::buildTagspinServer(world, {}, {});
  obs::MetricsRegistry registry;

  eval::printHeading("Observability overhead: instrumented vs null sink");
  std::printf("%d reps/arm over %zu reports (%.0fs interrogation), "
              "interleaved\n", reps, reports.size(), durationS);

  const auto timeFix = [&] {
    const auto t0 = std::chrono::steady_clock::now();
    const auto fix = server.tryLocate2D(reports);
    const auto t1 = std::chrono::steady_clock::now();
    if (!fix) {
      std::fprintf(stderr, "fix failed; overhead numbers are meaningless\n");
      std::exit(2);
    }
    return std::chrono::duration<double>(t1 - t0).count();
  };

  // Warm both arms (page-in, allocator steady state) before measuring.
  server.setMetrics(nullptr);
  timeFix();
  server.setMetrics(&registry);
  timeFix();

  std::vector<double> nullSink, instrumented;
  nullSink.reserve(reps);
  instrumented.reserve(reps);
  for (int r = 0; r < reps; ++r) {
    server.setMetrics(nullptr);
    nullSink.push_back(timeFix());
    server.setMetrics(&registry);
    instrumented.push_back(timeFix());
  }
  server.setMetrics(nullptr);

  const double medNull = medianOf(nullSink);
  const double medInstr = medianOf(instrumented);
  const double overhead = medNull > 0.0 ? medInstr / medNull - 1.0 : 0.0;

  const obs::MetricsSnapshot snap = registry.snapshot();
  const obs::HistogramView* spanFix = snap.histogram("span.fix2d");
  const obs::HistogramView* spanSearch = snap.histogram("span.spectrum_search");
  const uint64_t spanObservations =
      (spanFix ? spanFix->count : 0) + (spanSearch ? spanSearch->count : 0);

  std::printf("\n%14s %12s %12s\n", "arm", "median_ms", "mean_ms");
  const auto meanOf = [](const std::vector<double>& v) {
    double s = 0.0;
    for (double x : v) s += x;
    return v.empty() ? 0.0 : s / double(v.size());
  };
  std::printf("%14s %12.3f %12.3f\n", "null-sink", medNull * 1e3,
              meanOf(nullSink) * 1e3);
  std::printf("%14s %12.3f %12.3f\n", "instrumented", medInstr * 1e3,
              meanOf(instrumented) * 1e3);
  std::printf("median overhead: %+.2f%%  (span observations recorded: %llu, "
              "metrics registered: %zu)\n", overhead * 100,
              static_cast<unsigned long long>(spanObservations),
              snap.counters.size() + snap.gauges.size() +
                  snap.histograms.size());
  if (spanFix) {
    std::printf("span.fix2d: n=%llu p50=%.3fms p99=%.3fms\n",
                static_cast<unsigned long long>(spanFix->count),
                spanFix->p50 * 1e3, spanFix->p99 * 1e3);
  }

  const std::string prefix = eval::outputPath(outDir, "fig_obs_overhead");
  {
    std::ofstream csv(prefix + ".csv");
    csv << "arm,median_ms,mean_ms\n";
    csv << "null_sink," << medNull * 1e3 << ',' << meanOf(nullSink) * 1e3
        << '\n';
    csv << "instrumented," << medInstr * 1e3 << ','
        << meanOf(instrumented) * 1e3 << '\n';
  }
  {
    std::ofstream json(prefix + ".json");
    json << "{\n  \"reps_per_arm\": " << reps
         << ",\n  \"reports\": " << reports.size()
         << ",\n  \"null_sink_median_ms\": " << medNull * 1e3
         << ",\n  \"instrumented_median_ms\": " << medInstr * 1e3
         << ",\n  \"median_overhead_fraction\": " << overhead
         << ",\n  \"span_observations\": " << spanObservations << "\n}\n";
  }
  std::printf("wrote %s.csv and %s.json\n", prefix.c_str(), prefix.c_str());

  if (!sidecarPath.empty()) {
    std::ifstream payload(prefix + ".json");
    std::ostringstream payloadText;
    payloadText << payload.rdbuf();
    bench::BenchRecord record;
    record.name = "obs_overhead";
    record.payload = payloadText.str();
    record.gate("median_overhead_below_3pct", overhead < 0.03);
    record.gate("spans_recorded", spanObservations > 0);
    record.metric("median_overhead_pct", overhead * 100.0);
    record.metric("null_sink_median_ms", medNull * 1e3);
    record.metric("instrumented_median_ms", medInstr * 1e3);
    record.metric("span_observations", double(spanObservations));
    bench::writeBenchSidecar(sidecarPath, record);
  }

  std::printf("[acceptance: median overhead %.2f%% (want < 3%%)]\n",
              overhead * 100);
  return overhead < 0.03 ? 0 : 1;
}
