// Fleet benchmark (no paper counterpart -- the production benchmark this
// reproduction adds): hundreds of flaky sessions multiplexed over the
// FleetManager's fault domains, with a correlated outage dropping 20% of
// the fleet mid-spin and a tail of persistent flappers.  Paired against an
// all-healthy baseline arm on the very same pre-encoded stream, it measures
// the fault-isolation claim: healthy sessions' p99 fix latency during the
// outage stays within 2x the baseline's, every session eventually holds a
// fix, and the recovery storm is paced by the shard retry budgets.
//
// Usage: fig_fleet [--seed=N] [--json=PATH] [--out=DIR]
//                  [sessions] [shards] [outPrefix]
// Writes DIR/<outPrefix>.json (default DIR "bench/out") and the
// machine-readable trajectory record BENCH_fleet.json (repo root by
// default; --json overrides the path).
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "eval/fleet.hpp"
#include "eval/report.hpp"

using namespace tagspin;

int main(int argc, char** argv) {
  eval::FleetEvalConfig fc;
  fc.scenario.seed = 41;
  fc.scenario.fixedChannel = true;
  std::string jsonPath = "BENCH_fleet.json";
  std::vector<std::string> pos;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--seed=", 0) == 0) {
      fc.seed = std::stoull(arg.substr(7));
    } else if (arg.rfind("--json=", 0) == 0) {
      jsonPath = arg.substr(7);
    } else {
      pos.push_back(arg);
    }
  }
  const std::string outDir = eval::consumeOutDir(pos);
  fc.sessions = pos.size() > 0 ? std::atoi(pos[0].c_str()) : 512;
  fc.shards = pos.size() > 1 ? std::atoi(pos[1].c_str()) : 8;
  const std::string prefix =
      eval::outputPath(outDir, pos.size() > 2 ? pos[2] : "fig_fleet");
  fc.checkpointDir = outDir;

  eval::printHeading("Fleet: correlated outage vs isolated baseline");
  std::printf("%zu sessions over %zu shards, %.0f%% correlated outage + "
              "%.0f%% flappers, seed 0x%llX\n",
              fc.sessions, fc.shards, fc.chaos.outageFraction * 100,
              fc.chaos.flapFraction * 100,
              static_cast<unsigned long long>(fc.seed));

  const eval::FleetEvalResult r = eval::runFleetEval(fc);

  std::printf("\nspan %.1fs | outage [%.1fs, %.1fs] | throughput %.0f "
              "session-ticks/s (%.1fs wall chaos arm)\n",
              r.spanS, r.outageStartS, r.outageEndS, r.sessionTicksPerSec,
              r.chaos.wallSeconds);
  std::printf("healthy fix latency in outage window: baseline p50 %.2fs "
              "p99 %.2fs | chaos p50 %.2fs p99 %.2fs | isolation %.2fx\n",
              r.baselineP50S, r.baselineP99S, r.chaosP50S, r.chaosP99S,
              r.isolationRatio);
  std::printf("fix rate: baseline %.1f%% | chaos %.1f%% (%zu/%zu sessions)\n",
              r.baseline.fixRate * 100, r.chaos.fixRate * 100,
              r.chaos.sessionsWithFix, r.sessions);
  std::printf("outage cohort %zu | recovered %zu | recovery first +%.1fs "
              "last +%.1fs (spread %.1fs -- retry budgets pace the storm)\n",
              r.chaos.outageCohort, r.chaos.recovered, r.chaos.firstRecoveryS,
              r.chaos.lastRecoveryS, r.chaos.recoverySpreadS);
  const runtime::FleetStats& s = r.chaos.stats;
  std::printf("containment: budget-denied %llu | deferred session-ticks "
              "%llu | ejected %llu -> readmitted %llu (quarantined at end "
              "%zu)\n",
              static_cast<unsigned long long>(s.budgetDenied),
              static_cast<unsigned long long>(s.sessionsDeferred),
              static_cast<unsigned long long>(s.ejections),
              static_cast<unsigned long long>(s.readmissions),
              s.quarantinedNow);
  std::printf("shedding: degraded ticks %llu, critical ticks %llu, fixes "
              "skipped %llu | checkpoint writes %llu (failures %llu)\n",
              static_cast<unsigned long long>(s.shedDegradedTicks),
              static_cast<unsigned long long>(s.shedCriticalTicks),
              static_cast<unsigned long long>(s.fixesSkippedShed),
              static_cast<unsigned long long>(s.checkpointWrites),
              static_cast<unsigned long long>(s.checkpointFailures));

  const std::string payload = eval::fleetJson(r);
  std::ofstream json(prefix + ".json");
  json << payload;
  std::printf("\nwrote %s.json\n", prefix.c_str());

  bench::BenchRecord record;
  record.name = "fleet";
  record.seed = fc.seed;
  record.payload = payload;
  record.gate("enough_sessions", r.sessions >= 500);
  record.gate("all_fixed", r.chaos.fixRate >= 1.0 - 1e-12);
  record.gate("isolated_within_2x",
              r.isolationRatio > 0.0 && r.isolationRatio <= 2.0);
  record.metric("sessions", double(r.sessions));
  record.metric("isolation_ratio", r.isolationRatio);
  record.metric("chaos_fix_rate", r.chaos.fixRate);
  record.metric("session_ticks_per_sec", r.sessionTicksPerSec);
  bench::writeBenchSidecar(jsonPath, record);

  std::printf("[acceptance: >=500 concurrent flaky sessions (%zu), eventual "
              "100%% fix rate (%.1f%%), healthy p99 during 20%% outage "
              "<= 2x isolated baseline (%.2fx)]\n",
              r.sessions, r.chaos.fixRate * 100, r.isolationRatio);

  return record.allGatesPass() ? 0 : 1;
}
