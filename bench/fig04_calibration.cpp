// Fig. 4 -- calibrating the phase shifts, in three stages:
//  (a) smoothed (unwrapped) phase sequence vs. the geometric ground truth:
//      a constant misalignment (the diversity term theta_div) separates them;
//  (b) after subtracting the diversity term: the sequences match except for
//      ~0.7 rad gaps around the peaks, and the sampling density is higher in
//      the peak/valley segments (A, C) than in the middle segment (B);
//  (c) after the orientation calibration: residuals shrink to noise level.
#include <cstdio>
#include <vector>

#include "core/orientation_calibration.hpp"
#include "core/preprocess.hpp"
#include "dsp/stats.hpp"
#include "eval/report.hpp"
#include "eval/runner.hpp"
#include "geom/angles.hpp"
#include "sim/interrogator.hpp"
#include "sim/scenario.hpp"

using namespace tagspin;

int main() {
  eval::printHeading("Fig. 4: calibrating the phase shifts");

  sim::ScenarioConfig sc;
  sc.seed = 4;
  sc.fixedChannel = true;
  sim::World world = sim::makeTwoRigWorld(sc);
  world.rigs.resize(1);
  world.rigs[0].rig.center = {0.40, 0.0, 0.0};
  const geom::Vec3 reader{0.0, 2.77, 0.0};
  sim::placeReaderAntenna(world, 0, reader);

  const sim::RigTag& rig = world.rigs[0];
  const rfid::ReportStream reports =
      sim::interrogate(world, {2.0 * rig.rig.periodS(), 0, 0});
  const auto snaps = core::extractSnapshots(reports, rig.tag.epc);
  const double lambda = snaps.front().lambdaM;

  // Geometric ground truth phase for every read (Eqn. 3, exact distance).
  auto groundTruth = [&](const core::Snapshot& s) {
    const double d = geom::distance(rig.rig.tagPosition(s.timeS), reader);
    return 4.0 * geom::kPi / lambda * d;
  };

  // Stage (a): raw wrapped residual between measurement and ground truth;
  // its circular mean is the diversity misalignment.
  std::vector<double> rawDiff(snaps.size());
  for (size_t i = 0; i < snaps.size(); ++i) {
    rawDiff[i] = geom::wrapTwoPi(snaps[i].phaseRad - groundTruth(snaps[i]));
  }
  const double thetaDivEst = geom::circularMean(rawDiff);
  const double thetaDivTrue = geom::wrapToPi(
      rig.tag.hardwarePhase + world.reader.antenna(0).cableAndPortPhase);
  std::printf("(a) diversity misalignment: estimated %.3f rad "
              "(true theta_div %.3f rad)\n",
              thetaDivEst, geom::wrapTwoPi(thetaDivTrue));

  // Robust spread measures: ~3% of reads are interference outliers with a
  // uniform phase error, which would dominate min/max and plain RMS.
  auto trimmedRms = [](const std::vector<double>& xs) {
    std::vector<double> mags(xs.size());
    for (size_t i = 0; i < xs.size(); ++i) mags[i] = std::abs(xs[i]);
    const double cutoff = 3.0 * dsp::percentile(mags, 75.0) + 0.05;
    std::vector<double> inliers;
    for (double x : xs) {
      if (std::abs(x) <= cutoff) inliers.push_back(x);
    }
    return dsp::rms(inliers);
  };
  auto robustSpan = [](const std::vector<double>& xs) {
    return dsp::percentile(xs, 97.0) - dsp::percentile(xs, 3.0);
  };

  // Stage (b): residual after removing the diversity term.
  std::vector<double> afterDiv(snaps.size());
  for (size_t i = 0; i < snaps.size(); ++i) {
    afterDiv[i] = geom::wrapToPi(rawDiff[i] - thetaDivEst);
  }
  std::printf("(b) residual after diversity calibration: trimmed rms %.3f "
              "rad, p3-p97 span %.3f rad (paper: ~0.7 rad gap at peaks)\n",
              trimmedRms(afterDiv), robustSpan(afterDiv));

  // Sampling density per orientation segment: A/C near the energy peaks
  // (rho ~ pi/2, 3pi/2), B in the middle.
  double densityPeak = 0.0, densityMid = 0.0;
  int nPeak = 0, nMid = 0;
  const auto density = core::samplingDensity(snaps, 1.0);
  for (size_t i = 0; i < snaps.size(); ++i) {
    const double rho = core::orientationAtPosition(
        {rig.rig.center,
         {rig.rig.radiusM, rig.rig.omegaRadPerS, rig.rig.initialAngle,
          rig.rig.tagPlaneOffset}},
        snaps[i].timeS, reader);
    const double fold = std::abs(std::sin(rho));
    if (fold > 0.9) {
      densityPeak += density[i];
      ++nPeak;
    } else if (fold < 0.45) {
      densityMid += density[i];
      ++nMid;
    }
  }
  if (nPeak > 0 && nMid > 0) {
    std::printf("    sampling density: %.1f reads/s near peaks (A/C) vs "
                "%.1f reads/s mid-segment (B) -- ratio %.2f\n",
                densityPeak / nPeak, densityMid / nMid,
                (densityPeak / nPeak) / (densityMid / nMid));
  }

  // Stage (c): orientation calibration (prelude fit + correction).
  const auto models = eval::runCalibrationPrelude(world, 60.0);
  const core::OrientationModel& model = models.at(rig.tag.epc);
  const core::RigSpec spec{
      rig.rig.center,
      {rig.rig.radiusM, rig.rig.omegaRadPerS, rig.rig.initialAngle,
       rig.rig.tagPlaneOffset}};
  const auto calibrated =
      core::calibrateOrientationAtPosition(snaps, spec, model, reader);
  std::vector<double> afterOrient(calibrated.size());
  for (size_t i = 0; i < calibrated.size(); ++i) {
    afterOrient[i] = geom::wrapToPi(
        geom::wrapTwoPi(calibrated[i].phaseRad - groundTruth(calibrated[i])) -
        thetaDivEst - model.offsetAt(geom::kPi / 2.0));
  }
  // Remove the residual constant (reference-orientation offset).
  const double c = geom::circularMean(afterOrient);
  for (double& v : afterOrient) v = geom::wrapToPi(v - c);
  std::printf("(c) residual after orientation calibration: trimmed rms %.3f "
              "rad, p3-p97 span %.3f rad (phase noise sigma = 0.1 rad)\n",
              trimmedRms(afterOrient), robustSpan(afterOrient));
  return 0;
}
