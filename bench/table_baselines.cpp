// Section VII-B baseline comparison -- the table behind Fig. 10's claims:
// Tagspin vs LandMarc, AntLoc, PinIt and BackPos, with the improvement
// factor of Tagspin over each.  Paper: Tagspin outperforms LandMarc by
// ~8.9x in 2D; the other baselines sit in between.
//
// Tagspin runs on its own infrastructure (two spinning rigs); the baselines
// run in the same room with the reference-tag grid their designs require.
#include <cstdio>
#include <vector>

#include "baselines/antloc.hpp"
#include "baselines/backpos.hpp"
#include "baselines/landmarc.hpp"
#include "baselines/pinit.hpp"
#include "eval/estimators.hpp"
#include "eval/report.hpp"

using namespace tagspin;

int main(int argc, char** argv) {
  const int trials = argc > 1 ? std::atoi(argv[1]) : 20;
  eval::printHeading("Baseline comparison (2D, same room, same trials)");

  sim::ScenarioConfig sc;
  sc.seed = 11;
  sc.fixedChannel = true;
  const sim::Region region{};

  sim::World rigsOnly = sim::makeTwoRigWorld(sc);
  sim::World withGrid = sim::makeTwoRigWorld(sc);
  sim::addReferenceGrid(withGrid, region, 0.6, 0.0);

  eval::RunnerConfig tagspinRc;
  tagspinRc.world = rigsOnly;
  tagspinRc.region = region;
  tagspinRc.trials = trials;
  tagspinRc.durationS = 30.0;

  eval::RunnerConfig baselineRc = tagspinRc;
  baselineRc.world = withGrid;
  baselineRc.calibrateOrientation = false;  // baselines don't use the prelude

  struct Row {
    const char* name;
    eval::RunResult result;
  };
  std::vector<Row> rows;
  rows.push_back({"Tagspin",
                  eval::runExperiment(tagspinRc, eval::makeTagspin2D())});
  rows.push_back({"LandMarc", eval::runExperiment(
                                  baselineRc, eval::makeLandmarc({}))});
  rows.push_back(
      {"AntLoc", eval::runExperiment(baselineRc, eval::makeAntLoc({}))});
  rows.push_back(
      {"PinIt", eval::runExperiment(baselineRc, eval::makePinIt({}))});
  rows.push_back(
      {"BackPos", eval::runExperiment(baselineRc, eval::makeBackPos({}))});

  eval::printSummaryHeader();
  for (const Row& r : rows) eval::printSummaryRow(r.name, r.result.summary);

  std::printf("\nTagspin improvement factors (mean error ratio):\n");
  const double tagspinMean = rows[0].result.summary.mean;
  for (size_t i = 1; i < rows.size(); ++i) {
    std::printf("  vs %-10s %5.1fx\n", rows[i].name,
                rows[i].result.summary.mean / tagspinMean);
  }
  std::printf("[paper: outperforms LandMarc/AntLoc/PinIt/BackPos; LandMarc "
              "by ~8.9x in 2D.  BackPos is bimodal here: sub-cm when the "
              "lambda/2 ambiguity resolves, metres when it does not.]\n");
  return 0;
}
