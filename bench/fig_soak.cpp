// Soak benchmark for the supervised reader-session runtime (no paper
// counterpart -- the production benchmark this reproduction adds): a long
// spin capture is streamed through a flaky transport running the standard
// outage script (3 disconnects + 1 stall + 1 flood per 10 revolutions),
// the process is kill -9'd mid-spin and restarted from its checkpoint, and
// the final fix is compared against an uninterrupted run of the very same
// stream.
//
// Usage: fig_soak [--seed=N] [--out=DIR] [--json[=PATH]] [revolutions]
//                 [rigs] [outPrefix]
// Writes DIR/<outPrefix>.csv (per-outage recovery), DIR/<outPrefix>.json,
// and the run's exported telemetry DIR/<outPrefix>.metrics.{json,prom}
// (default DIR "bench/out").  --json additionally writes the
// machine-readable trajectory sidecar (default PATH "BENCH_soak.json").
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "eval/report.hpp"
#include "eval/soak.hpp"

using namespace tagspin;

int main(int argc, char** argv) {
  eval::SoakConfig sc;
  sc.scenario.seed = 33;
  sc.scenario.fixedChannel = true;
  std::string sidecarPath;
  std::vector<std::string> pos;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--seed=", 0) == 0) {
      sc.seed = std::stoull(arg.substr(7));
    } else if (arg == "--json") {
      sidecarPath = "BENCH_soak.json";
    } else if (arg.rfind("--json=", 0) == 0) {
      sidecarPath = arg.substr(7);
    } else {
      pos.push_back(arg);
    }
  }
  const std::string outDir = eval::consumeOutDir(pos);
  sc.revolutions = pos.size() > 0 ? std::atof(pos[0].c_str()) : 10.0;
  sc.rigCount = pos.size() > 1 ? std::atoi(pos[1].c_str()) : 3;
  const std::string prefix =
      eval::outputPath(outDir, pos.size() > 2 ? pos[2] : "fig_soak");
  sc.checkpointPath = prefix + ".ckpt";

  eval::printHeading("Soak: outage script + kill -9 mid-spin");
  std::printf("%g revolutions, %d rigs, seed 0x%llX, kill at %.0f%%\n",
              sc.revolutions, sc.rigCount,
              static_cast<unsigned long long>(sc.seed),
              sc.killAtFraction * 100);

  const eval::SoakResult r = eval::runSoak(sc);

  std::printf("\nclean reports %zu | seen %llu (loss %.1f%%) | ingested %llu "
              "| dup-suppressed %llu\n",
              r.cleanReports, static_cast<unsigned long long>(r.reportsSeen),
              r.reportLossFraction * 100,
              static_cast<unsigned long long>(r.reportsIngested),
              static_cast<unsigned long long>(r.duplicatesSuppressed));
  std::printf("outages tracked %zu | all recovered %s | recover mean %.2fs "
              "max %.2fs\n",
              r.recoveries.size(), r.allRecovered ? "yes" : "NO",
              r.meanTimeToRecoverS, r.maxTimeToRecoverS);
  std::printf("watchdogs: no-report %llu, stuck-clock %llu | session "
              "disconnects %llu | supervisor restarts %llu\n",
              static_cast<unsigned long long>(r.watchdogNoReport),
              static_cast<unsigned long long>(r.watchdogStuckClock),
              static_cast<unsigned long long>(r.sessionDisconnects),
              static_cast<unsigned long long>(r.sessionsRestarted));
  std::printf("queue: refused %llu, dropped-oldest %llu, sampled-out %llu, "
              "max depth %llu\n",
              static_cast<unsigned long long>(r.queue.refusedFull),
              static_cast<unsigned long long>(r.queue.droppedOldest),
              static_cast<unsigned long long>(r.queue.droppedSampled),
              static_cast<unsigned long long>(r.queue.maxDepth));
  if (r.killed) {
    std::printf("kill -9 at %.1fs: snapshots %zu -> restored %zu "
                "(checkpoint age %.2fs), restore %s, revolutions "
                "re-acquired %.3f\n",
                r.killAtS, r.snapshotsAtKill, r.snapshotsRestored,
                r.checkpointAgeAtKillS, r.restoreOk ? "ok" : "FAILED",
                r.revolutionsReacquired);
  }
  std::printf("checkpoints saved: %llu\n",
              static_cast<unsigned long long>(r.checkpointsSaved));
  if (r.soakOk) {
    std::printf("2D error: baseline %.2f cm, soak %.2f cm (%.2fx), grade "
                "%s\n", r.baselineErrorCm, r.soakErrorCm, r.errorRatio,
                r.soakGrade.c_str());
  } else {
    std::printf("soak fix FAILED: %s (baseline %.2f cm)\n",
                r.soakFailure.c_str(), r.baselineErrorCm);
  }

  std::ofstream csv(prefix + ".csv");
  csv << eval::soakCsv(r);
  std::ofstream json(prefix + ".json");
  json << eval::soakJson(r);
  tagspin::obs::writeTextFile(prefix + ".metrics.json", r.telemetryJson);
  tagspin::obs::writeTextFile(prefix + ".metrics.prom", r.telemetryPrometheus);
  std::printf("\nwrote %s.{csv,json} and %s.metrics.{json,prom}\n",
              prefix.c_str(), prefix.c_str());
  bench::BenchRecord record;
  record.name = "soak";
  record.seed = sc.seed;
  record.payload = eval::soakJson(r);
  record.gate("all_recovered", r.allRecovered);
  record.gate("soak_ok", r.soakOk);
  record.gate("error_within_1_25x", r.soakOk && r.errorRatio <= 1.25);
  record.gate("restore_ok",
              !r.killed || (r.restoreOk && r.revolutionsReacquired < 1.0));
  record.metric("soak_error_cm", r.soakErrorCm);
  record.metric("error_ratio", r.errorRatio);
  record.metric("max_time_to_recover_s", r.maxTimeToRecoverS);
  record.metric("revolutions_reacquired", r.revolutionsReacquired);
  if (!sidecarPath.empty()) {
    bench::writeBenchSidecar(sidecarPath, record);
  }

  std::printf("[acceptance: every outage recovered (%s), soak error within "
              "1.25x baseline (%.2fx), kill -9 resumed from checkpoint "
              "(%s) with %.3f revolutions re-acquired (want ~0)]\n",
              r.allRecovered ? "yes" : "NO", r.errorRatio,
              r.restoreOk ? "yes" : "NO", r.revolutionsReacquired);

  return record.allGatesPass() ? 0 : 1;
}
