// Shared sidecar schema for the BENCH_*.json trajectory records.
//
// Every long-running bench (fig_soak, fig_chaos, fig_fleet, fig_replay)
// emits one machine-readable record so CI trending and the workflow
// artifacts read a single shape instead of four ad-hoc ones:
//
//   {
//     "bench":   "<name>",
//     "seed":    <u64>,
//     "pass":    <all gates true>,
//     "gates":   { "<gate>": true/false, ... },
//     "metrics": { "<metric>": <number>, ... },
//     "payload": { ...full harness JSON... }
//   }
//
// Gates are the binary acceptance criteria the binary's exit code is built
// from; metrics are the headline numbers worth trending without parsing
// the payload.  The payload embeds the harness's own JSON object verbatim
// (it must be a well-formed object; "" omits the key).
#pragma once

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace tagspin::bench {

struct BenchRecord {
  std::string name;
  uint64_t seed = 0;
  std::vector<std::pair<std::string, bool>> gates;
  std::vector<std::pair<std::string, double>> metrics;
  /// Full harness JSON object ("" omits the payload key).
  std::string payload;

  void gate(std::string key, bool pass) {
    gates.emplace_back(std::move(key), pass);
  }
  void metric(std::string key, double value) {
    metrics.emplace_back(std::move(key), value);
  }

  bool allGatesPass() const {
    for (const auto& [key, ok] : gates) {
      if (!ok) return false;
    }
    return true;
  }

  std::string toJson() const {
    std::ostringstream out;
    out << "{\n";
    out << "  \"bench\": \"" << name << "\",\n";
    out << "  \"seed\": " << seed << ",\n";
    out << "  \"pass\": " << (allGatesPass() ? "true" : "false") << ",\n";
    out << "  \"gates\": {";
    for (size_t i = 0; i < gates.size(); ++i) {
      out << (i ? ", " : "") << "\"" << gates[i].first << "\": "
          << (gates[i].second ? "true" : "false");
    }
    out << "},\n";
    out << "  \"metrics\": {";
    for (size_t i = 0; i < metrics.size(); ++i) {
      char value[48];
      std::snprintf(value, sizeof(value), "%.9g", metrics[i].second);
      out << (i ? ", " : "") << "\"" << metrics[i].first << "\": " << value;
    }
    out << "}";
    if (!payload.empty()) {
      // The harness payloads end with "}\n"; indent-free embedding keeps
      // this emitter dumb and the output valid.
      std::string trimmed = payload;
      while (!trimmed.empty() &&
             (trimmed.back() == '\n' || trimmed.back() == ' ')) {
        trimmed.pop_back();
      }
      out << ",\n  \"payload\": " << trimmed;
    }
    out << "\n}\n";
    return out.str();
  }
};

/// Write the record to `path` and report it on stdout.
inline void writeBenchSidecar(const std::string& path,
                              const BenchRecord& record) {
  std::ofstream out(path);
  out << record.toJson();
  std::printf("wrote %s (pass=%s)\n", path.c_str(),
              record.allGatesPass() ? "true" : "false");
}

}  // namespace tagspin::bench
