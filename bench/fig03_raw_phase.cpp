// Fig. 3 -- the original (raw) phase measurements of an edge-mounted
// spinning tag: a sawtooth-like sequence that repeats once per disk
// revolution and is discontinuous because of the mod-2*pi operation.
#include <cstdio>

#include "core/preprocess.hpp"
#include "eval/report.hpp"
#include "geom/angles.hpp"
#include "sim/interrogator.hpp"
#include "sim/scenario.hpp"

using namespace tagspin;

int main() {
  eval::printHeading("Fig. 3: raw phase measurements of a spinning tag");

  sim::ScenarioConfig sc;
  sc.seed = 3;
  sc.fixedChannel = true;
  sim::World world = sim::makeTwoRigWorld(sc);
  // The paper's setting: disk center at (0.40 m, 0), reader at (0, 2.77 m).
  world.rigs.resize(1);
  world.rigs[0].rig.center = {0.40, 0.0, 0.0};
  sim::placeReaderAntenna(world, 0, {0.0, 2.77, 0.0});

  const double period = world.rigs[0].rig.periodS();
  const rfid::ReportStream reports =
      sim::interrogate(world, {3.0 * period, 0, 0});
  const auto snaps = core::extractSnapshots(reports, world.rigs[0].tag.epc);

  std::printf("%zu reads over %.1f s (three revolutions, omega = %.2f rad/s)\n",
              snaps.size(), 3.0 * period, world.rigs[0].rig.omegaRadPerS);
  std::printf("%8s %10s %12s %10s\n", "read#", "time_s", "phase_rad",
              "rssi_dbm");
  const size_t step = snaps.size() / 120 + 1;
  for (size_t i = 0; i < snaps.size(); i += step) {
    std::printf("%8zu %10.3f %12.4f %10.1f\n", i, snaps[i].timeS,
                snaps[i].phaseRad, snaps[i].rssiDbm);
  }

  // The sawtooth property: count mod-2*pi discontinuities per revolution.
  int wraps = 0;
  for (size_t i = 1; i < snaps.size(); ++i) {
    if (std::abs(snaps[i].phaseRad - snaps[i - 1].phaseRad) > geom::kPi) {
      ++wraps;
    }
  }
  std::printf("\nmod-2*pi discontinuities: %d over 3 revolutions "
              "(4r/lambda = %.1f wraps expected per revolution)\n",
              wraps,
              4.0 * world.rigs[0].rig.radiusM / snaps.front().lambdaM * 2.0);
  return 0;
}
