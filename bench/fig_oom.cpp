// Resource-exhaustion benchmark (no paper counterpart -- the allocation
// twin of fig_crash): every reservation boundary of five workloads --
// fleet steady state, session connect storm, capture-replay fan-out,
// tracker ghost burst, shard checkpoint save -- gets an injected
// allocation failure (deny / burst / cliff / poison, cycled), and after
// every injected run the no-crash / no-leak / isolation / budget /
// full-recovery invariants are checked.  A zero-injection parity gate
// proves the accounting seam itself costs nothing (bit-identical fix
// digests), a sustained-pressure arm proves the fleet keeps its fix rate
// while trimming inside an ~80%-utilization shard budget, and a planted
// release-without-reserve cache is swept, caught, and its failing
// schedule shrunk to a minimal replayable artifact.
//
// Usage: fig_oom [--seed=N] [--out=DIR] [--json[=PATH]] [pointsPerWorkload]
//                [scheduleRounds] [outPrefix]
// Writes DIR/<outPrefix>.json (default DIR "bench/out").  --json
// additionally writes the shared-schema sidecar (default PATH
// "BENCH_oom.json").
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "eval/oom.hpp"
#include "eval/report.hpp"

using namespace tagspin;

int main(int argc, char** argv) {
  eval::OomExploreConfig cfg;
  std::string sidecarPath;
  std::vector<std::string> pos;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--seed=", 0) == 0) {
      cfg.seed = std::stoull(arg.substr(7));
    } else if (arg == "--json") {
      sidecarPath = "BENCH_oom.json";
    } else if (arg.rfind("--json=", 0) == 0) {
      sidecarPath = arg.substr(7);
    } else {
      pos.push_back(arg);
    }
  }
  const std::string outDir = eval::consumeOutDir(pos);
  if (pos.size() > 0) {
    cfg.pointsPerWorkload = size_t(std::atoi(pos[0].c_str()));
  }
  if (pos.size() > 1) cfg.scheduleRounds = size_t(std::atoi(pos[1].c_str()));
  const std::string prefix =
      eval::outputPath(outDir, pos.size() > 2 ? pos[2] : "fig_oom");

  eval::printHeading(
      "Resource exhaustion: exhaustive allocation-failure exploration");
  std::printf("seed 0x%llX, %zu sessions x %zu shards, %zu points per "
              "workload, %zu schedule rounds, pressure budget factor %.2f\n",
              static_cast<unsigned long long>(cfg.seed), cfg.fleetSessions,
              cfg.fleetShards, cfg.pointsPerWorkload, cfg.scheduleRounds,
              cfg.pressureBudgetFactor);

  const eval::OomEvalResult r = eval::runOomEval(cfg);

  std::printf("\n%-22s %12s %10s %10s %12s\n", "workload", "boundaries",
              "points", "denials", "violations");
  for (const eval::WorkloadOomStats& w : r.workloads) {
    std::printf("%-22s %12llu %10llu %10llu %12llu\n", w.name.c_str(),
                static_cast<unsigned long long>(w.boundaries),
                static_cast<unsigned long long>(w.points),
                static_cast<unsigned long long>(w.denials),
                static_cast<unsigned long long>(w.violations));
  }
  std::printf("total: %llu boundaries, %llu failure points, %llu "
              "violations\n",
              static_cast<unsigned long long>(r.totalBoundaries),
              static_cast<unsigned long long>(r.totalPoints),
              static_cast<unsigned long long>(r.totalViolations));
  std::printf("schedule search: %llu runs (%llu denials), %llu violations\n",
              static_cast<unsigned long long>(r.scheduleRuns),
              static_cast<unsigned long long>(r.scheduleDenials),
              static_cast<unsigned long long>(r.scheduleViolations));
  std::printf("parity: %s (baseline %s, seam %s)\n",
              r.parityBitIdentical ? "bit-identical" : "DIVERGED",
              r.parityBaselineDigest.c_str(), r.paritySeamDigest.c_str());
  std::printf("pressure: fix rate %.4f at %.1f%% utilization (budget %llu "
              "B/shard), %llu trims, %llu ejections, %llu denied reserves, "
              "recovered %s\n",
              r.pressureFixRate, 100.0 * r.pressureUtilization,
              static_cast<unsigned long long>(r.pressureShardBudgetBytes),
              static_cast<unsigned long long>(r.pressureTrims),
              static_cast<unsigned long long>(r.pressureEjections),
              static_cast<unsigned long long>(r.pressureDeniedReserves),
              r.pressureRecovered ? "yes" : "NO");
  std::printf("broken cache: caught %s, failing schedule %s (%llu faults), "
              "shrunk to %llu fault(s)\n",
              r.brokenCacheCaught ? "yes" : "NO",
              r.brokenScheduleFound ? "found" : "NOT FOUND",
              static_cast<unsigned long long>(r.brokenScheduleFaults),
              static_cast<unsigned long long>(r.brokenShrunkFaults));
  if (!r.brokenArtifactJson.empty()) {
    std::printf("minimal artifact: %s\n", r.brokenArtifactJson.c_str());
  }
  for (const eval::OomViolation& v : r.violations) {
    std::printf("VIOLATION [%s] failAtOp=%lld: %s\n", v.workload.c_str(),
                static_cast<long long>(v.failAtOp), v.detail.c_str());
  }

  const std::string payload = eval::oomJson(r);
  std::ofstream json(prefix + ".json");
  json << payload;
  std::printf("\nwrote %s.json\n", prefix.c_str());

  bench::BenchRecord record;
  record.name = "oom";
  record.seed = cfg.seed;
  record.payload = payload;
  record.gate("oom_points_ge_500", r.totalPoints >= 500);
  record.gate("zero_violations", r.totalViolations == 0);
  record.gate("schedule_search_clean", r.scheduleViolations == 0);
  record.gate("parity_bit_identical",
              !r.parityChecked || r.parityBitIdentical);
  record.gate("pressure_fix_rate_ge_99",
              !r.pressureChecked ||
                  r.pressureFixRate >= cfg.pressureMinFixRate);
  record.gate("pressure_recovered", !r.pressureChecked || r.pressureRecovered);
  record.gate("broken_cache_caught", r.brokenCacheCaught);
  record.gate("broken_cache_shrunk",
              r.brokenScheduleFound && r.brokenShrunkFaults >= 1 &&
                  r.brokenShrunkFaults <= r.brokenScheduleFaults);
  record.metric("total_boundaries", double(r.totalBoundaries));
  record.metric("total_points", double(r.totalPoints));
  record.metric("total_violations", double(r.totalViolations));
  record.metric("schedule_runs", double(r.scheduleRuns));
  record.metric("pressure_fix_rate", r.pressureFixRate);
  record.metric("pressure_utilization", r.pressureUtilization);
  record.metric("pressure_trims", double(r.pressureTrims));
  record.metric("broken_shrunk_faults", double(r.brokenShrunkFaults));
  if (!sidecarPath.empty()) {
    bench::writeBenchSidecar(sidecarPath, record);
  }

  std::printf("[acceptance: >= 500 allocation-failure points (%llu), zero "
              "invariant violations (%llu), fix rate %.4f under sustained "
              "pressure, parity %s, planted accounting bug caught and "
              "shrunk to %llu fault(s)]\n",
              static_cast<unsigned long long>(r.totalPoints),
              static_cast<unsigned long long>(r.totalViolations),
              r.pressureFixRate,
              r.parityBitIdentical ? "bit-identical" : "DIVERGED",
              static_cast<unsigned long long>(r.brokenShrunkFaults));

  return record.allGatesPass() ? 0 : 1;
}
