// Robustness breakdown curves (no paper counterpart -- the production
// benchmark this reproduction adds): fix success rate and error quantiles
// versus fault intensity, with the full-intensity cocktail at 5% frame bit
// flips + 2% truncation, 10% duplicates, 5% reorders, clock drift/glitches,
// EPC bit errors, and one rig silent for 30% of the spin.
//
// Usage: fig_chaos [--seed=N] [--out=DIR] [--json[=PATH]] [trialsPerPoint]
//                  [durationS] [outPrefix]
// Writes DIR/<outPrefix>.csv and DIR/<outPrefix>.json (default prefix
// "fig_chaos", default DIR "bench/out").  --json additionally writes the
// machine-readable trajectory sidecar (default PATH "BENCH_chaos.json").
// The fault RNG seed defaults to a fixed value so runs are reproducible;
// pass --seed=N to sweep independent fault realizations.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "eval/chaos.hpp"
#include "eval/report.hpp"

using namespace tagspin;

int main(int argc, char** argv) {
  eval::ChaosConfig cc;
  cc.scenario.seed = 21;
  cc.scenario.fixedChannel = true;
  std::string sidecarPath;
  std::vector<std::string> pos;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--seed=", 0) == 0) {
      cc.seed = std::stoull(arg.substr(7));
    } else if (arg == "--json") {
      sidecarPath = "BENCH_chaos.json";
    } else if (arg.rfind("--json=", 0) == 0) {
      sidecarPath = arg.substr(7);
    } else {
      pos.push_back(arg);
    }
  }
  const std::string outDir = eval::consumeOutDir(pos);
  cc.trialsPerPoint = pos.size() > 0 ? std::atoi(pos[0].c_str()) : 40;
  cc.durationS = pos.size() > 1 ? std::atof(pos[1].c_str()) : 15.0;
  const std::string prefix =
      eval::outputPath(outDir, pos.size() > 2 ? pos[2] : "fig_chaos");

  eval::printHeading("Chaos: ingestion-fault breakdown curve");
  std::printf("fault seed: 0x%llX%s\n",
              static_cast<unsigned long long>(cc.seed),
              cc.seed == 0xC4A05 ? " (default)" : "");
  std::printf("full-intensity faults: bitflip %.0f%%, truncate %.0f%%, "
              "dup %.0f%%, reorder %.0f%%, drift %.0f ppm, "
              "rig %d silent for %.0f%% of the spin\n",
              cc.faultsAtFull.frameBitFlipProb * 100,
              cc.faultsAtFull.frameTruncateProb * 100,
              cc.faultsAtFull.duplicateProb * 100,
              cc.faultsAtFull.reorderProb * 100, cc.faultsAtFull.clockDriftPpm,
              cc.dropoutRig, cc.dropoutFraction * 100);

  const eval::ChaosResult result = eval::runChaosSweep(cc);

  std::printf("\n%9s %7s %8s %10s %10s %10s %9s %9s\n", "intensity", "fixes",
              "fixRate", "median_cm", "p90_cm", "vs_clean", "fr_skip",
              "by_resync");
  for (const eval::ChaosPoint& p : result.points) {
    const double ratio = result.cleanMedianErrorCm > 0.0
                             ? p.medianErrorCm / result.cleanMedianErrorCm
                             : 0.0;
    std::printf("%9.2f %3d/%3d %7.0f%% %10.2f %10.2f %9.2fx %9zu %9zu\n",
                p.intensity, p.fixes, p.trials, p.fixRate * 100,
                p.medianErrorCm, p.p90ErrorCm, ratio, p.decode.framesSkipped,
                p.decode.bytesResynced);
    for (const auto& [cause, count] : p.failures) {
      std::printf("          failure %s x%d\n", cause.c_str(), count);
    }
  }

  std::ofstream csv(prefix + ".csv");
  csv << eval::chaosCsv(result);
  std::ofstream json(prefix + ".json");
  json << eval::chaosJson(result);
  std::printf("\nwrote %s.csv and %s.json\n", prefix.c_str(), prefix.c_str());
  const eval::ChaosPoint& full = result.points.back();
  const double medianRatio = result.cleanMedianErrorCm > 0.0
                                 ? full.medianErrorCm /
                                       result.cleanMedianErrorCm
                                 : 0.0;
  bench::BenchRecord record;
  record.name = "chaos";
  record.seed = cc.seed;
  record.payload = eval::chaosJson(result);
  record.gate("full_intensity_fix_rate_ge_90pct", full.fixRate >= 0.90);
  record.gate("median_within_2x_clean",
              medianRatio > 0.0 && medianRatio <= 2.0);
  record.metric("full_intensity_fix_rate", full.fixRate);
  record.metric("full_intensity_median_cm", full.medianErrorCm);
  record.metric("clean_median_cm", result.cleanMedianErrorCm);
  record.metric("median_ratio", medianRatio);
  if (!sidecarPath.empty()) {
    bench::writeBenchSidecar(sidecarPath, record);
  }

  std::printf("[acceptance: full intensity fix rate %.0f%% (want >= 90%%), "
              "median %.2fx clean (want <= 2x)]\n", full.fixRate * 100,
              medianRatio);
  return 0;
}
