file(REMOVE_RECURSE
  "CMakeFiles/tagspin_cli.dir/tagspin_cli.cpp.o"
  "CMakeFiles/tagspin_cli.dir/tagspin_cli.cpp.o.d"
  "tagspin_cli"
  "tagspin_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tagspin_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
