# Empty dependencies file for tagspin_cli.
# This may be replaced when dependencies are built.
