file(REMOVE_RECURSE
  "CMakeFiles/tagspin_core.dir/fusion.cpp.o"
  "CMakeFiles/tagspin_core.dir/fusion.cpp.o.d"
  "CMakeFiles/tagspin_core.dir/hologram.cpp.o"
  "CMakeFiles/tagspin_core.dir/hologram.cpp.o.d"
  "CMakeFiles/tagspin_core.dir/locator.cpp.o"
  "CMakeFiles/tagspin_core.dir/locator.cpp.o.d"
  "CMakeFiles/tagspin_core.dir/orientation_calibration.cpp.o"
  "CMakeFiles/tagspin_core.dir/orientation_calibration.cpp.o.d"
  "CMakeFiles/tagspin_core.dir/power_profile.cpp.o"
  "CMakeFiles/tagspin_core.dir/power_profile.cpp.o.d"
  "CMakeFiles/tagspin_core.dir/preprocess.cpp.o"
  "CMakeFiles/tagspin_core.dir/preprocess.cpp.o.d"
  "CMakeFiles/tagspin_core.dir/quality.cpp.o"
  "CMakeFiles/tagspin_core.dir/quality.cpp.o.d"
  "CMakeFiles/tagspin_core.dir/serialization.cpp.o"
  "CMakeFiles/tagspin_core.dir/serialization.cpp.o.d"
  "CMakeFiles/tagspin_core.dir/spectrum.cpp.o"
  "CMakeFiles/tagspin_core.dir/spectrum.cpp.o.d"
  "CMakeFiles/tagspin_core.dir/tagspin.cpp.o"
  "CMakeFiles/tagspin_core.dir/tagspin.cpp.o.d"
  "libtagspin_core.a"
  "libtagspin_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tagspin_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
