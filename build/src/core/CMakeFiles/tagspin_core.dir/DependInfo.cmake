
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/fusion.cpp" "src/core/CMakeFiles/tagspin_core.dir/fusion.cpp.o" "gcc" "src/core/CMakeFiles/tagspin_core.dir/fusion.cpp.o.d"
  "/root/repo/src/core/hologram.cpp" "src/core/CMakeFiles/tagspin_core.dir/hologram.cpp.o" "gcc" "src/core/CMakeFiles/tagspin_core.dir/hologram.cpp.o.d"
  "/root/repo/src/core/locator.cpp" "src/core/CMakeFiles/tagspin_core.dir/locator.cpp.o" "gcc" "src/core/CMakeFiles/tagspin_core.dir/locator.cpp.o.d"
  "/root/repo/src/core/orientation_calibration.cpp" "src/core/CMakeFiles/tagspin_core.dir/orientation_calibration.cpp.o" "gcc" "src/core/CMakeFiles/tagspin_core.dir/orientation_calibration.cpp.o.d"
  "/root/repo/src/core/power_profile.cpp" "src/core/CMakeFiles/tagspin_core.dir/power_profile.cpp.o" "gcc" "src/core/CMakeFiles/tagspin_core.dir/power_profile.cpp.o.d"
  "/root/repo/src/core/preprocess.cpp" "src/core/CMakeFiles/tagspin_core.dir/preprocess.cpp.o" "gcc" "src/core/CMakeFiles/tagspin_core.dir/preprocess.cpp.o.d"
  "/root/repo/src/core/quality.cpp" "src/core/CMakeFiles/tagspin_core.dir/quality.cpp.o" "gcc" "src/core/CMakeFiles/tagspin_core.dir/quality.cpp.o.d"
  "/root/repo/src/core/serialization.cpp" "src/core/CMakeFiles/tagspin_core.dir/serialization.cpp.o" "gcc" "src/core/CMakeFiles/tagspin_core.dir/serialization.cpp.o.d"
  "/root/repo/src/core/spectrum.cpp" "src/core/CMakeFiles/tagspin_core.dir/spectrum.cpp.o" "gcc" "src/core/CMakeFiles/tagspin_core.dir/spectrum.cpp.o.d"
  "/root/repo/src/core/tagspin.cpp" "src/core/CMakeFiles/tagspin_core.dir/tagspin.cpp.o" "gcc" "src/core/CMakeFiles/tagspin_core.dir/tagspin.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rfid/CMakeFiles/tagspin_rfid.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/tagspin_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/tagspin_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/rf/CMakeFiles/tagspin_rf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
