# Empty dependencies file for tagspin_core.
# This may be replaced when dependencies are built.
