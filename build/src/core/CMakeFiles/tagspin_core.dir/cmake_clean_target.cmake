file(REMOVE_RECURSE
  "libtagspin_core.a"
)
