
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/interrogator.cpp" "src/sim/CMakeFiles/tagspin_sim.dir/interrogator.cpp.o" "gcc" "src/sim/CMakeFiles/tagspin_sim.dir/interrogator.cpp.o.d"
  "/root/repo/src/sim/orientation_response.cpp" "src/sim/CMakeFiles/tagspin_sim.dir/orientation_response.cpp.o" "gcc" "src/sim/CMakeFiles/tagspin_sim.dir/orientation_response.cpp.o.d"
  "/root/repo/src/sim/scenario.cpp" "src/sim/CMakeFiles/tagspin_sim.dir/scenario.cpp.o" "gcc" "src/sim/CMakeFiles/tagspin_sim.dir/scenario.cpp.o.d"
  "/root/repo/src/sim/world.cpp" "src/sim/CMakeFiles/tagspin_sim.dir/world.cpp.o" "gcc" "src/sim/CMakeFiles/tagspin_sim.dir/world.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rfid/CMakeFiles/tagspin_rfid.dir/DependInfo.cmake"
  "/root/repo/build/src/rf/CMakeFiles/tagspin_rf.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/tagspin_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/tagspin_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
