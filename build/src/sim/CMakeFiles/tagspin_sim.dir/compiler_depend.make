# Empty compiler generated dependencies file for tagspin_sim.
# This may be replaced when dependencies are built.
