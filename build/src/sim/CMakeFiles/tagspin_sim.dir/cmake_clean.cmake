file(REMOVE_RECURSE
  "CMakeFiles/tagspin_sim.dir/interrogator.cpp.o"
  "CMakeFiles/tagspin_sim.dir/interrogator.cpp.o.d"
  "CMakeFiles/tagspin_sim.dir/orientation_response.cpp.o"
  "CMakeFiles/tagspin_sim.dir/orientation_response.cpp.o.d"
  "CMakeFiles/tagspin_sim.dir/scenario.cpp.o"
  "CMakeFiles/tagspin_sim.dir/scenario.cpp.o.d"
  "CMakeFiles/tagspin_sim.dir/world.cpp.o"
  "CMakeFiles/tagspin_sim.dir/world.cpp.o.d"
  "libtagspin_sim.a"
  "libtagspin_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tagspin_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
