file(REMOVE_RECURSE
  "libtagspin_sim.a"
)
