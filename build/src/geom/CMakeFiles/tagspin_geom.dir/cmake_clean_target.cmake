file(REMOVE_RECURSE
  "libtagspin_geom.a"
)
