file(REMOVE_RECURSE
  "CMakeFiles/tagspin_geom.dir/angles.cpp.o"
  "CMakeFiles/tagspin_geom.dir/angles.cpp.o.d"
  "CMakeFiles/tagspin_geom.dir/ray.cpp.o"
  "CMakeFiles/tagspin_geom.dir/ray.cpp.o.d"
  "libtagspin_geom.a"
  "libtagspin_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tagspin_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
