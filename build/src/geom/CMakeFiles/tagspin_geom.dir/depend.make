# Empty dependencies file for tagspin_geom.
# This may be replaced when dependencies are built.
