file(REMOVE_RECURSE
  "CMakeFiles/tagspin_eval.dir/estimators.cpp.o"
  "CMakeFiles/tagspin_eval.dir/estimators.cpp.o.d"
  "CMakeFiles/tagspin_eval.dir/estimators_baselines.cpp.o"
  "CMakeFiles/tagspin_eval.dir/estimators_baselines.cpp.o.d"
  "CMakeFiles/tagspin_eval.dir/metrics.cpp.o"
  "CMakeFiles/tagspin_eval.dir/metrics.cpp.o.d"
  "CMakeFiles/tagspin_eval.dir/report.cpp.o"
  "CMakeFiles/tagspin_eval.dir/report.cpp.o.d"
  "CMakeFiles/tagspin_eval.dir/runner.cpp.o"
  "CMakeFiles/tagspin_eval.dir/runner.cpp.o.d"
  "libtagspin_eval.a"
  "libtagspin_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tagspin_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
