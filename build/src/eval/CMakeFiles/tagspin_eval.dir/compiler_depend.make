# Empty compiler generated dependencies file for tagspin_eval.
# This may be replaced when dependencies are built.
