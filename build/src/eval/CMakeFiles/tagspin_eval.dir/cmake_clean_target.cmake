file(REMOVE_RECURSE
  "libtagspin_eval.a"
)
