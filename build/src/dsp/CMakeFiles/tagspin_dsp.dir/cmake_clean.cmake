file(REMOVE_RECURSE
  "CMakeFiles/tagspin_dsp.dir/fourier.cpp.o"
  "CMakeFiles/tagspin_dsp.dir/fourier.cpp.o.d"
  "CMakeFiles/tagspin_dsp.dir/linalg.cpp.o"
  "CMakeFiles/tagspin_dsp.dir/linalg.cpp.o.d"
  "CMakeFiles/tagspin_dsp.dir/peaks.cpp.o"
  "CMakeFiles/tagspin_dsp.dir/peaks.cpp.o.d"
  "CMakeFiles/tagspin_dsp.dir/stats.cpp.o"
  "CMakeFiles/tagspin_dsp.dir/stats.cpp.o.d"
  "libtagspin_dsp.a"
  "libtagspin_dsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tagspin_dsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
