file(REMOVE_RECURSE
  "libtagspin_dsp.a"
)
