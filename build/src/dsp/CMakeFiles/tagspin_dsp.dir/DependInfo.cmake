
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dsp/fourier.cpp" "src/dsp/CMakeFiles/tagspin_dsp.dir/fourier.cpp.o" "gcc" "src/dsp/CMakeFiles/tagspin_dsp.dir/fourier.cpp.o.d"
  "/root/repo/src/dsp/linalg.cpp" "src/dsp/CMakeFiles/tagspin_dsp.dir/linalg.cpp.o" "gcc" "src/dsp/CMakeFiles/tagspin_dsp.dir/linalg.cpp.o.d"
  "/root/repo/src/dsp/peaks.cpp" "src/dsp/CMakeFiles/tagspin_dsp.dir/peaks.cpp.o" "gcc" "src/dsp/CMakeFiles/tagspin_dsp.dir/peaks.cpp.o.d"
  "/root/repo/src/dsp/stats.cpp" "src/dsp/CMakeFiles/tagspin_dsp.dir/stats.cpp.o" "gcc" "src/dsp/CMakeFiles/tagspin_dsp.dir/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geom/CMakeFiles/tagspin_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
