# Empty dependencies file for tagspin_dsp.
# This may be replaced when dependencies are built.
