file(REMOVE_RECURSE
  "libtagspin_rf.a"
)
