# Empty compiler generated dependencies file for tagspin_rf.
# This may be replaced when dependencies are built.
