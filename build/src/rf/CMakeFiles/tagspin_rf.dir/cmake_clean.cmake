file(REMOVE_RECURSE
  "CMakeFiles/tagspin_rf.dir/antenna.cpp.o"
  "CMakeFiles/tagspin_rf.dir/antenna.cpp.o.d"
  "CMakeFiles/tagspin_rf.dir/channel.cpp.o"
  "CMakeFiles/tagspin_rf.dir/channel.cpp.o.d"
  "CMakeFiles/tagspin_rf.dir/constants.cpp.o"
  "CMakeFiles/tagspin_rf.dir/constants.cpp.o.d"
  "CMakeFiles/tagspin_rf.dir/frequency_plan.cpp.o"
  "CMakeFiles/tagspin_rf.dir/frequency_plan.cpp.o.d"
  "libtagspin_rf.a"
  "libtagspin_rf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tagspin_rf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
