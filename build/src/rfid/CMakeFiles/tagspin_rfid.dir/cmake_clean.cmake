file(REMOVE_RECURSE
  "CMakeFiles/tagspin_rfid.dir/epc.cpp.o"
  "CMakeFiles/tagspin_rfid.dir/epc.cpp.o.d"
  "CMakeFiles/tagspin_rfid.dir/gen2.cpp.o"
  "CMakeFiles/tagspin_rfid.dir/gen2.cpp.o.d"
  "CMakeFiles/tagspin_rfid.dir/llrp.cpp.o"
  "CMakeFiles/tagspin_rfid.dir/llrp.cpp.o.d"
  "CMakeFiles/tagspin_rfid.dir/reader.cpp.o"
  "CMakeFiles/tagspin_rfid.dir/reader.cpp.o.d"
  "CMakeFiles/tagspin_rfid.dir/report.cpp.o"
  "CMakeFiles/tagspin_rfid.dir/report.cpp.o.d"
  "CMakeFiles/tagspin_rfid.dir/tag_models.cpp.o"
  "CMakeFiles/tagspin_rfid.dir/tag_models.cpp.o.d"
  "libtagspin_rfid.a"
  "libtagspin_rfid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tagspin_rfid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
