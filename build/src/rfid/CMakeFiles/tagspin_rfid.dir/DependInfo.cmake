
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rfid/epc.cpp" "src/rfid/CMakeFiles/tagspin_rfid.dir/epc.cpp.o" "gcc" "src/rfid/CMakeFiles/tagspin_rfid.dir/epc.cpp.o.d"
  "/root/repo/src/rfid/gen2.cpp" "src/rfid/CMakeFiles/tagspin_rfid.dir/gen2.cpp.o" "gcc" "src/rfid/CMakeFiles/tagspin_rfid.dir/gen2.cpp.o.d"
  "/root/repo/src/rfid/llrp.cpp" "src/rfid/CMakeFiles/tagspin_rfid.dir/llrp.cpp.o" "gcc" "src/rfid/CMakeFiles/tagspin_rfid.dir/llrp.cpp.o.d"
  "/root/repo/src/rfid/reader.cpp" "src/rfid/CMakeFiles/tagspin_rfid.dir/reader.cpp.o" "gcc" "src/rfid/CMakeFiles/tagspin_rfid.dir/reader.cpp.o.d"
  "/root/repo/src/rfid/report.cpp" "src/rfid/CMakeFiles/tagspin_rfid.dir/report.cpp.o" "gcc" "src/rfid/CMakeFiles/tagspin_rfid.dir/report.cpp.o.d"
  "/root/repo/src/rfid/tag_models.cpp" "src/rfid/CMakeFiles/tagspin_rfid.dir/tag_models.cpp.o" "gcc" "src/rfid/CMakeFiles/tagspin_rfid.dir/tag_models.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rf/CMakeFiles/tagspin_rf.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/tagspin_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
