file(REMOVE_RECURSE
  "libtagspin_rfid.a"
)
