# Empty dependencies file for tagspin_rfid.
# This may be replaced when dependencies are built.
