# Empty compiler generated dependencies file for tagspin_baselines.
# This may be replaced when dependencies are built.
