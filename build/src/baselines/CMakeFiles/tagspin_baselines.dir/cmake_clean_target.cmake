file(REMOVE_RECURSE
  "libtagspin_baselines.a"
)
