file(REMOVE_RECURSE
  "CMakeFiles/tagspin_baselines.dir/antloc.cpp.o"
  "CMakeFiles/tagspin_baselines.dir/antloc.cpp.o.d"
  "CMakeFiles/tagspin_baselines.dir/backpos.cpp.o"
  "CMakeFiles/tagspin_baselines.dir/backpos.cpp.o.d"
  "CMakeFiles/tagspin_baselines.dir/dtw.cpp.o"
  "CMakeFiles/tagspin_baselines.dir/dtw.cpp.o.d"
  "CMakeFiles/tagspin_baselines.dir/landmarc.cpp.o"
  "CMakeFiles/tagspin_baselines.dir/landmarc.cpp.o.d"
  "CMakeFiles/tagspin_baselines.dir/pinit.cpp.o"
  "CMakeFiles/tagspin_baselines.dir/pinit.cpp.o.d"
  "libtagspin_baselines.a"
  "libtagspin_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tagspin_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
