
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/antloc.cpp" "src/baselines/CMakeFiles/tagspin_baselines.dir/antloc.cpp.o" "gcc" "src/baselines/CMakeFiles/tagspin_baselines.dir/antloc.cpp.o.d"
  "/root/repo/src/baselines/backpos.cpp" "src/baselines/CMakeFiles/tagspin_baselines.dir/backpos.cpp.o" "gcc" "src/baselines/CMakeFiles/tagspin_baselines.dir/backpos.cpp.o.d"
  "/root/repo/src/baselines/dtw.cpp" "src/baselines/CMakeFiles/tagspin_baselines.dir/dtw.cpp.o" "gcc" "src/baselines/CMakeFiles/tagspin_baselines.dir/dtw.cpp.o.d"
  "/root/repo/src/baselines/landmarc.cpp" "src/baselines/CMakeFiles/tagspin_baselines.dir/landmarc.cpp.o" "gcc" "src/baselines/CMakeFiles/tagspin_baselines.dir/landmarc.cpp.o.d"
  "/root/repo/src/baselines/pinit.cpp" "src/baselines/CMakeFiles/tagspin_baselines.dir/pinit.cpp.o" "gcc" "src/baselines/CMakeFiles/tagspin_baselines.dir/pinit.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geom/CMakeFiles/tagspin_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
