file(REMOVE_RECURSE
  "CMakeFiles/three_d_calibration.dir/three_d_calibration.cpp.o"
  "CMakeFiles/three_d_calibration.dir/three_d_calibration.cpp.o.d"
  "three_d_calibration"
  "three_d_calibration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/three_d_calibration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
