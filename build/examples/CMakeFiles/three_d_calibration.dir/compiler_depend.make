# Empty compiler generated dependencies file for three_d_calibration.
# This may be replaced when dependencies are built.
