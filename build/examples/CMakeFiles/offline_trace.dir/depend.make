# Empty dependencies file for offline_trace.
# This may be replaced when dependencies are built.
