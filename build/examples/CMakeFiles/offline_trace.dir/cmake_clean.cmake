file(REMOVE_RECURSE
  "CMakeFiles/offline_trace.dir/offline_trace.cpp.o"
  "CMakeFiles/offline_trace.dir/offline_trace.cpp.o.d"
  "offline_trace"
  "offline_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offline_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
