# Empty dependencies file for quality_monitor.
# This may be replaced when dependencies are built.
