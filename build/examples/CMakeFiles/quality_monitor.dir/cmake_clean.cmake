file(REMOVE_RECURSE
  "CMakeFiles/quality_monitor.dir/quality_monitor.cpp.o"
  "CMakeFiles/quality_monitor.dir/quality_monitor.cpp.o.d"
  "quality_monitor"
  "quality_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quality_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
