# Empty compiler generated dependencies file for quality_monitor.
# This may be replaced when dependencies are built.
