file(REMOVE_RECURSE
  "CMakeFiles/rf_test.dir/rf/antenna_test.cpp.o"
  "CMakeFiles/rf_test.dir/rf/antenna_test.cpp.o.d"
  "CMakeFiles/rf_test.dir/rf/channel_test.cpp.o"
  "CMakeFiles/rf_test.dir/rf/channel_test.cpp.o.d"
  "CMakeFiles/rf_test.dir/rf/constants_test.cpp.o"
  "CMakeFiles/rf_test.dir/rf/constants_test.cpp.o.d"
  "CMakeFiles/rf_test.dir/rf/frequency_plan_test.cpp.o"
  "CMakeFiles/rf_test.dir/rf/frequency_plan_test.cpp.o.d"
  "rf_test"
  "rf_test.pdb"
  "rf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
