# Empty dependencies file for rf_test.
# This may be replaced when dependencies are built.
