file(REMOVE_RECURSE
  "CMakeFiles/baselines_test.dir/baselines/antloc_test.cpp.o"
  "CMakeFiles/baselines_test.dir/baselines/antloc_test.cpp.o.d"
  "CMakeFiles/baselines_test.dir/baselines/backpos_test.cpp.o"
  "CMakeFiles/baselines_test.dir/baselines/backpos_test.cpp.o.d"
  "CMakeFiles/baselines_test.dir/baselines/dtw_test.cpp.o"
  "CMakeFiles/baselines_test.dir/baselines/dtw_test.cpp.o.d"
  "CMakeFiles/baselines_test.dir/baselines/landmarc_test.cpp.o"
  "CMakeFiles/baselines_test.dir/baselines/landmarc_test.cpp.o.d"
  "CMakeFiles/baselines_test.dir/baselines/pinit_test.cpp.o"
  "CMakeFiles/baselines_test.dir/baselines/pinit_test.cpp.o.d"
  "baselines_test"
  "baselines_test.pdb"
  "baselines_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baselines_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
