file(REMOVE_RECURSE
  "CMakeFiles/rfid_test.dir/rfid/epc_test.cpp.o"
  "CMakeFiles/rfid_test.dir/rfid/epc_test.cpp.o.d"
  "CMakeFiles/rfid_test.dir/rfid/gen2_test.cpp.o"
  "CMakeFiles/rfid_test.dir/rfid/gen2_test.cpp.o.d"
  "CMakeFiles/rfid_test.dir/rfid/llrp_test.cpp.o"
  "CMakeFiles/rfid_test.dir/rfid/llrp_test.cpp.o.d"
  "CMakeFiles/rfid_test.dir/rfid/report_test.cpp.o"
  "CMakeFiles/rfid_test.dir/rfid/report_test.cpp.o.d"
  "CMakeFiles/rfid_test.dir/rfid/tag_models_test.cpp.o"
  "CMakeFiles/rfid_test.dir/rfid/tag_models_test.cpp.o.d"
  "rfid_test"
  "rfid_test.pdb"
  "rfid_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
