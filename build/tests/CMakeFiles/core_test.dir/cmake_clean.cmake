file(REMOVE_RECURSE
  "CMakeFiles/core_test.dir/core/fusion_test.cpp.o"
  "CMakeFiles/core_test.dir/core/fusion_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/hologram_test.cpp.o"
  "CMakeFiles/core_test.dir/core/hologram_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/locator_test.cpp.o"
  "CMakeFiles/core_test.dir/core/locator_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/orientation_calibration_test.cpp.o"
  "CMakeFiles/core_test.dir/core/orientation_calibration_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/power_profile_test.cpp.o"
  "CMakeFiles/core_test.dir/core/power_profile_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/preprocess_test.cpp.o"
  "CMakeFiles/core_test.dir/core/preprocess_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/quality_test.cpp.o"
  "CMakeFiles/core_test.dir/core/quality_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/serialization_test.cpp.o"
  "CMakeFiles/core_test.dir/core/serialization_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/spectrum_test.cpp.o"
  "CMakeFiles/core_test.dir/core/spectrum_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/tagspin_test.cpp.o"
  "CMakeFiles/core_test.dir/core/tagspin_test.cpp.o.d"
  "core_test"
  "core_test.pdb"
  "core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
