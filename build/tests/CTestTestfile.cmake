# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/geom_test[1]_include.cmake")
include("/root/repo/build/tests/dsp_test[1]_include.cmake")
include("/root/repo/build/tests/rf_test[1]_include.cmake")
include("/root/repo/build/tests/rfid_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/eval_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
