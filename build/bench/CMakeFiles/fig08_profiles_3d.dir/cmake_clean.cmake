file(REMOVE_RECURSE
  "CMakeFiles/fig08_profiles_3d.dir/fig08_profiles_3d.cpp.o"
  "CMakeFiles/fig08_profiles_3d.dir/fig08_profiles_3d.cpp.o.d"
  "fig08_profiles_3d"
  "fig08_profiles_3d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_profiles_3d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
