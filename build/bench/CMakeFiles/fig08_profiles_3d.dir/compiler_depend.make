# Empty compiler generated dependencies file for fig08_profiles_3d.
# This may be replaced when dependencies are built.
