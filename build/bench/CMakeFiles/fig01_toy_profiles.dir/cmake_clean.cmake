file(REMOVE_RECURSE
  "CMakeFiles/fig01_toy_profiles.dir/fig01_toy_profiles.cpp.o"
  "CMakeFiles/fig01_toy_profiles.dir/fig01_toy_profiles.cpp.o.d"
  "fig01_toy_profiles"
  "fig01_toy_profiles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_toy_profiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
