# Empty compiler generated dependencies file for fig01_toy_profiles.
# This may be replaced when dependencies are built.
