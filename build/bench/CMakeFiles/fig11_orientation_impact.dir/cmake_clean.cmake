file(REMOVE_RECURSE
  "CMakeFiles/fig11_orientation_impact.dir/fig11_orientation_impact.cpp.o"
  "CMakeFiles/fig11_orientation_impact.dir/fig11_orientation_impact.cpp.o.d"
  "fig11_orientation_impact"
  "fig11_orientation_impact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_orientation_impact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
