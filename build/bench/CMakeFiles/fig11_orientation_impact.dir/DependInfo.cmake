
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig11_orientation_impact.cpp" "bench/CMakeFiles/fig11_orientation_impact.dir/fig11_orientation_impact.cpp.o" "gcc" "bench/CMakeFiles/fig11_orientation_impact.dir/fig11_orientation_impact.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/tagspin_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/tagspin_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tagspin_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tagspin_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/rfid/CMakeFiles/tagspin_rfid.dir/DependInfo.cmake"
  "/root/repo/build/src/rf/CMakeFiles/tagspin_rf.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/tagspin_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/tagspin_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
