# Empty dependencies file for fig11_orientation_impact.
# This may be replaced when dependencies are built.
