# Empty compiler generated dependencies file for fig05_orientation_influence.
# This may be replaced when dependencies are built.
