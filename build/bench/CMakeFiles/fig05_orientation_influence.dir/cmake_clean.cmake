file(REMOVE_RECURSE
  "CMakeFiles/fig05_orientation_influence.dir/fig05_orientation_influence.cpp.o"
  "CMakeFiles/fig05_orientation_influence.dir/fig05_orientation_influence.cpp.o.d"
  "fig05_orientation_influence"
  "fig05_orientation_influence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_orientation_influence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
