# Empty dependencies file for perf_profiles.
# This may be replaced when dependencies are built.
