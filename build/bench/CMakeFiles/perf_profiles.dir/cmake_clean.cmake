file(REMOVE_RECURSE
  "CMakeFiles/perf_profiles.dir/perf_profiles.cpp.o"
  "CMakeFiles/perf_profiles.dir/perf_profiles.cpp.o.d"
  "perf_profiles"
  "perf_profiles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_profiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
