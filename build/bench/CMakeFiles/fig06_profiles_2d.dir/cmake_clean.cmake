file(REMOVE_RECURSE
  "CMakeFiles/fig06_profiles_2d.dir/fig06_profiles_2d.cpp.o"
  "CMakeFiles/fig06_profiles_2d.dir/fig06_profiles_2d.cpp.o.d"
  "fig06_profiles_2d"
  "fig06_profiles_2d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_profiles_2d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
