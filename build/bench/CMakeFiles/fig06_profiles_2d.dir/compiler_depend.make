# Empty compiler generated dependencies file for fig06_profiles_2d.
# This may be replaced when dependencies are built.
