file(REMOVE_RECURSE
  "CMakeFiles/table1_tag_models.dir/table1_tag_models.cpp.o"
  "CMakeFiles/table1_tag_models.dir/table1_tag_models.cpp.o.d"
  "table1_tag_models"
  "table1_tag_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_tag_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
