# Empty compiler generated dependencies file for fig03_raw_phase.
# This may be replaced when dependencies are built.
