file(REMOVE_RECURSE
  "CMakeFiles/fig03_raw_phase.dir/fig03_raw_phase.cpp.o"
  "CMakeFiles/fig03_raw_phase.dir/fig03_raw_phase.cpp.o.d"
  "fig03_raw_phase"
  "fig03_raw_phase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_raw_phase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
