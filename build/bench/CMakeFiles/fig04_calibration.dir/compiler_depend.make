# Empty compiler generated dependencies file for fig04_calibration.
# This may be replaced when dependencies are built.
