file(REMOVE_RECURSE
  "CMakeFiles/fig04_calibration.dir/fig04_calibration.cpp.o"
  "CMakeFiles/fig04_calibration.dir/fig04_calibration.cpp.o.d"
  "fig04_calibration"
  "fig04_calibration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_calibration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
