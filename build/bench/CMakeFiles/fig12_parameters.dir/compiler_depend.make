# Empty compiler generated dependencies file for fig12_parameters.
# This may be replaced when dependencies are built.
