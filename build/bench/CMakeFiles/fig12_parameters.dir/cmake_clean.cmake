file(REMOVE_RECURSE
  "CMakeFiles/fig12_parameters.dir/fig12_parameters.cpp.o"
  "CMakeFiles/fig12_parameters.dir/fig12_parameters.cpp.o.d"
  "fig12_parameters"
  "fig12_parameters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_parameters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
