# Empty compiler generated dependencies file for fig_ablation2.
# This may be replaced when dependencies are built.
