file(REMOVE_RECURSE
  "CMakeFiles/fig_ablation2.dir/fig_ablation2.cpp.o"
  "CMakeFiles/fig_ablation2.dir/fig_ablation2.cpp.o.d"
  "fig_ablation2"
  "fig_ablation2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_ablation2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
