// Quickstart: locate one reader antenna in 2D with two spinning tags.
//
//   1. describe the deployment (two rigs 40 cm apart),
//   2. run the one-time orientation-calibration prelude per tag,
//   3. let the reader interrogate for 30 s (simulated here),
//   4. hand the LLRP report stream to the TagspinSystem server,
//   5. read back the fix.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/tagspin.hpp"
#include "eval/estimators.hpp"
#include "eval/runner.hpp"
#include "sim/interrogator.hpp"
#include "sim/scenario.hpp"

using namespace tagspin;

int main() {
  // --- the physical deployment (simulated stand-in for real hardware) ---
  sim::ScenarioConfig scenario;
  scenario.seed = 2016;
  sim::World world = sim::makeTwoRigWorld(scenario);

  // The reader antenna sits somewhere unknown; we will recover this point.
  const geom::Vec3 truth{0.9, 2.1, 0.0};
  sim::placeReaderAntenna(world, 0, truth);

  // --- one-time prelude: fit each tag's phase-orientation model ----------
  // (tag at the disk center, reader at a surveyed bench spot; section III-B)
  const auto orientationModels = eval::runCalibrationPrelude(world, 60.0);
  std::printf("calibrated %zu tag orientation models\n",
              orientationModels.size());

  // --- interrogate: 30 seconds of EPC Gen2 inventory ---
  sim::InterrogateConfig ic;
  ic.durationS = 30.0;
  const rfid::ReportStream reports = sim::interrogate(world, ic);
  std::printf("collected %zu tag reports\n", reports.size());

  // --- the localization server ---
  const core::TagspinSystem server =
      eval::buildTagspinServer(world, orientationModels, {});

  const core::Fix2D fix = server.locate2D(reports);
  std::printf("reader antenna estimated at (%.3f, %.3f) m\n", fix.position.x,
              fix.position.y);
  std::printf("true position              (%.3f, %.3f) m\n", truth.x, truth.y);
  std::printf("error: %.1f cm\n",
              geom::distance(fix.position, truth.xy()) * 100.0);
  for (size_t i = 0; i < fix.directions.size(); ++i) {
    std::printf("  rig %zu: azimuth spectrum peak at %.2f deg "
                "(confidence %.3f)\n",
                i, geom::radToDeg(fix.directions[i].azimuth),
                fix.directions[i].peakValue);
  }
  return 0;
}
