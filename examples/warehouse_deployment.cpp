// The paper's motivating workflow, end to end:
//
//   A warehouse runs an RFID tag-tracking system with a four-antenna
//   Impinj-class reader.  Every tag-localization technique assumes the
//   antenna positions are known -- calibrating them by hand took the paper's
//   authors ~30 minutes with a laser rangefinder.  Tagspin replaces that
//   with two spinning tags and a few minutes of interrogation:
//
//   1. calibrate all four antenna positions with Tagspin,
//   2. then use the calibrated antennas to locate an unknown *asset tag*
//      by phase-difference multilateration (the downstream application the
//      calibration exists for).
//
// Build & run:  ./build/examples/warehouse_deployment
#include <cstdio>
#include <vector>

#include "baselines/backpos.hpp"
#include "core/tagspin.hpp"
#include "eval/estimators.hpp"
#include "eval/runner.hpp"
#include "geom/angles.hpp"
#include "sim/interrogator.hpp"
#include "sim/scenario.hpp"

using namespace tagspin;

int main() {
  sim::ScenarioConfig scenario;
  scenario.seed = 77;
  scenario.antennaCount = 4;
  sim::World world = sim::makeTwoRigWorld(scenario);

  // Four antennas mounted around the aisle (ground truth to recover).
  const std::vector<geom::Vec3> antennaTruth{
      {-1.4, 1.0, 0.0}, {-0.5, 2.1, 0.0}, {0.6, 1.9, 0.0}, {1.5, 1.1, 0.0}};
  for (int port = 0; port < 4; ++port) {
    sim::placeReaderAntenna(world, port, antennaTruth[(size_t)port]);
  }

  // An asset tag somewhere on a shelf -- the thing the warehouse actually
  // wants to find.
  sim::StaticTag asset;
  asset.tag = sim::TagInstance::make(rfid::Epc::forSimulatedTag(500),
                                     rfid::TagModelId::kTwoByTwo, 0xA55E7ULL);
  asset.position = {0.35, 1.75, 0.0};
  asset.planeAzimuth = 0.4;
  world.statics.push_back(asset);

  // --- Step 1: Tagspin calibrates every antenna ------------------------
  // One-time per-tag orientation prelude, then the localization server.
  const auto orientationModels = eval::runCalibrationPrelude(world, 60.0);
  const core::TagspinSystem server =
      eval::buildTagspinServer(world, orientationModels, {});

  std::printf("=== Step 1: antenna calibration via spinning tags ===\n");
  std::vector<geom::Vec3> antennaEst;
  std::vector<rfid::ReportStream> perPort;
  for (int port = 0; port < 4; ++port) {
    sim::InterrogateConfig ic;
    ic.durationS = 30.0;
    ic.antennaPort = port;
    ic.streamId = static_cast<uint64_t>(port);
    perPort.push_back(sim::interrogate(world, ic));
    const core::Fix2D fix = server.locate2D(perPort.back());
    antennaEst.push_back({fix.position.x, fix.position.y, 0.0});
    std::printf("antenna %d: estimated (%+.3f, %.3f), true (%+.3f, %.3f), "
                "error %.1f cm\n",
                port + 1, fix.position.x, fix.position.y,
                antennaTruth[(size_t)port].x, antennaTruth[(size_t)port].y,
                geom::distance(fix.position,
                               antennaTruth[(size_t)port].xy()) * 100.0);
  }

  // --- Step 2: use the calibrated antennas to locate the asset tag -----
  // Phase-difference multilateration: the asset tag's phase at each antenna
  // defines pairwise hyperbolae; the per-port cable phases are part of the
  // reader's factory calibration data.
  std::printf("\n=== Step 2: locating the asset tag with the calibrated "
              "antennas ===\n");
  std::vector<baselines::AnchorPhase> anchors;
  for (int port = 0; port < 4; ++port) {
    std::vector<double> phases;
    double lambda = 0.0;
    for (const rfid::TagReport& r : perPort[(size_t)port]) {
      if (r.epc == asset.tag.epc) {
        phases.push_back(r.phaseRad);
        lambda = r.wavelengthM();
      }
    }
    if (phases.size() < 3) continue;
    baselines::AnchorPhase anchor;
    anchor.position = antennaEst[(size_t)port];
    anchor.lambdaM = lambda;
    anchor.phase = geom::wrapTwoPi(
        geom::circularMean(phases) -
        world.reader.antenna(port).cableAndPortPhase);
    anchors.push_back(anchor);
  }
  // Phase positioning needs a constrained feasible region to resolve the
  // lambda/2 ambiguity (the BackPos insight): here, the shelf bay the asset
  // is known to sit in.
  const baselines::SearchBounds bounds{-0.4, 1.1, 1.2, 2.4};
  const geom::Vec2 assetFix = baselines::backposLocate(anchors, bounds);
  std::printf("asset tag estimated at (%+.3f, %.3f), true (%+.3f, %.3f), "
              "error %.1f cm\n",
              assetFix.x, assetFix.y, asset.position.x, asset.position.y,
              geom::distance(assetFix, asset.position.xy()) * 100.0);
  std::printf("\n(the whole calibration took 4 x 30 s of interrogation "
              "instead of ~30 minutes with a laser rangefinder)\n");
  return 0;
}
