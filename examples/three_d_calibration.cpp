// 3D calibration with the full pipeline:
//
//   * orientation-calibration prelude (paper section III-B Step 1) for each
//     spinning tag,
//   * 3D angle spectra (azimuth + polar) and the +-z mirror ambiguity,
//   * a third, vertically spinning tag to resolve the sign (the paper's
//     future-work extension) when no dead-space prior is available.
//
// Build & run:  ./build/examples/three_d_calibration
#include <cstdio>

#include "core/tagspin.hpp"
#include "eval/estimators.hpp"
#include "eval/runner.hpp"
#include "geom/angles.hpp"
#include "sim/interrogator.hpp"
#include "sim/scenario.hpp"

using namespace tagspin;

int main() {
  sim::ScenarioConfig scenario;
  scenario.seed = 33;
  scenario.rigPlaneZ = 0.095;  // disks on a desk, centers 9.5 cm up
  sim::World world = sim::makeTwoRigWorld(scenario);
  sim::addVerticalRig(world, {0.0, 0.4, scenario.rigPlaneZ}, scenario);

  const geom::Vec3 truth{0.6, 1.9, 1.25};  // antenna on a wall bracket
  sim::placeReaderAntenna(world, 0, truth);

  // --- orientation-calibration prelude (once per deployed tag) ----------
  std::printf("running the center-spin calibration prelude...\n");
  const auto models = eval::runCalibrationPrelude(world, 60.0);
  for (const auto& [epc, model] : models) {
    std::printf("  tag %s: fit residual %.3f rad\n", epc.toHex().c_str(),
                model.fitResidual());
  }

  // --- interrogate and locate in 3D -------------------------------------
  const rfid::ReportStream reports = sim::interrogate(world, {30.0, 0, 0});

  core::LocatorConfig lc;
  lc.zResolution = core::ZResolution::kBoth;  // no dead-space prior
  const core::TagspinSystem server =
      eval::buildTagspinServer(world, models, lc);

  const core::Fix3D fix = server.locate3D(reports);
  std::printf("\nreader antenna estimated at (%.3f, %.3f, %.3f) m\n",
              fix.position.x, fix.position.y, fix.position.z);
  if (fix.mirrorCandidate) {
    std::printf("unresolved mirror candidate  (%.3f, %.3f, %.3f) m\n",
                fix.mirrorCandidate->x, fix.mirrorCandidate->y,
                fix.mirrorCandidate->z);
  } else {
    std::printf("(mirror candidate resolved by the vertical rig)\n");
  }
  std::printf("true position               (%.3f, %.3f, %.3f) m\n", truth.x,
              truth.y, truth.z);
  std::printf("error: %.1f cm\n",
              geom::distance(fix.position, truth) * 100.0);

  for (size_t i = 0; i < fix.directions.size(); ++i) {
    std::printf("  rig %zu: azimuth %.2f deg, polar %.2f deg, "
                "confidence %.3f\n",
                i, geom::radToDeg(fix.directions[i].azimuth),
                geom::radToDeg(fix.directions[i].polar),
                fix.directions[i].peakValue);
  }
  return 0;
}
