// Offline processing: record an interrogation to a CSV trace file (the
// LLRP-report schema), then localize from the file alone -- the workflow a
// real deployment uses when the reader and the localization server are
// separate machines.
//
// Build & run:  ./build/examples/offline_trace [trace.csv]
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "core/tagspin.hpp"
#include "rfid/report.hpp"
#include "sim/interrogator.hpp"
#include "sim/scenario.hpp"

using namespace tagspin;

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "/tmp/tagspin_trace.csv";

  // --- recording side ----------------------------------------------------
  sim::ScenarioConfig scenario;
  scenario.seed = 99;
  sim::World world = sim::makeTwoRigWorld(scenario);
  const geom::Vec3 truth{-0.7, 1.6, 0.0};
  sim::placeReaderAntenna(world, 0, truth);
  const rfid::ReportStream reports = sim::interrogate(world, {30.0, 0, 0});

  {
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return 1;
    }
    out << rfid::csvHeader() << '\n';
    for (const rfid::TagReport& r : reports) out << rfid::toCsvLine(r) << '\n';
  }
  std::printf("recorded %zu reports to %s\n", reports.size(), path.c_str());

  // --- replay side (only the file and the rig registry) -------------------
  rfid::ReportStream replayed;
  {
    std::ifstream in(path);
    std::string line;
    std::getline(in, line);  // header
    while (std::getline(in, line)) {
      if (!line.empty()) replayed.push_back(rfid::fromCsvLine(line));
    }
  }
  std::printf("replayed %zu reports\n", replayed.size());

  core::TagspinSystem server;
  for (const sim::RigTag& rt : world.rigs) {
    core::RigSpec spec;
    spec.center = rt.rig.center;
    spec.kinematics.radiusM = rt.rig.radiusM;
    spec.kinematics.omegaRadPerS = rt.rig.omegaRadPerS;
    spec.kinematics.initialAngle = rt.rig.initialAngle;
    spec.kinematics.tagPlaneOffset = rt.rig.tagPlaneOffset;
    server.registerRig(rt.tag.epc, spec);
  }
  const core::Fix2D fix = server.locate2D(replayed);
  std::printf("offline fix: (%.3f, %.3f) m, true (%.3f, %.3f) m, "
              "error %.1f cm\n",
              fix.position.x, fix.position.y, truth.x, truth.y,
              geom::distance(fix.position, truth.xy()) * 100.0);
  return 0;
}
