// Operational quality monitoring: a deployment that localizes in rounds,
// scores every fix with the spectrum/geometry quality metrics, rejects
// low-confidence rounds, and fuses the survivors with the geometric median.
//
// The scenario is deliberately hostile -- heavy interference corrupts a
// fifth of the reads -- to show the metrics doing real work.
//
// Build & run:  ./build/examples/quality_monitor
#include <algorithm>
#include <cstdio>
#include <utility>
#include <vector>

#include "core/fusion.hpp"
#include "core/quality.hpp"
#include "core/tagspin.hpp"
#include "eval/estimators.hpp"
#include "eval/runner.hpp"
#include "geom/angles.hpp"
#include "sim/interrogator.hpp"
#include "sim/scenario.hpp"

using namespace tagspin;

int main() {
  sim::ScenarioConfig scenario;
  scenario.seed = 55;
  sim::World world = sim::makeTwoRigWorld(scenario);
  rf::ChannelConfig cc = world.channel.config();
  cc.phaseOutlierProb = 0.20;  // hostile RF environment
  world.channel = rf::BackscatterChannel(cc, world.channel.scatterers());

  const geom::Vec3 truth{0.8, 2.4, 0.0};
  sim::placeReaderAntenna(world, 0, truth);

  const auto models = eval::runCalibrationPrelude(world, 60.0);
  const core::TagspinSystem server =
      eval::buildTagspinServer(world, models, {});

  std::printf("%6s %10s %10s %12s\n", "round", "err_cm", "gdop",
              "confidence");
  std::vector<std::pair<double, geom::Vec2>> scored;
  std::vector<geom::Vec2> all;
  for (int round = 0; round < 10; ++round) {
    const auto reports = sim::interrogate(
        world, {8.0, 0, 0x9000ULL + static_cast<uint64_t>(round)});
    const core::Fix2D fix = server.locate2D(reports);
    all.push_back(fix.position);

    // Score the fix: per-rig spectrum quality + ray geometry.
    const auto observations = server.collectObservations(reports);
    std::vector<core::SpectrumQuality> spectra;
    std::vector<geom::Ray2> rays;
    for (size_t i = 0; i < observations.size(); ++i) {
      const core::PowerProfile profile(observations[i].snapshots,
                                       observations[i].rig.kinematics, {});
      spectra.push_back(core::assessSpectrum(profile));
      rays.push_back({observations[i].rig.center.xy(),
                      fix.directions[i].azimuth});
    }
    const double gdop = core::bearingGdop(rays, fix.position);
    const double confidence = core::fixConfidence(spectra, gdop);
    scored.push_back({confidence, fix.position});

    std::printf("%6d %10.2f %10.2f %12.3f\n", round,
                geom::distance(fix.position, truth.xy()) * 100.0, gdop,
                confidence);
  }

  const geom::Vec2 fusedAll = core::geometricMedian(all);
  std::printf("\nfused (all rounds, geometric median):           %.2f cm\n",
              geom::distance(fusedAll, truth.xy()) * 100.0);
  // Keep the most-confident half of the rounds.
  std::sort(scored.begin(), scored.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  std::vector<geom::Vec2> accepted;
  for (size_t i = 0; i < scored.size() / 2; ++i) {
    accepted.push_back(scored[i].second);
  }
  const geom::Vec2 fused = core::geometricMedian(accepted);
  std::printf("fused (top-%zu rounds by confidence):            %.2f cm\n",
              accepted.size(), geom::distance(fused, truth.xy()) * 100.0);
  return 0;
}
